//! Protocol conformance across crates: orchestrator nodes talking over a
//! real (lossy, contended) radio medium, without the scenario layer.

use airdnd::core::{
    NodeAction, NodeEvent, OrchestratorConfig, OrchestratorNode, TaskOutcome, WireMsg,
};
use airdnd::data::{DataQuery, DataType, QualityDescriptor};
use airdnd::geo::{Vec2, World};
use airdnd::mesh::MeshConfig;
use airdnd::radio::{DeliveryOutcome, NodeAddr, RadioMedium};
use airdnd::sim::{SimDuration, SimRng, SimTime};
use airdnd::task::{library, ResourceRequirements, TaskId, TaskSpec};
use airdnd::trust::PrivacyLevel;
use std::collections::BinaryHeap;

/// One queued delivery: (due, tie-break seq, destination index, sender, frame).
type QueuedFrame = (SimTime, u64, usize, NodeAddr, WireMsgBox);

/// A minimal deterministic driver: nodes + medium + a time-ordered queue.
struct Driver {
    nodes: Vec<OrchestratorNode>,
    medium: RadioMedium,
    queue: BinaryHeap<std::cmp::Reverse<QueuedFrame>>,
    seq: u64,
    outcomes: Vec<(TaskId, TaskOutcome)>,
}

/// Ordering wrapper (WireMsg has no Ord; compare by queue position only).
#[derive(Clone, Debug)]
struct WireMsgBox(WireMsg);
impl PartialEq for WireMsgBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for WireMsgBox {}
impl PartialOrd for WireMsgBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WireMsgBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl Driver {
    fn new(count: usize, spacing: f64, seed: u64) -> Self {
        let mut medium = RadioMedium::v2v(World::new(), SimRng::seed_from(seed));
        let mut nodes = Vec::new();
        for i in 0..count {
            let addr = NodeAddr::new(i as u64 + 1);
            let mut node = OrchestratorNode::new(
                addr,
                OrchestratorConfig::default(),
                MeshConfig::default(),
                1_000_000 * (i as u64 + 1),
                1 << 30,
                SimRng::seed_from(seed).fork(i as u64),
            );
            let pos = Vec2::new(i as f64 * spacing, 0.0);
            node.set_kinematics(pos, Vec2::ZERO);
            medium.set_position(addr, pos);
            nodes.push(node);
        }
        Driver {
            nodes,
            medium,
            queue: BinaryHeap::new(),
            seq: 0,
            outcomes: Vec::new(),
        }
    }

    fn index_of(&self, addr: NodeAddr) -> Option<usize> {
        self.nodes.iter().position(|n| n.addr() == addr)
    }

    fn process(&mut self, now: SimTime, src: usize, actions: Vec<NodeAction>) {
        let src_addr = self.nodes[src].addr();
        for action in actions {
            match action {
                NodeAction::Broadcast(msg) => {
                    let (deliveries, _) =
                        self.medium.broadcast(now, src_addr, msg.wire_size_bytes());
                    for d in deliveries {
                        if let Some(idx) = self.index_of(d.to) {
                            self.seq += 1;
                            self.queue.push(std::cmp::Reverse((
                                d.at,
                                self.seq,
                                idx,
                                src_addr,
                                WireMsgBox(msg.clone()),
                            )));
                        }
                    }
                }
                NodeAction::Send { to, msg } => {
                    let (outcome, _) =
                        self.medium
                            .unicast(now, src_addr, to, msg.wire_size_bytes());
                    if let DeliveryOutcome::Delivered { at, .. } = outcome {
                        if let Some(idx) = self.index_of(to) {
                            self.seq += 1;
                            self.queue.push(std::cmp::Reverse((
                                at,
                                self.seq,
                                idx,
                                src_addr,
                                WireMsgBox(msg),
                            )));
                        }
                    }
                }
                NodeAction::SendAt { to, at, msg } => {
                    // Transmit over the medium at `at`.
                    let (outcome, _) = self.medium.unicast(at, src_addr, to, msg.wire_size_bytes());
                    if let DeliveryOutcome::Delivered { at: arrival, .. } = outcome {
                        if let Some(idx) = self.index_of(to) {
                            self.seq += 1;
                            self.queue.push(std::cmp::Reverse((
                                arrival,
                                self.seq,
                                idx,
                                src_addr,
                                WireMsgBox(msg),
                            )));
                        }
                    }
                }
                NodeAction::Outcome { task, outcome } => self.outcomes.push((task, outcome)),
                NodeAction::MeshJoined(_) | NodeAction::MeshLeft(_) => {}
            }
        }
    }

    /// Runs ticks every 100 ms until `until`, draining deliveries in time
    /// order between ticks.
    fn run_until(&mut self, until: SimTime) {
        let mut tick = 0u64;
        loop {
            let now = SimTime::from_millis(tick * 100);
            if now > until {
                break;
            }
            for i in 0..self.nodes.len() {
                let actions = self.nodes[i].handle(now, NodeEvent::Tick);
                self.process(now, i, actions);
            }
            // Deliver everything due before the next tick.
            let next_tick = SimTime::from_millis((tick + 1) * 100);
            while let Some(std::cmp::Reverse((at, _, _, _, _))) = self.queue.peek() {
                if *at >= next_tick {
                    break;
                }
                let std::cmp::Reverse((at, _, idx, from, boxed)) =
                    self.queue.pop().expect("peeked");
                let actions = self.nodes[idx].handle(at, NodeEvent::Wire { from, msg: boxed.0 });
                self.process(at, idx, actions);
            }
            tick += 1;
        }
    }
}

fn grid_task(id: u64, deadline_ms: u64) -> TaskSpec {
    TaskSpec::new(TaskId::new(id), "fuse", library::grid_fuse(8).into_inner())
        .with_input(DataQuery::of_type(DataType::OccupancyGrid))
        .with_requirements(ResourceRequirements {
            gas: 100_000,
            memory_bytes: 1 << 20,
            input_bytes: 256,
            output_bytes: 64,
            deadline: SimDuration::from_millis(deadline_ms),
        })
}

fn stock(node: &mut OrchestratorNode, at: SimTime) {
    node.insert_data(
        DataType::OccupancyGrid,
        vec![1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1],
        QualityDescriptor::basic(at, 0.9, 2.0),
    );
}

#[test]
fn offload_completes_over_a_real_radio() {
    let mut driver = Driver::new(3, 60.0, 21);
    driver.run_until(SimTime::from_secs(1));
    let now = SimTime::from_millis(1100);
    stock(&mut driver.nodes[1], now);
    stock(&mut driver.nodes[2], now);
    // Let fresh catalogs propagate through at least one beacon round.
    driver.run_until(SimTime::from_secs(2));
    let t = SimTime::from_millis(2100);
    let actions = driver.nodes[0].submit_task(t, grid_task(1, 1500), PrivacyLevel::Derived);
    driver.process(t, 0, actions);
    driver.run_until(SimTime::from_secs(5));
    assert_eq!(driver.outcomes.len(), 1);
    match &driver.outcomes[0].1 {
        TaskOutcome::Completed {
            outputs, latency, ..
        } => {
            assert_eq!(outputs.len(), 8, "grid_fuse(8) returns 8 cells");
            assert!(latency.as_millis_f64() < 1_000.0);
        }
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn out_of_range_nodes_never_join_the_candidate_set() {
    // Node 3 sits 100 km away: the mesh never includes it, so tasks flow
    // to node 2 only.
    let mut driver = Driver::new(3, 60.0, 22);
    let far = driver.nodes[2].addr();
    driver.medium.set_position(far, Vec2::new(100_000.0, 0.0));
    driver.nodes[2].set_kinematics(Vec2::new(100_000.0, 0.0), Vec2::ZERO);
    driver.run_until(SimTime::from_secs(1));
    assert!(
        !driver.nodes[0].mesh().is_member(far),
        "far node must not be a member"
    );
    let now = SimTime::from_millis(1100);
    stock(&mut driver.nodes[1], now);
    driver.run_until(SimTime::from_secs(2));
    let t = SimTime::from_millis(2100);
    let actions = driver.nodes[0].submit_task(t, grid_task(2, 1500), PrivacyLevel::Derived);
    driver.process(t, 0, actions);
    driver.run_until(SimTime::from_secs(4));
    match &driver.outcomes[0].1 {
        TaskOutcome::Completed { executors, .. } => {
            assert_eq!(executors, &vec![NodeAddr::new(2)]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn executor_departure_mid_task_triggers_retry_on_next_candidate() {
    let mut driver = Driver::new(3, 60.0, 23);
    driver.run_until(SimTime::from_secs(1));
    let now = SimTime::from_millis(1100);
    stock(&mut driver.nodes[1], now);
    stock(&mut driver.nodes[2], now);
    driver.run_until(SimTime::from_secs(2));
    // Node 3 (faster, likely first choice) vanishes right before the offer.
    let victim = driver.nodes[2].addr();
    driver.medium.remove_node(victim);
    let t = SimTime::from_millis(2100);
    let actions = driver.nodes[0].submit_task(t, grid_task(3, 1800), PrivacyLevel::Derived);
    driver.process(t, 0, actions);
    driver.run_until(SimTime::from_secs(6));
    assert_eq!(
        driver.outcomes.len(),
        1,
        "task must terminate one way or another"
    );
    match &driver.outcomes[0].1 {
        TaskOutcome::Completed { executors, .. } => {
            assert_eq!(
                executors,
                &vec![NodeAddr::new(2)],
                "fallback executor finished it"
            );
        }
        // Acceptable alternative: the deadline expired while failing over.
        TaskOutcome::Failed { .. } => {}
    }
}

#[test]
fn privacy_policy_blocks_offers_and_requester_fails_over() {
    use airdnd::trust::{PrivacyLevel, PrivacyPolicy};
    let mut driver = Driver::new(3, 60.0, 24);
    driver.run_until(SimTime::from_secs(1));
    let now = SimTime::from_millis(1100);
    stock(&mut driver.nodes[1], now);
    stock(&mut driver.nodes[2], now);
    // Node 3 refuses to let derived artefacts out.
    driver.nodes[2].set_privacy(PrivacyPolicy::new(PrivacyLevel::Aggregate));
    driver.run_until(SimTime::from_secs(2));
    let t = SimTime::from_millis(2100);
    let actions = driver.nodes[0].submit_task(t, grid_task(4, 1800), PrivacyLevel::Derived);
    driver.process(t, 0, actions);
    driver.run_until(SimTime::from_secs(5));
    match &driver.outcomes[0].1 {
        TaskOutcome::Completed { executors, .. } => {
            assert_eq!(
                executors,
                &vec![NodeAddr::new(2)],
                "only the permissive node may serve"
            );
        }
        other => panic!("{other:?}"),
    }
}
