//! Cross-crate property-based tests: invariants that must hold for any
//! input, not just the scripted cases.

use airdnd::data::{DataCatalog, DataQuery, DataType, QualityDescriptor};
use airdnd::geo::{SpatialIndex, Vec2};
use airdnd::scenario::fuse_max;
use airdnd::sim::{percentile, SimTime};
use airdnd::task::library;
use airdnd::task::vm::{execute, verify, ExecLimits, Instr, Program, Trap};
use airdnd::trust::{digest_outputs, majority_vote, Verdict};
use proptest::prelude::*;

fn arb_instr(code_len: u32) -> impl Strategy<Value = Instr> {
    use Instr::*;
    prop_oneof![
        (-64i64..64).prop_map(Push),
        Just(Pop),
        Just(Dup),
        Just(Swap),
        Just(Over),
        Just(Add),
        Just(Sub),
        Just(Mul),
        Just(Div),
        Just(Rem),
        Just(Min),
        Just(Max),
        Just(Not),
        Just(Eq),
        Just(Lt),
        (0..code_len).prop_map(Jmp),
        (0..code_len).prop_map(Jz),
        (0..code_len).prop_map(Jnz),
        Just(Load),
        Just(Store),
        Just(Input),
        Just(InputLen),
        Just(Output),
        Just(Halt),
    ]
}

proptest! {
    /// The verifier's core soundness promise: a verified program can trap
    /// on *data* (division, bounds, gas) but never on the stack — the
    /// interpreter would panic on stack underflow, so simply not panicking
    /// (and not hitting an impossible state) is the property.
    #[test]
    fn verified_programs_never_stack_fault(
        code in proptest::collection::vec(arb_instr(40), 1..40),
        inputs in proptest::collection::vec(-8i64..8, 0..8),
    ) {
        let program = Program::new(code, 16);
        if let Ok(verified) = verify(program) {
            // Tight gas so even infinite loops terminate quickly.
            let limits = ExecLimits { max_gas: 2_000, max_outputs: 64 };
            match execute(&verified, &inputs, limits) {
                Ok(_) => {}
                Err(
                    Trap::OutOfGas { .. }
                    | Trap::DivByZero { .. }
                    | Trap::MemOutOfBounds { .. }
                    | Trap::InputOutOfBounds { .. }
                    | Trap::OutputLimit { .. },
                ) => {}
            }
        }
    }

    /// Executing the shipped grid_fuse kernel on the receiving node gives
    /// bit-identical results to the native fusion the ego would compute —
    /// the equivalence the offloading story rests on.
    #[test]
    fn vm_grid_fuse_matches_native_fusion(
        a in proptest::collection::vec(-1i64..=1, 1..64),
    ) {
        let cells = a.len();
        let b: Vec<i64> = a.iter().rev().copied().collect();
        let kernel = library::grid_fuse(cells as u32);
        let mut inputs = a.clone();
        inputs.extend_from_slice(&b);
        let vm_out = execute(&kernel, &inputs, ExecLimits::default())
            .expect("fuse kernel never traps on valid grids")
            .outputs;
        let mut native = a.clone();
        fuse_max(&mut native, &b);
        prop_assert_eq!(vm_out, native);
    }

    /// Deterministic execution ⇒ honest executors always agree: any
    /// majority vote over identical outputs accepts with no dissenters.
    #[test]
    fn honest_replicas_always_verify(
        outputs in proptest::collection::vec(any::<i64>(), 0..32),
        replicas in 1usize..6,
    ) {
        let digest = digest_outputs(&outputs);
        let votes: Vec<(u64, _)> = (0..replicas as u64).map(|n| (n, digest)).collect();
        match majority_vote(&votes, 1) {
            Verdict::Accepted { dissenting, agreeing, .. } => {
                prop_assert!(dissenting.is_empty());
                prop_assert_eq!(agreeing.len(), replicas);
            }
            Verdict::Inconclusive { .. } => prop_assert!(false, "unanimity must verify"),
        }
    }

    /// The spatial index agrees with brute force for arbitrary points.
    #[test]
    fn spatial_index_matches_brute_force(
        points in proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 0..200),
        center in (-500.0f64..500.0, -500.0f64..500.0),
        radius in 0.0f64..300.0,
    ) {
        let mut index = SpatialIndex::new(50.0);
        for (i, &(x, y)) in points.iter().enumerate() {
            index.insert(i as u64, Vec2::new(x, y));
        }
        let c = Vec2::new(center.0, center.1);
        let mut got = index.query_range(c, radius);
        got.sort_unstable();
        let mut expected: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| Vec2::new(x, y).distance(c) <= radius)
            .map(|(i, _)| i as u64)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Catalog matching never returns an item violating its own query.
    #[test]
    fn catalog_matches_satisfy_their_query(
        ages in proptest::collection::vec(0u64..20, 1..16),
        max_age in 1u64..20,
    ) {
        let now = SimTime::from_secs(20);
        let mut catalog = DataCatalog::new(16);
        for &age in &ages {
            catalog.insert(
                DataType::DetectionList,
                100,
                QualityDescriptor::basic(SimTime::from_secs(20 - age), 0.9, 1.0),
            );
        }
        let mut query = DataQuery::of_type(DataType::DetectionList);
        query.requirement.max_age = airdnd::sim::SimDuration::from_secs(max_age);
        for item in catalog.find(&query, now) {
            prop_assert!(query.requirement.is_satisfied_by(&item.quality, now));
        }
    }

    /// Percentile is monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(
        values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&values, lo).expect("non-empty");
        let p_hi = percentile(&values, hi).expect("non-empty");
        prop_assert!(p_lo <= p_hi + 1e-9);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-9 && p_hi <= max + 1e-9);
    }
}

/// Non-proptest invariant: the byzantine corruption used in experiments is
/// always detectable by digest comparison against an honest replica.
#[test]
fn corruption_always_changes_the_digest() {
    for outputs in [vec![], vec![0i64], vec![1, 2, 3], vec![-1; 50]] {
        let honest = digest_outputs(&outputs);
        let mut corrupted = outputs.clone();
        for w in &mut corrupted {
            *w ^= 0x0BAD;
        }
        if corrupted.is_empty() {
            corrupted.push(0x0BAD);
        }
        assert_ne!(honest, digest_outputs(&corrupted));
    }
}
