//! Determinism regression tests — the contract every experiment artifact
//! rests on:
//!
//! 1. `run_scenario` is a pure function of its config: the same
//!    `ScenarioConfig` yields an identical `ScenarioReport`, down to the
//!    serialized JSON bytes.
//! 2. The sweep harness adds parallelism *between* runs only: a sweep
//!    executed with `threads = 1` and `threads = N` produces byte-identical
//!    results and artifacts.
//! 3. Sharding is just another axis of the same contract: a sweep split
//!    with `--shard i/n`, serialized across a process boundary and merged
//!    back, is byte-identical to the unsharded run (JSON and CSV reports
//!    and the rendered table alike).

use airdnd::harness::summarize_cells;
use airdnd::harness::{
    parse_shard, render_csv, render_json, render_shard, run_sweep, AnyWorkload, ExperimentResult,
    FnWorkload, SeedMode, Shard, SweepReport, SweepSpec, Table,
};
use airdnd::scenario::{run_scenario, ScenarioConfig, ScenarioReport, Strategy};
use airdnd::sim::SimDuration;

fn quick_base() -> ScenarioConfig {
    ScenarioConfig::default()
        .with_vehicles(6)
        .with_duration(SimDuration::from_secs(10))
}

#[test]
fn same_config_same_report_json() {
    let cfg = quick_base().seeded(2024);
    let a = serde_json::to_string_pretty(&run_scenario(cfg)).expect("report serializes");
    let b = serde_json::to_string_pretty(&run_scenario(cfg)).expect("report serializes");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same ScenarioConfig must serialize to identical JSON");
}

fn scenario_sweep() -> airdnd::harness::Manifest<ScenarioConfig> {
    SweepSpec::new(quick_base())
        .axis("vehicles", [4usize, 6], |cfg, &n| cfg.vehicles = n)
        .axis_labeled(
            "strategy",
            vec![Strategy::Airdnd, Strategy::LocalOnly],
            |s| s.label().to_owned(),
            |cfg, &s| cfg.strategy = s,
        )
        .replicates(2)
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(7)
        .seed_with(|cfg, seed| cfg.seed = seed)
        .manifest()
}

#[test]
fn sweep_single_threaded_equals_parallel_byte_for_byte() {
    let manifest = scenario_sweep();
    let seq = run_sweep(&manifest, 1, |plan| run_scenario(plan.config));
    let par = run_sweep(&manifest, 4, |plan| run_scenario(plan.config));
    assert_eq!(seq.threads, 1);

    // Every run's full report — not just summary statistics — must match.
    let seq_json: Vec<String> = seq
        .results
        .iter()
        .map(|r| serde_json::to_string_pretty(r).expect("serializes"))
        .collect();
    let par_json: Vec<String> = par
        .results
        .iter()
        .map(|r| serde_json::to_string_pretty(r).expect("serializes"))
        .collect();
    assert_eq!(
        seq_json, par_json,
        "threads=1 and threads=4 must agree run-for-run"
    );

    // And the rendered sweep artifacts (JSON + CSV) must be byte-identical.
    let report = |results: &[ScenarioReport]| SweepReport {
        name: "determinism".into(),
        title: "determinism regression sweep".into(),
        axis_names: manifest.axis_names.clone(),
        replicates: manifest.replicates,
        base_seed: manifest.base_seed,
        cells: summarize_cells(&manifest, results, |r| {
            vec![
                ("completion_rate", r.completion_rate),
                ("latency_p95_ms", r.latency_p95_ms),
                ("mesh_bytes", r.mesh_bytes as f64),
                ("mean_coverage", r.mean_coverage),
            ]
        }),
    };
    assert_eq!(
        render_json(&report(&seq.results)),
        render_json(&report(&par.results))
    );
    assert_eq!(
        render_csv(&report(&seq.results)),
        render_csv(&report(&par.results))
    );
}

/// The determinism sweep as a full [`FnWorkload`], so the shard test
/// exercises the exact code path `sweep --shard i/n` / `--merge` uses.
fn scenario_workload() -> FnWorkload<ScenarioConfig, ScenarioReport> {
    FnWorkload {
        name: "determinism",
        title: "determinism regression sweep",
        spec: |_quick| {
            SweepSpec::new(quick_base())
                .axis("vehicles", [4usize, 6], |cfg, &n| cfg.vehicles = n)
                .axis_labeled(
                    "strategy",
                    vec![Strategy::Airdnd, Strategy::LocalOnly],
                    |s| s.label().to_owned(),
                    |cfg, &s| cfg.strategy = s,
                )
                .replicates(2)
                .seed_mode(SeedMode::PerReplicate)
                .base_seed(7)
                .seed_with(|cfg, seed| cfg.seed = seed)
        },
        run: |plan| run_scenario(plan.config),
        metrics: |r| {
            vec![
                ("completion_rate", r.completion_rate),
                ("latency_p95_ms", r.latency_p95_ms),
                ("mesh_bytes", r.mesh_bytes as f64),
                ("mean_coverage", r.mean_coverage),
            ]
        },
        tabulate: |manifest, results| {
            let mut table = Table::new("D", "determinism", &["labels", "done", "p95"]);
            for (plan, r) in manifest.runs.iter().zip(results) {
                table.row(vec![
                    plan.labels.join("/"),
                    format!("{:.12}", r.completion_rate),
                    format!("{:.12}", r.latency_p95_ms),
                ]);
            }
            ExperimentResult::table_only(table)
        },
        trace: None,
        observe: None,
    }
}

#[test]
fn two_shards_merged_equal_the_unsharded_run_byte_for_byte() {
    let workload = scenario_workload();
    let unsharded = workload.execute(true, 2, &mut |_| {});

    let mut artifacts = Vec::new();
    for index in 0..2 {
        let artifact = workload.execute_shard(true, 2, Shard::new(index, 2), &mut |_| {});
        // Cross the process boundary the real `sweep --shard` crosses:
        // serialize the shard to JSON text and parse it back.
        artifacts.push(parse_shard(&render_shard(&artifact)).expect("artifact round-trips"));
    }
    // Merge order must not matter.
    artifacts.reverse();
    let merged = workload
        .merge_shards(true, &artifacts)
        .expect("shards merge");

    assert_eq!(
        unsharded.result.table.render(),
        merged.result.table.render(),
        "sharded + merged table must match the unsharded run"
    );
    assert_eq!(
        render_json(&unsharded.aggregate),
        render_json(&merged.aggregate),
        "sharded + merged JSON report must be byte-identical"
    );
    assert_eq!(
        render_csv(&unsharded.aggregate),
        render_csv(&merged.aggregate),
        "sharded + merged CSV report must be byte-identical"
    );
}

#[test]
fn derived_seeds_actually_vary_the_runs() {
    // Guard against a harness regression where seed_with silently stops
    // installing seeds: the two replicates of a cell must differ.
    let manifest = scenario_sweep();
    let outcome = run_sweep(&manifest, 0, |plan| run_scenario(plan.config));
    let first = &outcome.results[0];
    let second = &outcome.results[1];
    assert_ne!(
        serde_json::to_string(&first.latencies_ms).expect("serializes"),
        serde_json::to_string(&second.latencies_ms).expect("serializes"),
        "replicates with different seeds must not produce identical traces"
    );
}
