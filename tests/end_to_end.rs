//! Cross-crate integration: full scenario runs and the paper's headline
//! comparisons, exercised through the public facade API.

use airdnd::scenario::{run_scenario, ScenarioConfig, ScenarioReport, Strategy};
use airdnd::sim::SimDuration;

fn run(strategy: Strategy, seed: u64, vehicles: usize) -> ScenarioReport {
    run_scenario(ScenarioConfig {
        seed,
        vehicles,
        duration: SimDuration::from_secs(20),
        strategy,
        ..Default::default()
    })
}

#[test]
fn airdnd_completes_most_tasks_with_low_latency() {
    let r = run(Strategy::Airdnd, 11, 10);
    assert!(r.completion_rate > 0.7, "completion {}", r.completion_rate);
    assert!(r.latency_p95_ms < 500.0, "p95 {}", r.latency_p95_ms);
    assert!(r.mesh_formation_s.expect("mesh forms") < 5.0);
}

#[test]
fn data_minimization_claim_holds() {
    // The paper's core claim: task-to-data moves orders of magnitude fewer
    // bytes than raw-to-cloud for the same perception workload.
    let airdnd = run(Strategy::Airdnd, 12, 10);
    let cloud = run(Strategy::Cloud { fiveg: true }, 12, 10);
    assert!(airdnd.tasks_completed > 0 && cloud.tasks_completed > 0);
    let airdnd_total = airdnd.mesh_bytes + airdnd.cellular_bytes;
    let cloud_total = cloud.mesh_bytes + cloud.cellular_bytes;
    assert!(
        cloud_total > 50 * airdnd_total,
        "cloud {cloud_total} bytes vs airdnd {airdnd_total} bytes"
    );
}

#[test]
fn cooperation_extends_perception() {
    let airdnd = run(Strategy::Airdnd, 13, 12);
    let local = run(Strategy::LocalOnly, 13, 12);
    assert!(
        airdnd.mean_coverage > local.mean_coverage,
        "airdnd {} vs local {}",
        airdnd.mean_coverage,
        local.mean_coverage
    );
}

#[test]
fn raw_sharing_chokes_the_mesh() {
    let airdnd = run(Strategy::Airdnd, 14, 10);
    let raw = run(Strategy::RawSharing, 14, 10);
    assert!(
        raw.mesh_bytes > 3 * airdnd.mesh_bytes,
        "raw frames must dominate the air: {} vs {}",
        raw.mesh_bytes,
        airdnd.mesh_bytes
    );
    // And it pays for it in latency.
    if raw.tasks_completed > 0 {
        assert!(raw.latency_p50_ms > airdnd.latency_p50_ms);
    }
}

#[test]
fn runs_are_seed_deterministic() {
    let a = run(Strategy::Airdnd, 15, 8);
    let b = run(Strategy::Airdnd, 15, 8);
    assert_eq!(a.tasks_submitted, b.tasks_submitted);
    assert_eq!(a.tasks_completed, b.tasks_completed);
    assert_eq!(a.latencies_ms, b.latencies_ms);
    assert_eq!(a.mesh_bytes, b.mesh_bytes);
    assert_eq!(a.joins, b.joins);
    let c = run(Strategy::Airdnd, 16, 8);
    assert_ne!(a.latencies_ms, c.latencies_ms, "different seeds diverge");
}

#[test]
fn denser_fleets_offer_more_helpers() {
    let sparse = run(Strategy::Airdnd, 17, 4);
    let dense = run(Strategy::Airdnd, 17, 16);
    assert!(
        dense.mean_members > sparse.mean_members,
        "dense {} vs sparse {}",
        dense.mean_members,
        sparse.mean_members
    );
}

#[test]
fn byzantine_helpers_are_filtered_by_redundancy() {
    let mut cfg = ScenarioConfig {
        seed: 17,
        vehicles: 12,
        duration: SimDuration::from_secs(20),
        byzantine_fraction: 0.3,
        strategy: Strategy::Airdnd,
        ..Default::default()
    };
    cfg.orch.redundancy = 3;
    cfg.orch.max_candidates = 5;
    let verified = run_scenario(cfg);
    // With triple redundancy and voting, corrupted grids should rarely be
    // accepted into the fused view.
    let bad_rate =
        verified.invalid_results_accepted as f64 / verified.tasks_completed.max(1) as f64;
    assert!(bad_rate < 0.2, "bad-accept rate {bad_rate}");

    // Without redundancy the same fleet slips corrupted results through.
    let mut naive_cfg = ScenarioConfig {
        seed: 17,
        vehicles: 12,
        duration: SimDuration::from_secs(20),
        byzantine_fraction: 0.3,
        strategy: Strategy::Airdnd,
        ..Default::default()
    };
    naive_cfg.orch.redundancy = 1;
    let naive = run_scenario(naive_cfg);
    assert!(
        naive.invalid_results_accepted > verified.invalid_results_accepted,
        "redundancy must reduce accepted corruption: {} vs {}",
        naive.invalid_results_accepted,
        verified.invalid_results_accepted
    );
}
