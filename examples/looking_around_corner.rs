//! The paper's headline scenario, compared across all four strategies:
//! AirDnD task-to-data offloading, cellular cloud offload, naive raw-data
//! V2V sharing, and no cooperation.
//!
//! ```sh
//! cargo run --example looking_around_corner
//! ```

use airdnd::scenario::{run_scenario, ScenarioConfig, Strategy};
use airdnd::sim::SimDuration;

fn main() {
    let strategies = [
        Strategy::Airdnd,
        Strategy::Cloud { fiveg: true },
        Strategy::Cloud { fiveg: false },
        Strategy::RawSharing,
        Strategy::LocalOnly,
    ];
    println!(
        "{:<12} {:>6} {:>9} {:>9} {:>12} {:>12} {:>9} {:>9}",
        "strategy", "done%", "p50 ms", "p95 ms", "mesh kB", "cell kB", "cover%", "detect s"
    );
    for strategy in strategies {
        let report = run_scenario(ScenarioConfig {
            seed: 7,
            vehicles: 12,
            duration: SimDuration::from_secs(30),
            strategy,
            ..Default::default()
        });
        println!(
            "{:<12} {:>6.0} {:>9.1} {:>9.1} {:>12.1} {:>12.1} {:>9.0} {:>9}",
            report.strategy,
            report.completion_rate * 100.0,
            report.latency_p50_ms,
            report.latency_p95_ms,
            report.mesh_bytes as f64 / 1000.0,
            report.cellular_bytes as f64 / 1000.0,
            report.mean_coverage * 100.0,
            report
                .time_to_detect_s
                .map_or_else(|| "never".to_owned(), |t| format!("{t:.2}")),
        );
    }
    println!(
        "\nThe AirDnD row should win on bytes by orders of magnitude while \
         matching or beating the cloud on latency — the paper's core claim."
    );
}
