//! Quickstart: run the canonical looking-around-the-corner scenario with
//! the AirDnD orchestrator and print the headline numbers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use airdnd::scenario::{run_scenario, ScenarioConfig, Strategy};
use airdnd::sim::SimDuration;

fn main() {
    let cfg = ScenarioConfig {
        seed: 42,
        vehicles: 12,
        duration: SimDuration::from_secs(60),
        strategy: Strategy::Airdnd,
        ..Default::default()
    };
    println!(
        "AirDnD quickstart: {} vehicles, {:.0} s at an occluded intersection",
        cfg.vehicles, 60.0
    );
    let report = run_scenario(cfg);

    println!("\n== mesh (Model 1) ==");
    match report.mesh_formation_s {
        Some(t) => println!("first member joined the ego's mesh after {t:.2} s"),
        None => println!("the mesh never formed (!)"),
    }
    println!("mean mesh size seen by the ego: {:.1}", report.mean_members);
    println!(
        "membership churn: {} joins / {} leaves",
        report.joins, report.leaves
    );

    println!("\n== offloading (Models 2+3, RQ1–RQ2) ==");
    println!(
        "perception tasks: {} submitted, {} completed ({:.0}%)",
        report.tasks_submitted,
        report.tasks_completed,
        report.completion_rate * 100.0
    );
    println!(
        "latency: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms",
        report.latency_mean_ms, report.latency_p50_ms, report.latency_p95_ms
    );

    println!("\n== the data stayed home ==");
    println!(
        "bytes on the V2V air: {} ({:.1} kB per completed view)",
        report.mesh_bytes,
        report.bytes_per_task / 1000.0
    );
    println!("bytes over cellular: {}", report.cellular_bytes);

    println!("\n== looking around the corner ==");
    println!(
        "hidden-region coverage: {:.0}% with cooperation vs {:.0}% alone",
        report.mean_coverage * 100.0,
        report.ego_only_coverage * 100.0
    );
    match report.time_to_detect_s {
        Some(t) => println!("hidden agent detected after {t:.2} s"),
        None => println!("hidden agent was never detected"),
    }
}
