//! The "Airbnb of compute" angle: excess resources as a market.
//!
//! Demonstrates the allocation mechanisms from the paper's related work on
//! one fleet snapshot — AirDnD's scoring, a truthful McAfee double auction
//! (DeCloud-style), smart-contract allocation, and coded redundancy — then
//! deploys an NFV service chain across the same nodes.
//!
//! ```sh
//! cargo run --example resource_market
//! ```

use airdnd::baselines::{
    mcafee_double_auction, Assigner, CandidateInfo, CodedAssigner, DoubleAuctionAssigner,
    GreedyComputeAssigner, ScoreAssigner, SmartContractAssigner,
};
use airdnd::nfv::{
    NfManager, PlacementStrategy, ResourceCapacity, ServiceChain, VnfDescriptor, VnfKind,
};
use airdnd::radio::NodeAddr;
use airdnd::sim::{SimDuration, SimTime};
use airdnd::task::{library, Priority, ResourceRequirements, TaskId, TaskSpec};

fn main() {
    // A snapshot of five in-range vehicles with very different headroom.
    let candidates: Vec<CandidateInfo> = vec![
        CandidateInfo {
            addr: NodeAddr::new(1),
            gas_rate: 4_000_000,
            gas_backlog: 0,
            link_quality: 0.9,
            has_data: true,
            trust: 0.8,
        },
        CandidateInfo {
            addr: NodeAddr::new(2),
            gas_rate: 2_000_000,
            gas_backlog: 3_000_000,
            link_quality: 0.95,
            has_data: true,
            trust: 0.9,
        },
        CandidateInfo {
            addr: NodeAddr::new(3),
            gas_rate: 1_000_000,
            gas_backlog: 0,
            link_quality: 0.4,
            has_data: true,
            trust: 0.5,
        },
        CandidateInfo {
            addr: NodeAddr::new(4),
            gas_rate: 500_000,
            gas_backlog: 0,
            link_quality: 0.99,
            has_data: true,
            trust: 0.95,
        },
        CandidateInfo {
            addr: NodeAddr::new(5),
            gas_rate: 8_000_000,
            gas_backlog: 0,
            link_quality: 0.7,
            has_data: false,
            trust: 0.6,
        },
    ];
    let task = TaskSpec::new(TaskId::new(1), "fuse", library::grid_fuse(64).into_inner())
        .with_requirements(ResourceRequirements {
            gas: 2_000_000,
            deadline: SimDuration::from_secs(2),
            ..Default::default()
        })
        .with_priority(Priority::High);

    println!("== one task, five mechanisms ==");
    let mut mechanisms: Vec<Box<dyn Assigner>> = vec![
        Box::new(ScoreAssigner),
        Box::new(GreedyComputeAssigner),
        Box::new(DoubleAuctionAssigner::default()),
        Box::new(SmartContractAssigner::default()),
        Box::new(CodedAssigner::new(3, 2)),
    ];
    for mechanism in &mut mechanisms {
        match mechanism.assign(&task, &candidates, SimTime::ZERO) {
            Some(a) => println!(
                "{:<16} -> {:?} (decision latency {}, {} control msgs{})",
                mechanism.name(),
                a.executors.iter().map(|e| e.raw()).collect::<Vec<_>>(),
                a.decision_latency,
                a.control_messages,
                a.price.map_or(String::new(), |p| format!(", price {p:.2}")),
            ),
            None => println!("{:<16} -> no feasible executor", mechanism.name()),
        }
    }

    println!("\n== batch double auction (McAfee) ==");
    // Three tasks bid for compute; four sellers ask.
    let bids = [(101u64, 30.0), (102, 20.0), (103, 8.0)];
    let asks = [(1u64, 5.0), (2, 12.0), (3, 18.0), (4, 25.0)];
    match mcafee_double_auction(&bids, &asks) {
        Some(outcome) => {
            println!("clearing price {:.2}", outcome.clearing_price);
            for (buyer, seller) in outcome.matches {
                println!("  task {buyer} runs on node {seller}");
            }
        }
        None => println!("no trade possible"),
    }

    println!("\n== NFV service chain on the same fleet ==");
    let mut manager = NfManager::new(PlacementStrategy::BestFit);
    for c in &candidates {
        manager.register_node(
            c.addr.raw(),
            ResourceCapacity::new(1_000, 1 << 30, c.gas_rate),
        );
    }
    let chain = ServiceChain::new(
        "cooperative-perception",
        vec![
            VnfDescriptor::of_kind("admission-fw", VnfKind::Firewall),
            VnfDescriptor::of_kind("result-agg", VnfKind::Aggregator),
            VnfDescriptor::of_kind("fusion", VnfKind::PerceptionFuser),
        ],
    );
    let chain_id = manager
        .deploy_chain(&chain, SimTime::ZERO)
        .expect("fleet can host the chain");
    println!("deployed {chain_id}:");
    for vnf in manager.instances() {
        println!(
            "  {} ({}) on node {}",
            vnf.id, vnf.descriptor.kind, vnf.host
        );
    }
    println!(
        "mean fleet utilization: {:.1}%",
        manager.mean_utilization() * 100.0
    );

    // Node departure: heal the chain onto surviving nodes.
    let departing = manager
        .instances()
        .map(|i| i.host)
        .next()
        .expect("chain is placed");
    println!("\nnode {departing} drives away...");
    let orphans = manager.node_departed(departing);
    let (healed, lost) = manager.heal(&orphans, SimTime::from_secs(5));
    println!("healed {} VNFs, lost {}", healed.len(), lost.len());
    for vnf in manager.instances() {
        println!("  {} now on node {}", vnf.id, vnf.host);
    }
}
