//! Model 1 up close: watch a mesh form, reshape and dissolve as vehicles
//! cross an intersection.
//!
//! Runs the mesh + radio + mobility layers without the orchestration on
//! top, printing the ego's mesh view once per second.
//!
//! ```sh
//! cargo run --example mesh_dynamics
//! ```

use airdnd::geo::{IdmParams, Mobility, RoadNetwork, World};
use airdnd::mesh::{MeshAction, MeshConfig, MeshDescriptor, MeshMsg, MeshNode, NodeAdvert};
use airdnd::radio::{DeliveryOutcome, NodeAddr, RadioMedium};
use airdnd::sim::{SimRng, SimTime};

fn main() {
    let net = RoadNetwork::four_way_intersection(250.0, 13.9);
    let world = World::corner_buildings(12.0, 40.0);
    let mut medium = RadioMedium::v2v(world, SimRng::seed_from(9));

    // Six vehicles: ego from the south, the rest staggered on other arms.
    let mut rng = SimRng::seed_from(1);
    let mut nodes: Vec<MeshNode> = Vec::new();
    let mut mobility: Vec<Mobility> = Vec::new();
    for i in 0..6u64 {
        let from = (i as usize) % 4;
        let to = (from + 1 + (i as usize) % 3) % 4;
        let route = net
            .route(net.approach_node(from), net.exit_node(to))
            .expect("arms connect");
        let mut m = Mobility::route(route, 8.0 + i as f64, IdmParams::default());
        m.step((i as f64) * 2.0); // stagger entries
        let addr = NodeAddr::new(i + 1);
        medium.set_position(addr, m.pos());
        nodes.push(MeshNode::new(
            addr,
            MeshConfig::default(),
            NodeAdvert::closed(),
        ));
        mobility.push(m);
        let _ = rng.next_f64();
    }

    let tick = 0.1;
    let mut inboxes: Vec<Vec<(NodeAddr, MeshMsg)>> = vec![Vec::new(); nodes.len()];
    for step in 0..400u64 {
        let now = SimTime::from_millis(step * 100);
        // Move and update the radio map.
        for (i, m) in mobility.iter_mut().enumerate() {
            m.step(tick);
            let state = m.state();
            medium.set_position(nodes[i].addr(), state.pos);
            nodes[i].set_kinematics(state.pos, state.velocity());
        }
        // Deliver last tick's frames.
        let mut outgoing: Vec<(usize, MeshAction)> = Vec::new();
        for (i, inbox) in inboxes.iter_mut().enumerate() {
            for (from, msg) in inbox.drain(..) {
                for action in nodes[i].on_message(now, from, msg) {
                    outgoing.push((i, action));
                }
            }
        }
        // Timers.
        for (i, node) in nodes.iter_mut().enumerate() {
            for action in node.on_timer(now) {
                outgoing.push((i, action));
            }
        }
        // Route through the medium.
        for (src, action) in outgoing {
            let src_addr = nodes[src].addr();
            match action {
                MeshAction::Broadcast(msg) => {
                    let (deliveries, _) = medium.broadcast(now, src_addr, msg.wire_size_bytes());
                    for d in deliveries {
                        let idx = (d.to.raw() - 1) as usize;
                        inboxes[idx].push((src_addr, msg.clone()));
                    }
                }
                MeshAction::Unicast(to, msg) => {
                    let (outcome, _) = medium.unicast(now, src_addr, to, msg.wire_size_bytes());
                    if matches!(outcome, DeliveryOutcome::Delivered { .. }) {
                        let idx = (to.raw() - 1) as usize;
                        inboxes[idx].push((src_addr, msg));
                    }
                }
                MeshAction::Joined(peer) => {
                    if src == 0 {
                        println!("[{now}] ego: {peer} JOINED the mesh");
                    }
                }
                MeshAction::Left(peer) => {
                    if src == 0 {
                        println!("[{now}] ego: {peer} LEFT the mesh");
                    }
                }
            }
        }
        // Once per second: print the ego's Model-1 descriptor.
        if step % 10 == 0 {
            let d = MeshDescriptor::capture(&nodes[0], now);
            println!(
                "[{now}] ego mesh: {} members, stability {:.2}, churn {:.2}/s, mean info age {}",
                d.len(),
                d.stability_score(),
                d.churn_per_sec,
                d.mean_info_age(),
            );
        }
    }
    println!(
        "\ntotals: ego saw {} joins and {} leaves — the mesh formed and dissolved \
         spontaneously as vehicles came into and out of range.",
        nodes[0].total_joins(),
        nodes[0].total_leaves()
    );
}
