//! Minimal, API-compatible stand-in for the parts of `serde` this workspace
//! uses, vendored because the build container has no network access to a
//! crates.io mirror.
//!
//! Scope (deliberately small — see `vendor/README.md`):
//!
//! * [`Serialize`] — a single-method trait producing the JSON-shaped
//!   [`value::Value`] tree that `serde_json` renders. Object keys keep
//!   declaration order, so output is fully deterministic.
//! * [`DeserializeOwned`] — the working decode trait: rebuilds a value from
//!   a parsed JSON [`value::Value`] tree ([`de`]). `#[derive(Deserialize)]`
//!   generates the impl; the blanket [`Deserialize`] marker is kept so
//!   bounds written against real serde's `Deserialize<'de>` still compile.
//! * `#[derive(Serialize)]` / `#[derive(Deserialize)]` re-exported from the
//!   companion `serde_derive` proc-macro crate.

#![forbid(unsafe_code)]

pub mod value;

/// Serialization trait and primitive implementations.
pub mod ser {
    pub use crate::value::{Number, Value};
    use std::collections::BTreeMap;

    /// A type that can render itself as a JSON-shaped [`Value`] tree.
    pub trait Serialize {
        /// Converts `self` into a [`Value`].
        fn to_json_value(&self) -> Value;
    }

    macro_rules! impl_unsigned {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_json_value(&self) -> Value {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        )*};
    }
    impl_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_json_value(&self) -> Value {
                    let v = *self as i64;
                    if v >= 0 {
                        Value::Number(Number::PosInt(v as u64))
                    } else {
                        Value::Number(Number::NegInt(v))
                    }
                }
            }
        )*};
    }
    impl_signed!(i8, i16, i32, i64, isize);

    impl Serialize for f32 {
        fn to_json_value(&self) -> Value {
            Value::Number(Number::Float(f64::from(*self)))
        }
    }

    impl Serialize for f64 {
        fn to_json_value(&self) -> Value {
            Value::Number(Number::Float(*self))
        }
    }

    impl Serialize for bool {
        fn to_json_value(&self) -> Value {
            Value::Bool(*self)
        }
    }

    impl Serialize for char {
        fn to_json_value(&self) -> Value {
            Value::String(self.to_string())
        }
    }

    impl Serialize for str {
        fn to_json_value(&self) -> Value {
            Value::String(self.to_owned())
        }
    }

    impl Serialize for String {
        fn to_json_value(&self) -> Value {
            Value::String(self.clone())
        }
    }

    impl Serialize for Value {
        fn to_json_value(&self) -> Value {
            self.clone()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn to_json_value(&self) -> Value {
            (**self).to_json_value()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn to_json_value(&self) -> Value {
            (**self).to_json_value()
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn to_json_value(&self) -> Value {
            match self {
                Some(v) => v.to_json_value(),
                None => Value::Null,
            }
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn to_json_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_json_value).collect())
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn to_json_value(&self) -> Value {
            self.as_slice().to_json_value()
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn to_json_value(&self) -> Value {
            self.as_slice().to_json_value()
        }
    }

    impl Serialize for () {
        fn to_json_value(&self) -> Value {
            Value::Null
        }
    }

    macro_rules! impl_tuple {
        ($(($($n:tt $t:ident),+))+) => {$(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn to_json_value(&self) -> Value {
                    Value::Array(vec![$(self.$n.to_json_value()),+])
                }
            }
        )+};
    }
    impl_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
        fn to_json_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_json_value).collect())
        }
    }

    impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
        fn to_json_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_json_value).collect())
        }
    }

    impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
        fn to_json_value(&self) -> Value {
            let entries = self
                .iter()
                .map(|(k, v)| (key_string(&k.to_json_value()), v.to_json_value()))
                .collect();
            Value::Object(entries)
        }
    }

    /// Renders a serialized map key as the JSON object-key string.
    fn key_string(key: &Value) -> String {
        match key {
            Value::String(s) => s.clone(),
            other => other.to_compact_string(),
        }
    }
}

pub mod de;

pub use de::{Deserialize, DeserializeOwned};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
