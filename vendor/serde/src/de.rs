//! Deserialization for the vendored `serde` stand-in.
//!
//! Real `serde` deserializes through a visitor-based `Deserializer`; this
//! stand-in decodes from the already-parsed [`Value`] tree instead (the
//! `serde_json` stand-in parses text into a [`Value`], then hands it here).
//! The trait is named [`DeserializeOwned`] so workspace bounds
//! (`T: serde::de::DeserializeOwned`) stay source-compatible with the real
//! crate; `#[derive(Deserialize)]` from the companion `serde_derive`
//! generates the impl.
//!
//! Decoding mirrors the stand-in serializer exactly — externally-tagged
//! enums, declaration-order objects, transparent newtypes — so any value
//! produced by [`crate::Serialize`] round-trips losslessly. The one
//! deliberate exception is IEEE non-finite floats: JSON has no `inf`/`NaN`,
//! the serializer renders them as `null`, and decoding maps `null` back to
//! `f64::NAN` (so `inf` does not survive a round trip; re-serializing
//! yields `null` either way, keeping artifacts byte-stable).

use crate::value::{Number, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Marker trait satisfied by every type, kept for bound compatibility with
/// code written against real serde's `Deserialize<'de>`. The working
/// decode machinery is [`DeserializeOwned`].
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

/// A decoding error: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from any message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can rebuild itself from a JSON [`Value`] tree.
///
/// Named after real serde's `DeserializeOwned` so trait bounds written
/// against this stand-in keep compiling against the real crate.
pub trait DeserializeOwned: Sized {
    /// Decodes `Self` from a value, or explains why it cannot.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;

    /// Decodes `Self` from an *absent* object field. Errors for every
    /// type except `Option` (which reads as `None`) — this is distinct
    /// from a field that is present as `null` (e.g. a serialized
    /// non-finite float), so truncated artifacts fail loudly instead of
    /// silently decoding as defaults.
    fn deserialize_absent() -> Result<Self, DeError> {
        Err(DeError::msg("missing"))
    }
}

/// Looks up a named field in a decoded object. Absent fields only decode
/// for types that opt in via [`DeserializeOwned::deserialize_absent`]
/// (`Option` → `None`); everything else reports the field as missing.
pub fn field<T: DeserializeOwned>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize_value(v).map_err(|e| DeError(format!("field `{name}`: {e}")))
        }
        None => T::deserialize_absent().map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// The entries of an object value, or an error naming `what`.
pub fn object<'v>(value: &'v Value, what: &str) -> Result<&'v [(String, Value)], DeError> {
    match value {
        Value::Object(entries) => Ok(entries),
        other => Err(DeError::expected(what, other)),
    }
}

/// The items of an array value of exactly `arity` elements.
pub fn tuple<'v>(value: &'v Value, arity: usize, what: &str) -> Result<&'v [Value], DeError> {
    match value {
        Value::Array(items) if items.len() == arity => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "expected {what} with {arity} elements, found {}",
            items.len()
        ))),
        other => Err(DeError::expected(what, other)),
    }
}

macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl DeserializeOwned for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(Number::PosInt(v)) => <$t>::try_from(*v)
                        .map_err(|_| DeError::msg(format!(
                            "{v} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected(
                        concat!("a ", stringify!($t)), other)),
                }
            }
        }
    )*};
}
impl_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl DeserializeOwned for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Number(Number::PosInt(v)) => i64::try_from(*v)
                        .map_err(|_| DeError::msg(format!("{v} out of i64 range")))?,
                    Value::Number(Number::NegInt(v)) => *v,
                    other => {
                        return Err(DeError::expected(
                            concat!("an ", stringify!($t)), other))
                    }
                };
                <$t>::try_from(wide).map_err(|_| DeError::msg(format!(
                    "{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_signed!(i8, i16, i32, i64, isize);

impl DeserializeOwned for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(Number::Float(v)) => Ok(*v),
            Value::Number(Number::PosInt(v)) => Ok(*v as f64),
            Value::Number(Number::NegInt(v)) => Ok(*v as f64),
            // The serializer renders non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("an f64", other)),
        }
    }
}

impl DeserializeOwned for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

impl DeserializeOwned for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a bool", other)),
        }
    }
}

impl DeserializeOwned for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("a one-character string", other)),
        }
    }
}

impl DeserializeOwned for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl DeserializeOwned for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl DeserializeOwned for () {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl<T: DeserializeOwned> DeserializeOwned for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }

    fn deserialize_absent() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: DeserializeOwned> DeserializeOwned for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Box::new)
    }
}

fn array_items<'v>(value: &'v Value, what: &str) -> Result<&'v [Value], DeError> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(DeError::expected(what, other)),
    }
}

impl<T: DeserializeOwned> DeserializeOwned for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        array_items(value, "an array")?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: DeserializeOwned, const N: usize> DeserializeOwned for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let items = tuple(value, N, "an array")?;
        let decoded: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        decoded
            .try_into()
            .map_err(|_| DeError::msg("array arity mismatch"))
    }
}

impl<T: DeserializeOwned + Ord> DeserializeOwned for BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        array_items(value, "an array (set)")?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: DeserializeOwned> DeserializeOwned for VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        array_items(value, "an array (deque)")?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<K: DeserializeOwned + Ord, V: DeserializeOwned> DeserializeOwned for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let entries = object(value, "an object (map)")?;
        entries
            .iter()
            .map(|(k, v)| Ok((decode_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

/// Decodes a JSON object key back into a typed map key. String-typed keys
/// are the key text itself; other keys (the serializer renders them via
/// their compact JSON form, e.g. `"42"` for a numeric newtype) are parsed
/// as a JSON scalar and decoded from that.
fn decode_key<K: DeserializeOwned>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    let parsed = crate::value::parse_scalar(key)
        .ok_or_else(|| DeError::msg(format!("cannot decode map key `{key}`")))?;
    K::deserialize_value(&parsed).map_err(|e| DeError::msg(format!("map key `{key}`: {e}")))
}

macro_rules! impl_de_tuple {
    ($(($arity:literal $($n:tt $t:ident),+))+) => {$(
        impl<$($t: DeserializeOwned),+> DeserializeOwned for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let items = tuple(value, $arity, "a tuple")?;
                Ok(($($t::deserialize_value(&items[$n])?,)+))
            }
        }
    )+};
}
impl_de_tuple! {
    (1 0 A)
    (2 0 A, 1 B)
    (3 0 A, 1 B, 2 C)
    (4 0 A, 1 B, 2 C, 3 D)
    (5 0 A, 1 B, 2 C, 3 D, 4 E)
}
