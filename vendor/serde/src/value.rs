//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.
//!
//! Determinism contract: object entries preserve insertion order (derive
//! emits fields in declaration order), numbers render through Rust's
//! shortest-round-trip float formatting, and nothing ever consults a hash
//! map — so serializing the same value twice, in any process, on any
//! thread, yields byte-identical text.

use std::fmt::Write as _;

/// A JSON number. Integers are kept exact; floats render via Rust's
/// shortest-round-trip formatting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number (non-finite values render as `null`).
    Float(f64),
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; entries keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as compact JSON (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders the value as pretty JSON with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                // Match real serde_json: whole floats keep a trailing
                // `.0` (1.0 -> "1.0", not "1") so numbers stay
                // float-typed for consumers; huge magnitudes fall back
                // to shortest-round-trip (exponent) form.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // JSON has no inf/nan; match serde_json's `arbitrary_precision`
                // fallback of rendering them as null.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
