//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.
//!
//! Determinism contract: object entries preserve insertion order (derive
//! emits fields in declaration order), numbers render through Rust's
//! shortest-round-trip float formatting, and nothing ever consults a hash
//! map — so serializing the same value twice, in any process, on any
//! thread, yields byte-identical text.

use std::fmt::Write as _;

/// A JSON number. Integers are kept exact; floats render via Rust's
/// shortest-round-trip formatting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number (non-finite values render as `null`).
    Float(f64),
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; entries keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as compact JSON (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders the value as pretty JSON with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                // Match real serde_json: whole floats keep a trailing
                // `.0` (1.0 -> "1.0", not "1") so numbers stay
                // float-typed for consumers; huge magnitudes fall back
                // to shortest-round-trip (exponent) form.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // JSON has no inf/nan; match serde_json's `arbitrary_precision`
                // fallback of rendering them as null.
                out.push_str("null");
            }
        }
    }
}

impl Value {
    /// Parses JSON text into a [`Value`] tree.
    ///
    /// A strict recursive-descent parser over the grammar the writer above
    /// emits (which is standard JSON): any artifact this workspace writes
    /// parses back losslessly. Returns `None` on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }
}

/// Parses a bare JSON scalar (used for typed map keys, which the writer
/// renders in compact form inside the object-key string).
pub fn parse_scalar(text: &str) -> Option<Value> {
    match Value::parse(text) {
        Some(v @ (Value::Null | Value::Bool(_) | Value::Number(_) | Value::String(_))) => Some(v),
        _ => None,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => parse_literal(bytes, pos, b"null", Value::Null),
        b't' => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => None,
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Value) -> Option<Value> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Value::Array(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    eat(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Value::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Value::Object(entries));
            }
            _ => return None,
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogate pairs never appear in this workspace's
                        // artifacts (the writer only \u-escapes controls),
                        // but accept lone BMP scalars.
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &first => {
                // Consume one UTF-8 scalar (1–4 bytes).
                let width = match first {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return None,
                };
                let chunk = bytes.get(*pos..*pos + width)?;
                out.push_str(std::str::from_utf8(chunk).ok()?);
                *pos += width;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b'0'..=b'9') = bytes.get(*pos) {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while let Some(b'0'..=b'9') = bytes.get(*pos) {
            *pos += 1;
        }
    }
    if let Some(b'e' | b'E') = bytes.get(*pos) {
        is_float = true;
        *pos += 1;
        if let Some(b'+' | b'-') = bytes.get(*pos) {
            *pos += 1;
        }
        while let Some(b'0'..=b'9') = bytes.get(*pos) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).ok()?;
    if is_float {
        // `str::parse::<f64>` is the exact inverse of the shortest
        // round-trip formatting the writer uses, so floats survive a
        // text round trip bit-for-bit.
        return text
            .parse::<f64>()
            .ok()
            .map(|f| Value::Number(Number::Float(f)));
    }
    // Integer-looking literals beyond 64-bit range fall back to f64: the
    // writer renders huge whole floats (|x| ≥ 2^64, e.g. 1e300) as bare
    // digit runs — Rust's `Display` never uses exponent form — and
    // `str::parse::<f64>` recovers the exact value (shortest-round-trip
    // output parses back bit-for-bit).
    let float_fallback = |t: &str| {
        t.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(|f| Value::Number(Number::Float(f)))
    };
    if text.starts_with('-') {
        text.parse::<i64>()
            .ok()
            .map(|v| Value::Number(Number::NegInt(v)))
            .or_else(|| float_fallback(text))
    } else {
        text.parse::<u64>()
            .ok()
            .map(|v| Value::Number(Number::PosInt(v)))
            .or_else(|| float_fallback(text))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
