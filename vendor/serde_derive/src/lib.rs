//! Minimal stand-in for `serde_derive`, written against the raw
//! `proc_macro` API (no `syn`/`quote` — the build container is offline).
//!
//! Both derives support exactly the item shapes this workspace declares:
//!
//! * structs with named fields (including simple type generics such as
//!   `struct P<K: Ord> { .. }` — each parameter gains the trait bound),
//! * tuple structs (single-field newtypes are transparent, wider tuples
//!   are arrays) and unit structs,
//! * enums with any mix of unit, newtype, tuple and struct variants, using
//!   serde's externally-tagged representation.
//!
//! `#[derive(Serialize)]` generates the vendored `serde::ser::Serialize`
//! (declaration order, deterministic); `#[derive(Deserialize)]` generates
//! the vendored `serde::de::DeserializeOwned`, the exact inverse, so every
//! derived type round-trips through JSON text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (externally-tagged, declaration
/// order, deterministic).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand_or_error(input, Mode::Serialize)
}

/// Derives the vendored `serde::de::DeserializeOwned`, decoding the shape
/// `#[derive(Serialize)]` writes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand_or_error(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand_or_error(input: TokenStream, mode: Mode) -> TokenStream {
    match expand(input, mode) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("valid error"),
    }
}

struct Generics {
    /// `<K: Ord + Bound>`-style impl parameter list, or empty.
    impl_params: String,
    /// `<K>`-style argument list, or empty.
    args: String,
}

enum ItemShape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

fn expand(input: TokenStream, mode: Mode) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]` / doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if matches!(id.to_string().as_str(), "struct" | "enum") => {
                break;
            }
            Some(other) => return Err(format!("unexpected token before item: {other}")),
            None => return Err("ran out of tokens before `struct`/`enum`".into()),
        }
    }

    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;

    let bound = match mode {
        Mode::Serialize => "::serde::ser::Serialize",
        Mode::Deserialize => "::serde::de::DeserializeOwned",
    };
    let generics = parse_generics(&tokens, &mut i, bound)?;

    let shape = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::NamedStruct(named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemShape::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemShape::UnitStruct,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum(enum_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        }
    };

    Ok(match mode {
        Mode::Serialize => {
            let body = ser_body(&name, &shape);
            format!(
                "impl{params} ::serde::ser::Serialize for {name}{args} {{\n\
                 \tfn to_json_value(&self) -> ::serde::ser::Value {{\n\
                 \t\t{body}\n\
                 \t}}\n\
                 }}\n",
                params = generics.impl_params,
                args = generics.args,
            )
        }
        Mode::Deserialize => {
            let body = de_body(&name, &shape);
            format!(
                "impl{params} ::serde::de::DeserializeOwned for {name}{args} {{\n\
                 \tfn deserialize_value(__value: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::de::DeError> {{\n\
                 \t\t{body}\n\
                 \t}}\n\
                 }}\n",
                params = generics.impl_params,
                args = generics.args,
            )
        }
    })
}

/// Parses an optional `<...>` generic parameter list starting at `tokens[*i]`.
/// Only plain type parameters with optional trait bounds are supported (the
/// workspace never derives on lifetimes or const generics).
fn parse_generics(tokens: &[TokenTree], i: &mut usize, bound: &str) -> Result<Generics, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => {
            return Ok(Generics {
                impl_params: String::new(),
                args: String::new(),
            })
        }
    }
    *i += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .ok_or("unterminated generic parameter list")?;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(tok.clone());
        *i += 1;
    }

    // Split the parameter list on top-level commas.
    let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0usize;
    for tok in inner {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    params.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        params.last_mut().expect("non-empty").push(tok);
    }
    params.retain(|p| !p.is_empty());

    let mut impl_params = Vec::new();
    let mut args = Vec::new();
    for param in &params {
        let name = match param.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("only plain type parameters are supported".into()),
        };
        let spelled: String = param
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let join = if param.len() == 1 { ":" } else { "+" };
        impl_params.push(format!("{spelled} {join} {bound}"));
        args.push(name);
    }
    Ok(Generics {
        impl_params: format!("<{}>", impl_params.join(", ")),
        args: format!("<{}>", args.join(", ")),
    })
}

/// Collects field names from a named-field body (`{ a: T, b: U }`).
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => return Err(format!("expected `:` after field `{id}`")),
                }
                // Skip the type up to the next top-level comma.
                let mut angle = 0usize;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle = angle.saturating_sub(1),
                            ',' if angle == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            other => return Err(format!("unexpected token in fields: {other}")),
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple body (`(T, U, ...)`).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut pending = false;
    let mut angle = 0usize;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    if pending {
                        arity += 1;
                        pending = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn enum_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants: Vec<(String, VariantShape)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantShape::Tuple(tuple_arity(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantShape::Struct(named_fields(g.stream())?)
                    }
                    _ => VariantShape::Unit,
                };
                // Skip an optional `= <discriminant>` up to the next comma.
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push((vname, shape));
            }
            other => return Err(format!("unexpected token in enum body: {other}")),
        }
    }
    Ok(variants)
}

// --- Serialize codegen -------------------------------------------------

fn ser_body(name: &str, shape: &ItemShape) -> String {
    match shape {
        ItemShape::NamedStruct(fields) => struct_named_ser(fields),
        ItemShape::TupleStruct(arity) => struct_tuple_ser(*arity),
        ItemShape::UnitStruct => "::serde::ser::Value::Null".to_string(),
        ItemShape::Enum(variants) => enum_ser(name, variants),
    }
}

fn struct_named_ser(fields: &[String]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "__fields.push((::std::string::String::from({f:?}), \
             ::serde::ser::Serialize::to_json_value(&self.{f})));\n\t\t"
        ));
    }
    format!(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::ser::Value)> = \
         ::std::vec::Vec::new();\n\t\t{pushes}::serde::ser::Value::Object(__fields)"
    )
}

fn struct_tuple_ser(arity: usize) -> String {
    match arity {
        0 => "::serde::ser::Value::Null".to_string(),
        1 => "::serde::ser::Serialize::to_json_value(&self.0)".to_string(),
        n => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::ser::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!(
                "::serde::ser::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
    }
}

fn enum_ser(name: &str, variants: &[(String, VariantShape)]) -> String {
    let mut arms = String::new();
    for (vname, shape) in variants {
        let arm = match shape {
            VariantShape::Unit => format!(
                "{name}::{vname} => \
                 ::serde::ser::Value::String(::std::string::String::from({vname:?})),"
            ),
            VariantShape::Tuple(1) => format!(
                "{name}::{vname}(__f0) => ::serde::ser::Value::Object(::std::vec![(\
                 ::std::string::String::from({vname:?}), \
                 ::serde::ser::Serialize::to_json_value(__f0))]),"
            ),
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::ser::Serialize::to_json_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({binds}) => \
                     ::serde::ser::Value::Object(::std::vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::ser::Value::Array(::std::vec![{items}]))]),",
                    binds = binds.join(", "),
                    items = items.join(", "),
                )
            }
            VariantShape::Struct(fields) => {
                let binds = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), \
                             ::serde::ser::Serialize::to_json_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => \
                     ::serde::ser::Value::Object(::std::vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::ser::Value::Object(::std::vec![{entries}]))]),",
                    entries = entries.join(", "),
                )
            }
        };
        arms.push_str(&arm);
        arms.push_str("\n\t\t\t");
    }
    format!("match self {{\n\t\t\t{arms}\n\t\t}}")
}

// --- Deserialize codegen -----------------------------------------------

const DE: &str = "::serde::de::DeserializeOwned::deserialize_value";

fn de_body(name: &str, shape: &ItemShape) -> String {
    match shape {
        ItemShape::NamedStruct(fields) => struct_named_de(name, fields),
        ItemShape::TupleStruct(arity) => struct_tuple_de(name, *arity),
        ItemShape::UnitStruct => format!(
            "match __value {{ ::serde::value::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(\
             ::serde::de::DeError::expected(\"unit struct {name}\", __other)) }}"
        ),
        ItemShape::Enum(variants) => enum_de(name, variants),
    }
}

fn struct_named_de(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field(__entries, {f:?})?"))
        .collect();
    format!(
        "let __entries = ::serde::de::object(__value, \"struct {name}\")?;\n\t\t\
         ::std::result::Result::Ok({name} {{ {} }})",
        inits.join(", ")
    )
}

fn struct_tuple_de(name: &str, arity: usize) -> String {
    match arity {
        0 => format!("{DE}(__value).map(|()| {name}())"),
        1 => format!("::std::result::Result::Ok({name}({DE}(__value)?))"),
        n => {
            let items: Vec<String> = (0..n).map(|k| format!("{DE}(&__items[{k}])?")).collect();
            format!(
                "let __items = ::serde::de::tuple(__value, {n}, \"tuple struct {name}\")?;\n\t\t\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
    }
}

fn enum_de(name: &str, variants: &[(String, VariantShape)]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (vname, shape) in variants {
        match shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n\t\t\t\t"
                ));
            }
            VariantShape::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                     {DE}(__payload)?)),\n\t\t\t\t"
                ));
            }
            VariantShape::Tuple(n) => {
                let items: Vec<String> = (0..*n).map(|k| format!("{DE}(&__items[{k}])?")).collect();
                tagged_arms.push_str(&format!(
                    "{vname:?} => {{ let __items = ::serde::de::tuple(\
                     __payload, {n}, \"variant {name}::{vname}\")?; \
                     ::std::result::Result::Ok({name}::{vname}({items})) }}\n\t\t\t\t",
                    items = items.join(", "),
                ));
            }
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(__fields, {f:?})?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vname:?} => {{ let __fields = ::serde::de::object(\
                     __payload, \"variant {name}::{vname}\")?; \
                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }}\n\t\t\t\t",
                    inits = inits.join(", "),
                ));
            }
        }
    }
    format!(
        "match __value {{\n\t\t\t\
         ::serde::value::Value::String(__s) => match __s.as_str() {{\n\t\t\t\t\
         {unit_arms}__other => ::std::result::Result::Err(::serde::de::DeError::msg(\
         ::std::format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\t\t\t}},\n\t\t\t\
         ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\t\t\t\t\
         let (__tag, __payload) = &__entries[0];\n\t\t\t\t\
         match __tag.as_str() {{\n\t\t\t\t\
         {tagged_arms}__other => ::std::result::Result::Err(::serde::de::DeError::msg(\
         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\t\t\t\t}}\n\t\t\t}}\n\t\t\t\
         __other => ::std::result::Result::Err(\
         ::serde::de::DeError::expected(\"enum {name}\", __other)),\n\t\t}}"
    )
}
