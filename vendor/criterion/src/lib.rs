//! Minimal, API-compatible stand-in for the parts of `criterion` this
//! workspace uses (vendored: the build container is offline).
//!
//! Measurement model: a short warm-up sizes the batch so one timed batch
//! lasts roughly `TARGET_BATCH`; the reported figure is the best
//! nanoseconds-per-iteration over `BATCHES` batches (minimum-of-batches
//! is robust against scheduler noise, which matters in single-core CI
//! containers). Results print one line per benchmark:
//! `bench: <group>/<name> ... <ns> ns/iter`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One timed batch aims for roughly this long.
const TARGET_BATCH: Duration = Duration::from_millis(25);
/// Batches per benchmark; the minimum is reported.
const BATCHES: u32 = 5;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Honors a single CLI substring filter, like the real crate.
    pub fn configured_from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(self.filter.as_deref(), name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(self.criterion.filter.as_deref(), &full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Records the group's throughput basis (accepted, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, like the real crate.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput basis for a group.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, keeping the best batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: find an iteration count filling roughly one batch.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH / 2 || iters >= 1 << 24 {
                let scale = TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 24);
                break;
            }
            iters *= 4;
        }
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
        }
        self.ns_per_iter = Some(best);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(filter: Option<&str>, name: &str, mut f: F) {
    if let Some(filter) = filter {
        if !name.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher { ns_per_iter: None };
    f(&mut bencher);
    match bencher.ns_per_iter {
        Some(ns) => println!("bench: {name} ... {ns:.1} ns/iter"),
        None => println!("bench: {name} ... no measurement (b.iter never called)"),
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::configured_from_args();
            $($group(&mut criterion);)+
        }
    };
}
