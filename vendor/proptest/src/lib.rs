//! Minimal, API-compatible stand-in for the parts of `proptest` this
//! workspace uses (vendored: the build container is offline).
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message; rerunning is deterministic, so the case is
//!   reproducible by construction.
//! * **Deterministic cases.** Each `proptest!` test runs a fixed number of
//!   cases seeded from the test's module path and name — no OS entropy, no
//!   persistence files, identical behaviour on every machine.
//! * **Small strategy algebra.** Ranges, `any`, `Just`, tuples,
//!   `prop_map`, `prop_oneof!` and `collection::vec` — exactly what the
//!   workspace's property tests need.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy, TestRng};

/// Number of cases each `proptest!` test executes.
pub const CASES: u64 = 48;

/// Re-export hub matching `proptest::prelude::prop::*` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Builds a strategy choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`crate::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            for __case in 0..$crate::CASES {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)*
                $body
            }
        }
    )*};
}
