//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::{Arbitrary, TestRng};

/// A position into a collection whose length is only known at use time.
#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    /// Resolves the index against a concrete collection length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
