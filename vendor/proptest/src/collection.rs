//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use std::ops::Range;

/// Strategy producing `Vec`s with length drawn from `size` and elements
/// drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`]; lengths are uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
