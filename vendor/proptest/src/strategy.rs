//! The strategy algebra: deterministic value generation.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(GOLDEN);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The deterministic generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for one `(test, case)` pair: FNV-1a over the test
    /// path mixed with the case index, then SplitMix64 for whitening.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001B3);
        }
        let mut seed = h ^ case.wrapping_mul(GOLDEN);
        TestRng {
            state: splitmix64(&mut seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; used by [`prop_oneof!`](crate::prop_oneof) so all arms
/// unify to one type.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds a choice strategy. `choices` must be non-empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// A type with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized floats: property tests here use them as
        // ordinary coordinates, not as IEEE edge-case probes.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
