//! Minimal, API-compatible stand-in for the parts of `rand` 0.8 this
//! workspace uses (vendored: the build container is offline).
//!
//! The workspace brings its own generator (`airdnd_sim::SimRng` implements
//! [`RngCore`]); this crate only supplies the trait vocabulary:
//! [`RngCore`], [`Error`], and the [`Rng`] extension with `gen` /
//! `gen_range`. All sampling is deterministic given the generator state —
//! there is no `thread_rng`, no OS entropy, and no rejection loop whose
//! iteration count depends on anything but the drawn values.

#![forbid(unsafe_code)]

/// Error type for fallible generators. The stand-in never produces it.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core generator interface (matches `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A type samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Random {
    /// Draws a uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Random>::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience extension over [`RngCore`] (matches the `rand::Rng` surface
/// this workspace uses).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
