//! Minimal, API-compatible stand-in for the parts of `serde_json` this
//! workspace uses (vendored: the build container is offline).
//!
//! Provides [`Value`], [`json!`], [`to_value`], [`to_string`],
//! [`to_string_pretty`], and — for the sharded-sweep merge path —
//! [`from_str`] / [`from_value`], which parse JSON text back into any
//! [`serde::de::DeserializeOwned`] type. Serialization is infallible here
//! (the writer is a `String`), but the `Result` signatures are kept so
//! call sites match the real crate. Output is deterministic: object keys
//! keep insertion order and floats use Rust's shortest-round-trip
//! formatting, so values round-trip through text bit-for-bit.

#![forbid(unsafe_code)]

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::value::{Number, Value};

/// Serialization or deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Renders a serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_compact_string())
}

/// Renders a serializable value as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_pretty_string())
}

/// Parses JSON text into any decodable type.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = Value::parse(text).ok_or_else(|| Error("malformed JSON".to_owned()))?;
    T::deserialize_value(&value).map_err(|e| Error(e.to_string()))
}

/// Decodes a [`Value`] tree into any decodable type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value).map_err(|e| Error(e.to_string()))
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supported forms: `null`, array literals, flat object literals with
/// string-literal keys and expression values, and any serializable
/// expression. (Nested object literals must be wrapped in their own
/// `json!` call — the flat-object grammar is all this workspace needs.)
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_order_and_escaping() {
        let v = json!({ "b": 1u32, "a": "x\"y" });
        assert_eq!(v.to_compact_string(), r#"{"b":1,"a":"x\"y"}"#);
    }

    #[test]
    fn pretty_matches_shape() {
        let v = json!({ "xs": vec![1u32, 2] });
        assert_eq!(
            v.to_pretty_string(),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn floats_and_negatives() {
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("s".into(), Value::String("a\"b\\c\nd".into())),
            (
                "xs".into(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(7)),
                    Value::Number(Number::NegInt(-2)),
                    Value::Number(Number::Float(0.1 + 0.2)),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("obj".into(), Value::Object(vec![])),
        ]);
        assert_eq!(Value::parse(&v.to_compact_string()), Some(v.clone()));
        assert_eq!(Value::parse(&v.to_pretty_string()), Some(v));
    }

    #[test]
    fn floats_survive_text_round_trip_bit_for_bit() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            1e-300,
            2.5e17,
            123_456_789.123_456_78,
            -0.0,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn typed_from_str_decodes() {
        let xs: Vec<(u64, String)> = from_str(r#"[[1,"a"],[2,"b"]]"#).unwrap();
        assert_eq!(xs, vec![(1, "a".into()), (2, "b".into())]);
        let opt: Option<f64> = from_str("null").unwrap();
        assert_eq!(opt, None);
        assert!(from_str::<u64>("\"nope\"").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err(), "truncated input");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", ""] {
            assert!(Value::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    /// Whole floats beyond 64-bit integer range render as bare digit runs
    /// (Rust `Display` never uses exponent form); the parser must fall
    /// back to f64 instead of failing on integer overflow.
    #[test]
    fn huge_whole_floats_round_trip_via_integer_fallback() {
        for &x in &[1e300f64, 2f64.powi(64), -1e300, 1.8e19] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    /// Absent fields are an error for non-`Option` types; `Option` fields
    /// read as `None`. A field *present* as `null` still decodes (that is
    /// how serialized non-finite floats come back, as NaN).
    #[test]
    fn missing_fields_fail_loudly_except_option() {
        use serde::de::field;
        let entries = vec![("present".to_owned(), Value::Null)];
        let err = field::<f64>(&entries, "gone").unwrap_err();
        assert!(err.to_string().contains("missing field `gone`"), "{err}");
        assert!(field::<String>(&entries, "gone").is_err());
        assert_eq!(field::<Option<f64>>(&entries, "gone").unwrap(), None);
        // Present-as-null keeps the serializer's non-finite contract.
        assert!(field::<f64>(&entries, "present").unwrap().is_nan());
        assert_eq!(field::<Option<f64>>(&entries, "present").unwrap(), None);
    }
}
