//! Minimal, API-compatible stand-in for the parts of `serde_json` this
//! workspace uses (vendored: the build container is offline).
//!
//! Provides [`Value`], [`json!`], [`to_value`], [`to_string`] and
//! [`to_string_pretty`]. Serialization is infallible here (the writer is a
//! `String`), but the `Result` signatures are kept so call sites match the
//! real crate. Output is deterministic: object keys keep insertion order
//! and floats use Rust's shortest-round-trip formatting.

#![forbid(unsafe_code)]

use serde::Serialize;

pub use serde::value::{Number, Value};

/// Serialization error. Kept for signature compatibility; never produced.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Renders a serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_compact_string())
}

/// Renders a serializable value as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_pretty_string())
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supported forms: `null`, array literals, flat object literals with
/// string-literal keys and expression values, and any serializable
/// expression. (Nested object literals must be wrapped in their own
/// `json!` call — the flat-object grammar is all this workspace needs.)
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_order_and_escaping() {
        let v = json!({ "b": 1u32, "a": "x\"y" });
        assert_eq!(v.to_compact_string(), r#"{"b":1,"a":"x\"y"}"#);
    }

    #[test]
    fn pretty_matches_shape() {
        let v = json!({ "xs": vec![1u32, 2] });
        assert_eq!(
            v.to_pretty_string(),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn floats_and_negatives() {
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
