//! Property-based tests for the simulation substrate.

use airdnd_sim::{percentile, Actor, Context, Engine, OnlineStats, SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// Time arithmetic: (t + d) − t == d for any representable values that
    /// do not saturate.
    #[test]
    fn time_addition_round_trips(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur).saturating_since(t0), dur);
    }

    /// Durations scale linearly: d*k / k == d (within integer division).
    #[test]
    fn duration_scaling_consistent(nanos in 0u64..1 << 40, k in 1u64..1000) {
        let d = SimDuration::from_nanos(nanos);
        prop_assert_eq!((d * k) / k, d);
    }

    /// The same seed always produces the same stream; different streams
    /// from the same parent fork are independent but reproducible.
    #[test]
    fn rng_reproducibility(seed in any::<u64>(), tag in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fork1 = a.fork(tag);
        let mut fork2 = b.fork(tag);
        for _ in 0..16 {
            prop_assert_eq!(fork1.next_u64(), fork2.next_u64());
        }
    }

    /// Uniform draws stay in [0, 1) regardless of seed.
    #[test]
    fn unit_interval_holds(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..256 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn online_stats_match_two_pass(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut online = OnlineStats::new();
        for &x in &xs {
            online.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let scale = mean.abs().max(1.0);
        prop_assert!((online.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((online.variance() - var).abs() / var.max(1.0) < 1e-6);
    }

    /// Engine event ordering: messages scheduled with non-decreasing delays
    /// from one sender arrive in schedule order.
    #[test]
    fn engine_preserves_schedule_order(delays in proptest::collection::vec(0u64..1000, 1..50)) {
        struct Collect {
            got: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Actor<u64> for Collect {
            fn on_message(&mut self, _ctx: &mut Context<'_, u64>, msg: u64) {
                self.got.borrow_mut().push(msg);
            }
        }
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut engine = Engine::new(0);
        let id = engine.spawn(Collect { got: got.clone() });
        // Sort delays so schedule order == time order; equal delays must
        // preserve insertion order (stable (time, seq) ordering).
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        for (i, &d) in sorted.iter().enumerate() {
            engine.send(id, SimDuration::from_micros(d), i as u64);
        }
        engine.run_to_completion();
        let received = got.borrow().clone();
        prop_assert_eq!(received, (0..sorted.len() as u64).collect::<Vec<_>>());
    }

    /// Percentile of a constant vector is that constant at any q.
    #[test]
    fn percentile_of_constant(c in -1e6f64..1e6, n in 1usize..50, q in 0.0f64..=1.0) {
        let xs = vec![c; n];
        prop_assert_eq!(percentile(&xs, q), Some(c));
    }
}
