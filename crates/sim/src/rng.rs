//! Seedable, forkable randomness for reproducible experiments.
//!
//! [`SimRng`] is a PCG32 generator (O'Neill 2014): 64-bit state, 64-bit
//! stream selector, 32-bit output. It implements [`rand::RngCore`] so all of
//! `rand`'s distribution helpers work on it, and adds [`SimRng::fork`] which
//! deterministically derives an independent stream — each simulated node gets
//! its own forked generator, so adding a node never perturbs the random
//! sequence observed by the others.

use rand::RngCore;
use serde::{Deserialize, Serialize};

const PCG_MULT: u64 = 6364136223846793005;

/// A deterministic PCG32 random-number generator.
///
/// ```
/// use airdnd_sim::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut child = a.fork(1);
/// assert_ne!(a.gen::<u64>(), child.gen::<u64>());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

/// SplitMix64 — used to expand seeds into well-mixed initial state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed, on stream 0.
    pub fn seed_from(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Creates a generator from a seed on a specific stream; distinct
    /// streams with the same seed produce uncorrelated sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut mix = seed;
        let state0 = splitmix64(&mut mix);
        let mut smix = stream.wrapping_add(0xDA3E39CB94B95BDB);
        let inc = splitmix64(&mut smix) | 1; // stream selector must be odd
        let mut rng = SimRng { state: 0, inc };
        rng.state = state0.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Deterministically derives an independent child generator.
    ///
    /// The child depends only on the parent's *identity* (its stream and a
    /// snapshot of its state mixed with `tag`), so forking does not consume
    /// randomness visible to distribution sampling and the same `(parent,
    /// tag)` pair always yields the same child.
    pub fn fork(&self, tag: u64) -> SimRng {
        let mut mix = self.inc ^ tag.wrapping_mul(0x9E3779B97F4A7C15);
        let seed = splitmix64(&mut mix) ^ self.state.rotate_left(17);
        SimRng::with_stream(seed, tag.wrapping_add(self.inc >> 1))
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard open-interval construction.
        let x = self.next_u64() >> 11;
        x as f64 / (1u64 << 53) as f64
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Draws from a normal distribution via Box–Muller.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random index in `[0, len)`, or `None` if `len == 0`.
    pub fn index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some((self.next_u64() % len as u64) as usize)
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "distinct seeds should disagree almost always, agreed {same}/64"
        );
    }

    #[test]
    fn streams_are_uncorrelated() {
        let mut a = SimRng::with_stream(9, 0);
        let mut b = SimRng::with_stream(9, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = SimRng::seed_from(55);
        let mut c1 = parent.fork(7);
        let mut c2 = parent.fork(7);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent.fork(8);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(77);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean was {mean}");
    }

    #[test]
    fn exponential_mean_matches_parameter() {
        let mut rng = SimRng::seed_from(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "exp mean was {mean}");
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SimRng::seed_from(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "normal mean was {mean}");
        assert!(
            (var.sqrt() - 3.0).abs() < 0.1,
            "normal sd was {}",
            var.sqrt()
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.5));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seed_from(8);
        assert_eq!(rng.index(0), None);
        for _ in 0..1000 {
            let i = rng.index(7).unwrap();
            assert!(i < 7);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from(9);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        // Identical generator state produces identical bytes.
        let mut rng2 = SimRng::seed_from(9);
        let mut buf2 = [0u8; 7];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn works_with_rand_traits() {
        let mut rng = SimRng::seed_from(10);
        let x: f64 = rng.gen_range(0.0..100.0);
        assert!((0.0..100.0).contains(&x));
        let y: u32 = rng.gen_range(5..10);
        assert!((5..10).contains(&y));
    }
}
