//! # airdnd-sim — deterministic discrete-event simulation substrate
//!
//! Every other AirDnD crate runs on top of this engine. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond resolution,
//! * [`SimRng`] — a seedable, forkable PCG32 random-number generator so every
//!   experiment is reproducible from a single `u64` seed,
//! * [`Engine`] — an actor-based discrete-event scheduler with deterministic
//!   `(time, sequence)` event ordering,
//! * [`Metrics`] — counters, gauges and reservoir histograms collected during
//!   a run,
//! * [`stats`] — Welford/percentile helpers used by the experiment harness,
//! * [`Trace`] — an optional bounded event trace for debugging protocols.
//!
//! The paper's "asynchronous" orchestration is modelled as message-driven
//! actors: an actor only reacts to messages, and messages are delivered at
//! deterministic virtual times. There are no threads and no wall-clock
//! dependence anywhere in the workspace, which makes every experiment in
//! `EXPERIMENTS.md` reproducible bit-for-bit from its seed.
//!
//! ## Example
//!
//! ```
//! use airdnd_sim::{Engine, Actor, Context, SimDuration};
//!
//! struct Ping { got: u32 }
//! impl Actor<u32> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.send_self(SimDuration::from_millis(5), 1);
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, msg: u32) {
//!         self.got += msg;
//!         if self.got < 3 {
//!             ctx.send_self(SimDuration::from_millis(5), 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(42);
//! let id = engine.spawn(Ping { got: 0 });
//! engine.run_to_completion();
//! assert_eq!(engine.now(), airdnd_sim::SimTime::from_millis(15));
//! # let _ = id;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Actor, ActorId, Context, Engine, RunOutcome};
pub use metrics::{Histogram, Metrics};
pub use rng::SimRng;
pub use stats::{percentile, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
