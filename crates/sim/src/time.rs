//! Virtual time for the discrete-event engine.
//!
//! [`SimTime`] is an absolute instant measured in nanoseconds since the start
//! of the simulation; [`SimDuration`] is a span between two instants. Both
//! are thin `u64` newtypes ([C-NEWTYPE]) so they are `Copy`, total-ordered
//! and cheap to store in event queues. Nanosecond resolution in a `u64`
//! covers ~584 simulated years, far beyond any experiment here.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
///
/// ```
/// use airdnd_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use airdnd_sim::SimDuration;
/// assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime requires non-negative finite seconds"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanosecond count since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, returning `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration requires non-negative finite seconds"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float factor, saturating on
    /// overflow.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be non-negative and finite"
        );
        let nanos = (self.0 as f64 * factor).min(u64::MAX as f64);
        SimDuration(nanos as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d, SimDuration::from_millis(1250));
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
        let t = SimTime::from_secs_f64(0.5);
        assert_eq!(t.as_millis_f64(), 500.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d.mul_f64(0.1), SimDuration::from_secs(1));
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::MAX.checked_add(SimDuration::ZERO),
            Some(SimTime::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_is_total_and_matches_nanos() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(6);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
