//! Run-time metrics: counters, gauges and reservoir histograms.
//!
//! Actors record into a [`Metrics`] registry through their context; the
//! experiment harness reads the registry after a run to produce table rows.
//! Histograms keep exact streaming moments (Welford) plus a bounded
//! reservoir of samples for percentile estimation, so memory stays constant
//! regardless of run length.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Number of samples a histogram retains for percentile estimation.
const RESERVOIR_CAPACITY: usize = 4096;

/// A monotonically increasing counter handle.
#[derive(Debug)]
pub struct Counter<'a>(&'a mut u64);

impl Counter<'_> {
    /// Adds one.
    pub fn incr(&mut self) {
        *self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        *self.0 += n;
    }
}

/// A streaming histogram with exact moments and reservoir percentiles.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    reservoir: Vec<f64>,
    // Deterministic quasi-random replacement state (xorshift).
    rstate: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            reservoir: Vec::new(),
            rstate: 0x9E3779B97F4A7C15,
        }
    }

    /// Records one observation. Non-finite values are ignored (and would
    /// otherwise poison the moments).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.reservoir.len() < RESERVOIR_CAPACITY {
            self.reservoir.push(value);
        } else {
            // Algorithm R with a deterministic xorshift source.
            self.rstate ^= self.rstate << 13;
            self.rstate ^= self.rstate >> 7;
            self.rstate ^= self.rstate << 17;
            let j = (self.rstate % self.count) as usize;
            if j < RESERVOIR_CAPACITY {
                self.reservoir[j] = value;
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 if fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated `q`-quantile (`q` in `[0,1]`) from the reservoir, `None` if
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.reservoir.is_empty() {
            return None;
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("reservoir holds no NaN"));
        Some(crate::stats::percentile_of_sorted(&sorted, q))
    }

    /// Convenience: the median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "hist(empty)");
        }
        write!(
            f,
            "hist(n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p95={:.3} max={:.3})",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.median().unwrap_or(0.0),
            self.quantile(0.95).unwrap_or(0.0),
            self.max,
        )
    }
}

/// A named registry of counters, gauges and histograms.
///
/// Keys are plain strings; the convention across AirDnD crates is
/// `"<area>.<event>"`, e.g. `"mesh.joins"` or `"offload.latency_ms"`.
///
/// ```
/// use airdnd_sim::Metrics;
/// let mut m = Metrics::new();
/// m.counter("mesh.joins").add(3);
/// m.record("offload.latency_ms", 12.5);
/// m.set_gauge("mesh.size", 4.0);
/// assert_eq!(m.counter_value("mesh.joins"), 3);
/// assert_eq!(m.histogram("offload.latency_ms").unwrap().count(), 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a handle to the named counter, creating it at zero.
    pub fn counter(&mut self, name: &str) -> Counter<'_> {
        Counter(self.counters.entry(name.to_owned()).or_insert(0))
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an instantaneous value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records an observation into the named histogram, creating it.
    pub fn record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, histogram reservoirs concatenate up to capacity).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &s in &h.reservoir {
                dst.record(s);
            }
        }
    }

    /// Drops all recorded data.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge   {k} = {v:.4}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "hist    {k} = {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.counter("a").incr();
        m.counter("a").add(4);
        assert_eq!(m.counter_value("a"), 5);
        assert_eq!(m.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_moments_are_exact() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert!((h.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(9.0));
    }

    #[test]
    fn histogram_quantiles_from_reservoir() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 499.5).abs() < 2.0, "p50 was {p50}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 949.0).abs() < 3.0, "p95 was {p95}");
    }

    #[test]
    fn histogram_reservoir_stays_bounded() {
        let mut h = Histogram::new();
        for i in 0..100_000 {
            h.record(i as f64);
        }
        assert!(h.reservoir.len() <= RESERVOIR_CAPACITY);
        assert_eq!(h.count(), 100_000);
        // Reservoir median should still approximate the true median.
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 50_000.0).abs() < 5_000.0, "p50 was {p50}");
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std_dev(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.to_string(), "hist(empty)");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Metrics::new();
        a.counter("c").add(2);
        a.record("h", 1.0);
        let mut b = Metrics::new();
        b.counter("c").add(3);
        b.record("h", 3.0);
        b.set_gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    fn display_is_never_empty_per_entry() {
        let mut m = Metrics::new();
        m.counter("x").incr();
        m.record("y", 2.0);
        let s = m.to_string();
        assert!(s.contains("counter x = 1"));
        assert!(s.contains("hist    y"));
    }
}
