//! The discrete-event actor engine.
//!
//! An [`Engine`] owns a set of [`Actor`]s and a priority queue of pending
//! messages. Each message is addressed to one actor and carries a delivery
//! time; the engine repeatedly pops the earliest message and hands it to the
//! destination actor, which may send further messages through its
//! [`Context`]. Two messages scheduled for the same instant are delivered in
//! the order they were scheduled (`(time, sequence)` ordering), which makes
//! runs bit-for-bit deterministic for a given seed.
//!
//! Asynchrony in the AirDnD sense — nodes never waiting on global rounds —
//! falls out naturally: an actor only ever reacts to individual messages.

use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifies an actor within one [`Engine`].
///
/// Ids are assigned densely from zero in spawn order and are never reused,
/// so they double as stable indices in experiment bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// The raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (for bookkeeping tables).
    pub const fn from_index(index: usize) -> Self {
        ActorId(index as u32)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A simulated entity that reacts to messages of type `M`.
///
/// Implementations should be pure state machines: all side effects go
/// through the [`Context`]. See the crate-level example.
pub trait Actor<M> {
    /// Called once when the actor is added to the engine.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called for every message delivered to this actor.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, msg: M);
}

struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    dest: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Why an engine run returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Completed,
    /// The requested time horizon was reached with events still pending.
    HorizonReached,
    /// An actor called [`Context::halt`].
    Halted,
    /// The configured event-count limit was hit (runaway-protection).
    EventLimit,
}

struct EngineShared<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    rng: SimRng,
    metrics: Metrics,
    trace: Trace,
    next_actor: u32,
    pending_spawn: Vec<(ActorId, Box<dyn Actor<M>>)>,
    pending_stop: Vec<ActorId>,
    halted: bool,
    delivered: u64,
    dropped: u64,
}

impl<M> EngineShared<M> {
    fn push(&mut self, time: SimTime, dest: ActorId, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time,
            seq,
            dest,
            msg,
        });
    }
}

/// The capabilities available to an actor while it handles a message.
///
/// A `Context` borrows the engine internals, so it cannot outlive the
/// handler invocation.
pub struct Context<'a, M> {
    shared: &'a mut EngineShared<M>,
    self_id: ActorId,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now
    }

    /// The id of the actor handling this message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `msg` to `dest`, delivered `delay` from now.
    pub fn send(&mut self, dest: ActorId, delay: SimDuration, msg: M) {
        let at = self.shared.now + delay;
        self.shared.push(at, dest, msg);
    }

    /// Sends `msg` to `dest` at an absolute time.
    ///
    /// Times in the past are clamped to "now" (delivered next, preserving
    /// scheduling order).
    pub fn send_at(&mut self, dest: ActorId, at: SimTime, msg: M) {
        let at = at.max(self.shared.now);
        self.shared.push(at, dest, msg);
    }

    /// Sends `msg` back to the handling actor after `delay` (a timer).
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        self.send(self.self_id, delay, msg);
    }

    /// Spawns a new actor; it receives `on_start` after the current handler
    /// returns, at the current virtual time.
    pub fn spawn(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.shared.next_actor);
        self.shared.next_actor += 1;
        self.shared.pending_spawn.push((id, actor));
        id
    }

    /// Removes an actor after the current handler returns. Messages already
    /// queued for it are dropped on delivery (counted in
    /// [`Engine::dropped_messages`]).
    pub fn stop_actor(&mut self, id: ActorId) {
        self.shared.pending_stop.push(id);
    }

    /// Removes the handling actor itself.
    pub fn stop_self(&mut self) {
        let id = self.self_id;
        self.stop_actor(id);
    }

    /// Stops the whole engine run after the current handler returns.
    pub fn halt(&mut self) {
        self.shared.halted = true;
    }

    /// The engine-wide random-number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.shared.rng
    }

    /// Derives an independent per-entity generator; see [`SimRng::fork`].
    pub fn fork_rng(&mut self, tag: u64) -> SimRng {
        self.shared.rng.fork(tag)
    }

    /// The engine-wide metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.shared.metrics
    }

    /// `true` when the engine records trace entries — check before paying
    /// for a `format!`ed label on a hot path.
    pub fn trace_enabled(&self) -> bool {
        self.shared.trace.is_enabled()
    }

    /// Records a trace entry attributed to this actor (no-op unless tracing
    /// is enabled on the engine).
    pub fn trace(&mut self, label: impl Into<String>) {
        let (now, id) = (self.shared.now, self.self_id);
        self.shared.trace.record(now, id.index() as u32, label);
    }
}

/// A deterministic discrete-event engine over message type `M`.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Engine<M> {
    shared: EngineShared<M>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    event_limit: u64,
}

impl<M> Engine<M> {
    /// Creates an engine whose randomness derives entirely from `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            shared: EngineShared {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                rng: SimRng::seed_from(seed),
                metrics: Metrics::new(),
                trace: Trace::disabled(),
                next_actor: 0,
                pending_spawn: Vec::new(),
                pending_stop: Vec::new(),
                halted: false,
                delivered: 0,
                dropped: 0,
            },
            actors: Vec::new(),
            event_limit: u64::MAX,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now
    }

    /// Number of actors ever spawned (including stopped ones).
    pub fn actor_count(&self) -> usize {
        self.shared.next_actor as usize
    }

    /// Number of messages delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.shared.delivered
    }

    /// Number of messages dropped because their destination had stopped.
    pub fn dropped_messages(&self) -> u64 {
        self.shared.dropped
    }

    /// `true` if the given actor is still alive.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.actors
            .get(id.index())
            .is_some_and(|slot| slot.is_some())
    }

    /// Caps the number of events a single `run_*` call may process; exceeding
    /// it returns [`RunOutcome::EventLimit`]. Defaults to unlimited.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Enables bounded tracing with the given capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.shared.trace = Trace::bounded(capacity);
    }

    /// Read access to the trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    /// Read access to collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Mutable access to collected metrics (e.g. to pre-register or reset).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.shared.metrics
    }

    /// The engine-wide RNG (useful for seeding workloads outside actors).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.shared.rng
    }

    /// Adds an actor, invoking its `on_start` immediately at the current
    /// virtual time, and returns its id.
    pub fn spawn(&mut self, actor: impl Actor<M> + 'static) -> ActorId {
        self.spawn_boxed(Box::new(actor))
    }

    /// Object-safe variant of [`Engine::spawn`].
    pub fn spawn_boxed(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.shared.next_actor);
        self.shared.next_actor += 1;
        self.shared.pending_spawn.push((id, actor));
        self.drain_pending();
        id
    }

    /// Injects a message from outside the actor system.
    pub fn send(&mut self, dest: ActorId, delay: SimDuration, msg: M) {
        let at = self.shared.now + delay;
        self.shared.push(at, dest, msg);
    }

    /// Injects a message for delivery at an absolute time (clamped to now).
    pub fn send_at(&mut self, dest: ActorId, at: SimTime, msg: M) {
        let at = at.max(self.shared.now);
        self.shared.push(at, dest, msg);
    }

    fn drain_pending(&mut self) {
        // Spawns can trigger further spawns from on_start; loop until quiet.
        loop {
            for id in self.shared.pending_stop.drain(..) {
                if let Some(slot) = self.actors.get_mut(id.index()) {
                    *slot = None;
                }
            }
            if self.shared.pending_spawn.is_empty() {
                break;
            }
            let batch: Vec<_> = self.shared.pending_spawn.drain(..).collect();
            for (id, mut actor) in batch {
                debug_assert_eq!(id.index(), self.actors.len(), "actor ids must stay dense");
                let mut ctx = Context {
                    shared: &mut self.shared,
                    self_id: id,
                };
                actor.on_start(&mut ctx);
                self.actors.push(Some(actor));
            }
        }
    }

    fn dispatch_one(&mut self) -> bool {
        let Some(ev) = self.shared.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.shared.now, "time must be monotone");
        self.shared.now = ev.time;
        match self.actors.get_mut(ev.dest.index()).and_then(Option::take) {
            Some(mut actor) => {
                self.shared.delivered += 1;
                let mut ctx = Context {
                    shared: &mut self.shared,
                    self_id: ev.dest,
                };
                actor.on_message(&mut ctx, ev.msg);
                // The actor may have stopped itself; honour that after
                // putting it back so ids stay dense.
                self.actors[ev.dest.index()] = Some(actor);
            }
            None => {
                self.shared.dropped += 1;
            }
        }
        self.drain_pending();
        true
    }

    /// Runs until the queue is empty (or a halt / event limit intervenes).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until no event at or before `horizon` remains. Advances `now` to
    /// `horizon` when the outcome is [`RunOutcome::HorizonReached`] or the
    /// queue empties earlier (unless `horizon` is [`SimTime::MAX`]).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.shared.halted = false;
        let mut processed: u64 = 0;
        loop {
            if self.shared.halted {
                return RunOutcome::Halted;
            }
            if processed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            match self.shared.queue.peek() {
                None => {
                    if horizon != SimTime::MAX {
                        self.shared.now = self.shared.now.max(horizon);
                    }
                    return RunOutcome::Completed;
                }
                Some(next) if next.time > horizon => {
                    self.shared.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    self.dispatch_one();
                    processed += 1;
                }
            }
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        let horizon = self.shared.now + span;
        self.run_until(horizon)
    }
}

impl<M> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.shared.now)
            .field("actors", &self.shared.next_actor)
            .field("queued", &self.shared.queue.len())
            .field("delivered", &self.shared.delivered)
            .field("dropped", &self.shared.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Tick,
        Value(u64),
    }

    struct Recorder {
        log: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, u64)>>>,
    }
    impl Actor<Msg> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
            if let Msg::Value(v) = msg {
                self.log.borrow_mut().push((ctx.now(), v));
            }
        }
    }

    type RecorderLog = std::rc::Rc<std::cell::RefCell<Vec<(SimTime, u64)>>>;

    fn recorder() -> (Recorder, RecorderLog) {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        (Recorder { log: log.clone() }, log)
    }

    #[test]
    fn same_time_events_delivered_in_schedule_order() {
        let mut engine = Engine::new(0);
        let (actor, log) = recorder();
        let id = engine.spawn(actor);
        let t = SimDuration::from_millis(10);
        for v in 0..20 {
            engine.send(id, t, Msg::Value(v));
        }
        engine.run_to_completion();
        let got: Vec<u64> = log.borrow().iter().map(|&(_, v)| v).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn time_advances_to_event_times() {
        let mut engine = Engine::new(0);
        let (actor, log) = recorder();
        let id = engine.spawn(actor);
        engine.send(id, SimDuration::from_millis(5), Msg::Value(1));
        engine.send(id, SimDuration::from_millis(2), Msg::Value(2));
        engine.run_to_completion();
        let log = log.borrow();
        assert_eq!(log[0], (SimTime::from_millis(2), 2));
        assert_eq!(log[1], (SimTime::from_millis(5), 1));
    }

    struct Ticker {
        remaining: u32,
        period: SimDuration,
    }
    impl Actor<Msg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send_self(self.period, Msg::Tick);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            self.remaining -= 1;
            ctx.metrics().counter("ticks").incr();
            if self.remaining > 0 {
                ctx.send_self(self.period, Msg::Tick);
            }
        }
    }

    #[test]
    fn periodic_timer_pattern() {
        let mut engine = Engine::new(0);
        engine.spawn(Ticker {
            remaining: 5,
            period: SimDuration::from_secs(1),
        });
        let outcome = engine.run_to_completion();
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(engine.now(), SimTime::from_secs(5));
        assert_eq!(engine.metrics().counter_value("ticks"), 5);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut engine = Engine::new(0);
        engine.spawn(Ticker {
            remaining: 100,
            period: SimDuration::from_secs(1),
        });
        let outcome = engine.run_until(SimTime::from_millis(3500));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(engine.now(), SimTime::from_millis(3500));
        assert_eq!(engine.metrics().counter_value("ticks"), 3);
        // Resuming picks up where we left off.
        engine.run_until(SimTime::from_millis(4500));
        assert_eq!(engine.metrics().counter_value("ticks"), 4);
    }

    #[test]
    fn run_until_advances_now_to_horizon_when_queue_empties() {
        let mut engine: Engine<Msg> = Engine::new(0);
        let outcome = engine.run_until(SimTime::from_secs(9));
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(engine.now(), SimTime::from_secs(9));
    }

    struct Stopper;
    impl Actor<Msg> for Stopper {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            ctx.stop_self();
        }
    }

    #[test]
    fn messages_to_stopped_actor_are_dropped() {
        let mut engine = Engine::new(0);
        let id = engine.spawn(Stopper);
        engine.send(id, SimDuration::from_millis(1), Msg::Tick);
        engine.send(id, SimDuration::from_millis(2), Msg::Tick);
        engine.send(id, SimDuration::from_millis(3), Msg::Tick);
        engine.run_to_completion();
        assert_eq!(engine.delivered_messages(), 1);
        assert_eq!(engine.dropped_messages(), 2);
        assert!(!engine.is_alive(id));
    }

    struct Spawner;
    impl Actor<Msg> for Spawner {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            let child = ctx.spawn(Box::new(Stopper));
            ctx.send(child, SimDuration::from_millis(1), Msg::Tick);
        }
    }

    #[test]
    fn actors_can_spawn_actors_mid_run() {
        let mut engine = Engine::new(0);
        let id = engine.spawn(Spawner);
        engine.send(id, SimDuration::ZERO, Msg::Tick);
        engine.run_to_completion();
        assert_eq!(engine.actor_count(), 2);
        assert_eq!(engine.delivered_messages(), 2);
    }

    struct Halter;
    impl Actor<Msg> for Halter {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            ctx.halt();
        }
    }

    #[test]
    fn halt_stops_the_run_with_events_pending() {
        let mut engine = Engine::new(0);
        let id = engine.spawn(Halter);
        engine.send(id, SimDuration::from_millis(1), Msg::Tick);
        engine.send(id, SimDuration::from_millis(2), Msg::Tick);
        assert_eq!(engine.run_to_completion(), RunOutcome::Halted);
        assert_eq!(engine.now(), SimTime::from_millis(1));
    }

    #[test]
    fn event_limit_guards_runaway_loops() {
        struct Loopy;
        impl Actor<Msg> for Loopy {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
                ctx.send_self(SimDuration::ZERO, Msg::Tick);
            }
        }
        let mut engine = Engine::new(0);
        let id = engine.spawn(Loopy);
        engine.send(id, SimDuration::ZERO, Msg::Tick);
        engine.set_event_limit(1000);
        assert_eq!(engine.run_to_completion(), RunOutcome::EventLimit);
        assert_eq!(engine.delivered_messages(), 1000);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        fn run(seed: u64) -> Vec<(SimTime, u64)> {
            struct Noisy {
                peer: Option<ActorId>,
                log: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, u64)>>>,
            }
            impl Actor<Msg> for Noisy {
                fn on_message(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
                    if let Msg::Value(v) = msg {
                        self.log.borrow_mut().push((ctx.now(), v));
                        if v > 0 {
                            let jitter = ctx.rng().next_u64() % 1000;
                            let dest = self.peer.unwrap_or(ctx.self_id());
                            ctx.send(dest, SimDuration::from_micros(jitter), Msg::Value(v - 1));
                        }
                    }
                }
            }
            use rand::RngCore;
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let mut engine = Engine::new(seed);
            let a = engine.spawn(Noisy {
                peer: None,
                log: log.clone(),
            });
            let b = engine.spawn(Noisy {
                peer: Some(a),
                log: log.clone(),
            });
            engine.send(b, SimDuration::ZERO, Msg::Value(50));
            engine.run_to_completion();
            let result = log.borrow().clone();
            result
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn send_at_clamps_past_times() {
        let mut engine = Engine::new(0);
        let (actor, log) = recorder();
        let id = engine.spawn(actor);
        engine.send(id, SimDuration::from_secs(1), Msg::Value(1));
        engine.run_to_completion();
        // Now is 1s; sending "at 0" must not move time backwards.
        engine.send_at(id, SimTime::ZERO, Msg::Value(2));
        engine.run_to_completion();
        assert_eq!(log.borrow()[1].0, SimTime::from_secs(1));
    }
}
