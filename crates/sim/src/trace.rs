//! Bounded protocol tracing for debugging.
//!
//! Tracing is off by default; enabling it on the engine records up to a
//! fixed number of `(time, actor, label)` entries. The bound keeps long
//! experiment runs from accumulating unbounded memory — once full, the trace
//! stops recording and counts how many entries were discarded.

use crate::time::SimTime;
use std::fmt;

/// One recorded trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Raw index of the actor that recorded the entry.
    pub actor: u32,
    /// Free-form label, conventionally `"area: detail"`.
    pub label: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] actor#{} {}", self.time, self.actor, self.label)
    }
}

/// A bounded in-memory event trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    discarded: u64,
    enabled: bool,
}

impl Trace {
    /// A trace that records nothing (the default).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A trace that records up to `capacity` entries.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            entries: Vec::new(),
            capacity,
            discarded: 0,
            enabled: true,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry if enabled and capacity remains.
    pub fn record(&mut self, time: SimTime, actor: u32, label: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.discarded += 1;
            return;
        }
        self.entries.push(TraceEntry {
            time,
            actor,
            label: label.into(),
        });
    }

    /// The recorded entries, in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// How many entries were discarded after the capacity filled.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Entries whose label starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.label.starts_with(prefix))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled {
            return writeln!(f, "trace disabled");
        }
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        if self.discarded > 0 {
            writeln!(f, "... {} entries discarded", self.discarded)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, 0, "x");
        assert!(t.entries().is_empty());
        assert_eq!(t.discarded(), 0);
    }

    #[test]
    fn bounded_trace_caps_and_counts() {
        let mut t = Trace::bounded(2);
        t.record(SimTime::from_secs(1), 0, "a");
        t.record(SimTime::from_secs(2), 1, "b");
        t.record(SimTime::from_secs(3), 2, "c");
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.discarded(), 1);
    }

    #[test]
    fn prefix_filter() {
        let mut t = Trace::bounded(10);
        t.record(SimTime::ZERO, 0, "mesh: join");
        t.record(SimTime::ZERO, 0, "task: offload");
        t.record(SimTime::ZERO, 0, "mesh: leave");
        assert_eq!(t.with_prefix("mesh:").count(), 2);
    }

    #[test]
    fn display_formats_entries() {
        let mut t = Trace::bounded(4);
        t.record(SimTime::from_millis(1), 3, "hello");
        let s = t.to_string();
        assert!(s.contains("actor#3 hello"), "got: {s}");
    }
}
