//! Statistical helpers shared by tests and the experiment harness.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use airdnd_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation; non-finite values are ignored.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (Chan et al. parallel formula).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Linear-interpolated `q`-quantile of an unsorted slice.
///
/// Returns `None` for an empty slice or out-of-range `q`.
///
/// ```
/// use airdnd_sim::percentile;
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.5), Some(2.5));
/// ```
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    Some(percentile_of_sorted(&sorted, q))
}

/// Linear-interpolated quantile of an already-sorted, non-empty slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Evenly spaced CDF points `(value, cumulative_fraction)` for plotting.
///
/// Returns at most `points` pairs spanning the value range; empty input
/// yields an empty vector.
pub fn cdf_points(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() || points == 0 {
        return Vec::new();
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    let n = sorted.len();
    let step = (n.max(points) / points).max(1);
    let mut out = Vec::with_capacity(points + 1);
    let mut i = 0;
    while i < n {
        out.push((sorted[i], (i + 1) as f64 / n as f64));
        i += step;
    }
    if out.last().map(|&(v, _)| v) != Some(sorted[n - 1]) {
        out.push((sorted[n - 1], 1.0));
    }
    out
}

/// Jain's fairness index of a set of allocations: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly balanced; `1/n` means one entity hogs everything.
/// Returns 1.0 for empty or all-zero input (vacuously fair).
pub fn jain_fairness(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 1.0), Some(40.0));
        assert_eq!(percentile(&xs, 0.5), Some(25.0));
        assert_eq!(percentile(&xs, 1.5), None);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn cdf_points_monotone_and_complete() {
        let xs: Vec<f64> = (0..500).rev().map(|i| i as f64).collect();
        let cdf = cdf_points(&xs, 50);
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be non-decreasing");
            assert!(w[0].1 <= w[1].1, "fractions must be non-decreasing");
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 499.0);
    }

    #[test]
    fn cdf_points_empty_input() {
        assert!(cdf_points(&[], 10).is_empty());
        assert!(cdf_points(&[1.0], 0).is_empty());
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
    }
}
