//! Obstacles and line-of-sight: why anyone needs to look around a corner.
//!
//! Buildings are modelled as axis-aligned boxes ([`Aabb`]). A [`World`]
//! holds the obstacle set and answers line-of-sight queries with a
//! slab-method segment/box intersection test. The canonical evaluation
//! world — four buildings hugging the corners of an intersection — is built
//! by [`World::corner_buildings`].

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box.
///
/// ```
/// use airdnd_geo::{Aabb, Vec2};
/// let b = Aabb::from_center_size(Vec2::ZERO, 10.0, 4.0);
/// assert!(b.contains(Vec2::new(4.9, 1.9)));
/// assert!(!b.contains(Vec2::new(5.1, 0.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Vec2,
    max: Vec2,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box centred at `center` with the given width and height.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn from_center_size(center: Vec2, width: f64, height: f64) -> Self {
        assert!(
            width >= 0.0 && height >= 0.0,
            "box dimensions must be non-negative"
        );
        let half = Vec2::new(width / 2.0, height / 2.0);
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// The minimum corner.
    pub fn min(&self) -> Vec2 {
        self.min
    }

    /// The maximum corner.
    pub fn max(&self) -> Vec2 {
        self.max
    }

    /// The centre point.
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Grows the box by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Aabb {
        let m = Vec2::new(margin, margin);
        Aabb::new(self.min - m, self.max + m)
    }

    /// `true` if the two boxes overlap (including edge contact).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// `true` if the segment `a`–`b` touches the box (slab method).
    pub fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        // Degenerate segment: a point.
        let d = b - a;
        if d.norm_sq() < 1e-24 {
            return self.contains(a);
        }
        let mut t_min: f64 = 0.0;
        let mut t_max: f64 = 1.0;
        for (origin, dir, lo, hi) in [
            (a.x, d.x, self.min.x, self.max.x),
            (a.y, d.y, self.min.y, self.max.y),
        ] {
            if dir.abs() < 1e-15 {
                if origin < lo || origin > hi {
                    return false;
                }
            } else {
                let inv = 1.0 / dir;
                let (mut t0, mut t1) = ((lo - origin) * inv, (hi - origin) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return false;
                }
            }
        }
        true
    }
}

/// A physical obstacle that blocks line of sight (and radio, depending on
/// the channel model).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Obstacle {
    /// A rectangular building footprint.
    Rect(Aabb),
}

impl Obstacle {
    /// `true` if the segment `a`–`b` is blocked by this obstacle.
    pub fn blocks(&self, a: Vec2, b: Vec2) -> bool {
        match self {
            Obstacle::Rect(r) => r.intersects_segment(a, b),
        }
    }

    /// The obstacle's bounding box.
    pub fn bounds(&self) -> Aabb {
        match self {
            Obstacle::Rect(r) => *r,
        }
    }
}

/// A static world: obstacles plus an optional overall boundary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct World {
    obstacles: Vec<Obstacle>,
    bounds: Option<Aabb>,
}

impl World {
    /// An empty, unbounded world with free line of sight everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// The four-corner-building world for "looking around the corner":
    /// square buildings of side `size`, set back `setback` metres from each
    /// road centreline of a four-way intersection at the origin.
    pub fn corner_buildings(setback: f64, size: f64) -> Self {
        let mut world = World::new();
        for (sx, sy) in [(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (-1.0, -1.0)] {
            let near = setback;
            let center = Vec2::new(sx * (near + size / 2.0), sy * (near + size / 2.0));
            world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(center, size, size)));
        }
        world
    }

    /// Adds an obstacle.
    pub fn add_obstacle(&mut self, obstacle: Obstacle) {
        self.obstacles.push(obstacle);
    }

    /// Sets the outer boundary (informational; used by mobility models).
    pub fn set_bounds(&mut self, bounds: Aabb) {
        self.bounds = Some(bounds);
    }

    /// The outer boundary, if set.
    pub fn bounds(&self) -> Option<Aabb> {
        self.bounds
    }

    /// The obstacles in insertion order.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// `true` if nothing blocks the straight segment from `a` to `b`.
    pub fn line_of_sight(&self, a: Vec2, b: Vec2) -> bool {
        self.obstacles.iter().all(|o| !o.blocks(a, b))
    }

    /// Number of obstacles.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }

    /// `true` if `p` is inside any obstacle (e.g. to reject spawn points).
    pub fn is_inside_obstacle(&self, p: Vec2) -> bool {
        self.obstacles.iter().any(|o| o.bounds().contains(p))
    }
}

/// A uniform-grid index over a [`World`]'s obstacles that answers
/// line-of-sight queries in O(nearby obstacles) instead of O(all
/// obstacles).
///
/// [`World::line_of_sight`] scans every obstacle per query. That is fine
/// for a single intersection's four buildings, but a composite city
/// carries one obstacle set per district and the radio medium issues a
/// line-of-sight test per broadcast candidate per beacon — a hot path
/// that turns O(fleet × obstacles) per tick. The index buckets obstacle
/// bounding boxes into cells of `cell` metres; a query visits only the
/// cells overlapped by the segment's bounding box.
///
/// The answer is exactly [`World::line_of_sight`]'s: a segment
/// intersecting an obstacle implies overlapping bounding boxes, so the
/// obstacle is registered in at least one visited cell. The index copies
/// the obstacles it was built from and is immutable — rebuild it if the
/// world changes.
#[derive(Clone, Debug)]
pub struct ObstacleIndex {
    cell: f64,
    cells: std::collections::HashMap<(i64, i64), Vec<u32>>,
    obstacles: Vec<Obstacle>,
}

impl ObstacleIndex {
    /// Default cell size, metres: a few building footprints per cell at
    /// urban scale, a handful of cells per radio-range query.
    pub const DEFAULT_CELL_M: f64 = 200.0;

    /// Builds the index from `world`'s current obstacles.
    pub fn new(world: &World) -> Self {
        Self::with_cell(world, Self::DEFAULT_CELL_M)
    }

    /// Builds the index with an explicit cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive and finite.
    pub fn with_cell(world: &World, cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell must be positive");
        let mut cells: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, o) in world.obstacles().iter().enumerate() {
            let b = o.bounds();
            let (x0, y0) = Self::cell_of(b.min(), cell);
            let (x1, y1) = Self::cell_of(b.max(), cell);
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    cells.entry((cx, cy)).or_default().push(i as u32);
                }
            }
        }
        ObstacleIndex {
            cell,
            cells,
            obstacles: world.obstacles().to_vec(),
        }
    }

    fn cell_of(p: Vec2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// `true` if nothing blocks the straight segment from `a` to `b` —
    /// bit-for-bit the answer [`World::line_of_sight`] gives on the world
    /// this index was built from.
    pub fn line_of_sight(&self, a: Vec2, b: Vec2) -> bool {
        if self.obstacles.is_empty() {
            return true;
        }
        let lo = Vec2::new(a.x.min(b.x), a.y.min(b.y));
        let hi = Vec2::new(a.x.max(b.x), a.y.max(b.y));
        let (x0, y0) = Self::cell_of(lo, self.cell);
        let (x1, y1) = Self::cell_of(hi, self.cell);
        // An obstacle spanning several visited cells is tested once per
        // cell; the duplicate tests are boolean-idempotent and cheaper
        // than deduplication at the query sizes (radio/sensor range)
        // this serves.
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                let Some(ids) = self.cells.get(&(cx, cy)) else {
                    continue;
                };
                for &i in ids {
                    if self.obstacles[i as usize].blocks(a, b) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Number of obstacles indexed.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The index answers exactly what the linear scan answers, across a
    /// city-sized obstacle field and segments from sub-cell to
    /// multi-kilometre — including segments far outside the field.
    #[test]
    fn obstacle_index_matches_linear_scan() {
        let mut world = World::new();
        // A deterministic scatter of buildings over ±5 km (LCG; geo has
        // no RNG dependency).
        let mut state = 0x9E37_79B9_97F4_A7C5u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..400 {
            let c = Vec2::new(next() * 10_000.0 - 5_000.0, next() * 10_000.0 - 5_000.0);
            let (w, h) = (10.0 + next() * 120.0, 10.0 + next() * 120.0);
            world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(c, w, h)));
        }
        for cell in [50.0, ObstacleIndex::DEFAULT_CELL_M, 1_500.0] {
            let idx = ObstacleIndex::with_cell(&world, cell);
            assert_eq!(idx.obstacle_count(), world.obstacle_count());
            let mut blocked = 0;
            for _ in 0..2_000 {
                let a = Vec2::new(next() * 16_000.0 - 8_000.0, next() * 16_000.0 - 8_000.0);
                let reach = next() * 3_000.0;
                let angle = next() * std::f64::consts::TAU;
                let b = a + Vec2::new(angle.cos(), angle.sin()) * reach;
                let expect = world.line_of_sight(a, b);
                assert_eq!(idx.line_of_sight(a, b), expect, "{a:?} -> {b:?} @ {cell}");
                blocked += usize::from(!expect);
            }
            assert!(blocked > 100, "degenerate sample: {blocked} blocked");
        }
    }

    #[test]
    fn obstacle_index_on_empty_world_is_all_clear() {
        let idx = ObstacleIndex::new(&World::new());
        assert!(idx.line_of_sight(Vec2::ZERO, Vec2::new(1e6, -1e6)));
    }

    #[test]
    fn aabb_normalizes_corners() {
        let b = Aabb::new(Vec2::new(5.0, -1.0), Vec2::new(-5.0, 1.0));
        assert_eq!(b.min(), Vec2::new(-5.0, -1.0));
        assert_eq!(b.max(), Vec2::new(5.0, 1.0));
        assert_eq!(b.center(), Vec2::ZERO);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 20.0);
    }

    #[test]
    fn segment_misses_box() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        assert!(!b.intersects_segment(Vec2::new(-5.0, 5.0), Vec2::new(5.0, 5.0)));
        assert!(!b.intersects_segment(Vec2::new(2.0, 2.0), Vec2::new(5.0, 2.0)));
    }

    #[test]
    fn segment_crosses_box() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        assert!(b.intersects_segment(Vec2::new(-5.0, 0.0), Vec2::new(5.0, 0.0)));
        assert!(
            b.intersects_segment(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0)),
            "diagonal"
        );
        // Endpoint inside.
        assert!(b.intersects_segment(Vec2::ZERO, Vec2::new(9.0, 9.0)));
        // Fully inside.
        assert!(b.intersects_segment(Vec2::new(-0.5, 0.0), Vec2::new(0.5, 0.0)));
    }

    #[test]
    fn vertical_and_horizontal_segments() {
        let b = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        assert!(b.intersects_segment(Vec2::new(2.0, 0.0), Vec2::new(2.0, 4.0)));
        assert!(!b.intersects_segment(Vec2::new(0.5, 0.0), Vec2::new(0.5, 4.0)));
        assert!(b.intersects_segment(Vec2::new(0.0, 2.0), Vec2::new(4.0, 2.0)));
    }

    #[test]
    fn degenerate_point_segment() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        assert!(b.intersects_segment(Vec2::ZERO, Vec2::ZERO));
        assert!(!b.intersects_segment(Vec2::new(9.0, 9.0), Vec2::new(9.0, 9.0)));
    }

    #[test]
    fn box_box_intersection() {
        let a = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        let b = Aabb::from_center_size(Vec2::new(1.5, 0.0), 2.0, 2.0);
        let c = Aabb::from_center_size(Vec2::new(5.0, 0.0), 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn corner_buildings_block_the_corner() {
        let world = World::corner_buildings(10.0, 30.0);
        assert_eq!(world.obstacle_count(), 4);
        // Two vehicles on perpendicular arms, both 50 m from the centre:
        // the corner building sits between them.
        let south = Vec2::new(0.0, -50.0);
        let east = Vec2::new(50.0, 0.0);
        assert!(!world.line_of_sight(south, east), "corner must occlude");
        // Straight across the intersection stays clear (road is open).
        let north = Vec2::new(0.0, 50.0);
        assert!(world.line_of_sight(south, north));
        // Close to the centre both see each other past the setback.
        assert!(world.line_of_sight(Vec2::new(0.0, -5.0), Vec2::new(5.0, 0.0)));
    }

    #[test]
    fn inside_obstacle_check() {
        let world = World::corner_buildings(10.0, 30.0);
        assert!(world.is_inside_obstacle(Vec2::new(25.0, 25.0)));
        assert!(!world.is_inside_obstacle(Vec2::ZERO));
    }

    #[test]
    fn empty_world_has_free_sight() {
        let world = World::new();
        assert!(world.line_of_sight(Vec2::new(-100.0, -100.0), Vec2::new(100.0, 100.0)));
        assert_eq!(world.bounds(), None);
    }

    #[test]
    fn expanded_grows_every_side() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0).expanded(1.0);
        assert_eq!(b.min(), Vec2::new(-2.0, -2.0));
        assert_eq!(b.max(), Vec2::new(2.0, 2.0));
    }
}
