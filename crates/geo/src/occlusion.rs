//! Obstacles and line-of-sight: why anyone needs to look around a corner.
//!
//! Buildings are modelled as axis-aligned boxes ([`Aabb`]). A [`World`]
//! holds the obstacle set and answers line-of-sight queries with a
//! slab-method segment/box intersection test. The canonical evaluation
//! world — four buildings hugging the corners of an intersection — is built
//! by [`World::corner_buildings`].

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box.
///
/// ```
/// use airdnd_geo::{Aabb, Vec2};
/// let b = Aabb::from_center_size(Vec2::ZERO, 10.0, 4.0);
/// assert!(b.contains(Vec2::new(4.9, 1.9)));
/// assert!(!b.contains(Vec2::new(5.1, 0.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Vec2,
    max: Vec2,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box centred at `center` with the given width and height.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn from_center_size(center: Vec2, width: f64, height: f64) -> Self {
        assert!(
            width >= 0.0 && height >= 0.0,
            "box dimensions must be non-negative"
        );
        let half = Vec2::new(width / 2.0, height / 2.0);
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// The minimum corner.
    pub fn min(&self) -> Vec2 {
        self.min
    }

    /// The maximum corner.
    pub fn max(&self) -> Vec2 {
        self.max
    }

    /// The centre point.
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Grows the box by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Aabb {
        let m = Vec2::new(margin, margin);
        Aabb::new(self.min - m, self.max + m)
    }

    /// `true` if the two boxes overlap (including edge contact).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// `true` if the segment `a`–`b` touches the box (slab method).
    pub fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        // Degenerate segment: a point.
        let d = b - a;
        if d.norm_sq() < 1e-24 {
            return self.contains(a);
        }
        let mut t_min: f64 = 0.0;
        let mut t_max: f64 = 1.0;
        for (origin, dir, lo, hi) in [
            (a.x, d.x, self.min.x, self.max.x),
            (a.y, d.y, self.min.y, self.max.y),
        ] {
            if dir.abs() < 1e-15 {
                if origin < lo || origin > hi {
                    return false;
                }
            } else {
                let inv = 1.0 / dir;
                let (mut t0, mut t1) = ((lo - origin) * inv, (hi - origin) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return false;
                }
            }
        }
        true
    }
}

/// A physical obstacle that blocks line of sight (and radio, depending on
/// the channel model).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Obstacle {
    /// A rectangular building footprint.
    Rect(Aabb),
}

impl Obstacle {
    /// `true` if the segment `a`–`b` is blocked by this obstacle.
    pub fn blocks(&self, a: Vec2, b: Vec2) -> bool {
        match self {
            Obstacle::Rect(r) => r.intersects_segment(a, b),
        }
    }

    /// The obstacle's bounding box.
    pub fn bounds(&self) -> Aabb {
        match self {
            Obstacle::Rect(r) => *r,
        }
    }
}

/// A static world: obstacles plus an optional overall boundary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct World {
    obstacles: Vec<Obstacle>,
    bounds: Option<Aabb>,
}

impl World {
    /// An empty, unbounded world with free line of sight everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// The four-corner-building world for "looking around the corner":
    /// square buildings of side `size`, set back `setback` metres from each
    /// road centreline of a four-way intersection at the origin.
    pub fn corner_buildings(setback: f64, size: f64) -> Self {
        let mut world = World::new();
        for (sx, sy) in [(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (-1.0, -1.0)] {
            let near = setback;
            let center = Vec2::new(sx * (near + size / 2.0), sy * (near + size / 2.0));
            world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(center, size, size)));
        }
        world
    }

    /// Adds an obstacle.
    pub fn add_obstacle(&mut self, obstacle: Obstacle) {
        self.obstacles.push(obstacle);
    }

    /// Sets the outer boundary (informational; used by mobility models).
    pub fn set_bounds(&mut self, bounds: Aabb) {
        self.bounds = Some(bounds);
    }

    /// The outer boundary, if set.
    pub fn bounds(&self) -> Option<Aabb> {
        self.bounds
    }

    /// The obstacles in insertion order.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// `true` if nothing blocks the straight segment from `a` to `b`.
    pub fn line_of_sight(&self, a: Vec2, b: Vec2) -> bool {
        self.obstacles.iter().all(|o| !o.blocks(a, b))
    }

    /// Number of obstacles.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }

    /// `true` if `p` is inside any obstacle (e.g. to reject spawn points).
    pub fn is_inside_obstacle(&self, p: Vec2) -> bool {
        self.obstacles.iter().any(|o| o.bounds().contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aabb_normalizes_corners() {
        let b = Aabb::new(Vec2::new(5.0, -1.0), Vec2::new(-5.0, 1.0));
        assert_eq!(b.min(), Vec2::new(-5.0, -1.0));
        assert_eq!(b.max(), Vec2::new(5.0, 1.0));
        assert_eq!(b.center(), Vec2::ZERO);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 20.0);
    }

    #[test]
    fn segment_misses_box() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        assert!(!b.intersects_segment(Vec2::new(-5.0, 5.0), Vec2::new(5.0, 5.0)));
        assert!(!b.intersects_segment(Vec2::new(2.0, 2.0), Vec2::new(5.0, 2.0)));
    }

    #[test]
    fn segment_crosses_box() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        assert!(b.intersects_segment(Vec2::new(-5.0, 0.0), Vec2::new(5.0, 0.0)));
        assert!(
            b.intersects_segment(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0)),
            "diagonal"
        );
        // Endpoint inside.
        assert!(b.intersects_segment(Vec2::ZERO, Vec2::new(9.0, 9.0)));
        // Fully inside.
        assert!(b.intersects_segment(Vec2::new(-0.5, 0.0), Vec2::new(0.5, 0.0)));
    }

    #[test]
    fn vertical_and_horizontal_segments() {
        let b = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        assert!(b.intersects_segment(Vec2::new(2.0, 0.0), Vec2::new(2.0, 4.0)));
        assert!(!b.intersects_segment(Vec2::new(0.5, 0.0), Vec2::new(0.5, 4.0)));
        assert!(b.intersects_segment(Vec2::new(0.0, 2.0), Vec2::new(4.0, 2.0)));
    }

    #[test]
    fn degenerate_point_segment() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        assert!(b.intersects_segment(Vec2::ZERO, Vec2::ZERO));
        assert!(!b.intersects_segment(Vec2::new(9.0, 9.0), Vec2::new(9.0, 9.0)));
    }

    #[test]
    fn box_box_intersection() {
        let a = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0);
        let b = Aabb::from_center_size(Vec2::new(1.5, 0.0), 2.0, 2.0);
        let c = Aabb::from_center_size(Vec2::new(5.0, 0.0), 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn corner_buildings_block_the_corner() {
        let world = World::corner_buildings(10.0, 30.0);
        assert_eq!(world.obstacle_count(), 4);
        // Two vehicles on perpendicular arms, both 50 m from the centre:
        // the corner building sits between them.
        let south = Vec2::new(0.0, -50.0);
        let east = Vec2::new(50.0, 0.0);
        assert!(!world.line_of_sight(south, east), "corner must occlude");
        // Straight across the intersection stays clear (road is open).
        let north = Vec2::new(0.0, 50.0);
        assert!(world.line_of_sight(south, north));
        // Close to the centre both see each other past the setback.
        assert!(world.line_of_sight(Vec2::new(0.0, -5.0), Vec2::new(5.0, 0.0)));
    }

    #[test]
    fn inside_obstacle_check() {
        let world = World::corner_buildings(10.0, 30.0);
        assert!(world.is_inside_obstacle(Vec2::new(25.0, 25.0)));
        assert!(!world.is_inside_obstacle(Vec2::ZERO));
    }

    #[test]
    fn empty_world_has_free_sight() {
        let world = World::new();
        assert!(world.line_of_sight(Vec2::new(-100.0, -100.0), Vec2::new(100.0, 100.0)));
        assert_eq!(world.bounds(), None);
    }

    #[test]
    fn expanded_grows_every_side() {
        let b = Aabb::from_center_size(Vec2::ZERO, 2.0, 2.0).expanded(1.0);
        assert_eq!(b.min(), Vec2::new(-2.0, -2.0));
        assert_eq!(b.max(), Vec2::new(2.0, 2.0));
    }
}
