//! Vehicle and device mobility models.
//!
//! Three models cover the paper's scenarios:
//!
//! * [`Mobility::fixed`] — parked vehicles / roadside units,
//! * [`Mobility::constant_velocity`] — simple straight-line motion (also the
//!   predictor used by the orchestrator's in-range-time estimate),
//! * [`Mobility::route`] — follows a [`Route`] with an IDM (Intelligent
//!   Driver Model, Treiber et al. 2000) speed profile and optional leader
//!   coupling,
//! * [`Mobility::random_waypoint`] — the classic model for generic edge
//!   devices.
//!
//! All models advance with [`Mobility::step`] on a fixed tick and expose a
//! [`VehicleState`]; determinism comes from the forked [`SimRng`] owned by
//! the random-waypoint model.

use crate::occlusion::Aabb;
use crate::road::Route;
use crate::vec2::Vec2;
use airdnd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Instantaneous kinematic state of a node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// Position in metres.
    pub pos: Vec2,
    /// Scalar speed in m/s (non-negative).
    pub speed: f64,
    /// Heading in radians from +x.
    pub heading: f64,
}

impl VehicleState {
    /// Velocity vector implied by speed and heading.
    pub fn velocity(&self) -> Vec2 {
        Vec2::from_angle(self.heading) * self.speed
    }
}

impl Default for VehicleState {
    fn default() -> Self {
        VehicleState {
            pos: Vec2::ZERO,
            speed: 0.0,
            heading: 0.0,
        }
    }
}

/// Intelligent Driver Model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IdmParams {
    /// Desired free-flow speed, m/s (capped by lane speed limits).
    pub desired_speed: f64,
    /// Safe time headway, s.
    pub time_headway: f64,
    /// Standstill minimum gap, m.
    pub min_gap: f64,
    /// Maximum acceleration, m/s².
    pub max_accel: f64,
    /// Comfortable deceleration, m/s².
    pub comfort_decel: f64,
    /// Acceleration exponent (4 in the original paper).
    pub exponent: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            desired_speed: 13.9, // 50 km/h urban
            time_headway: 1.5,
            min_gap: 2.0,
            max_accel: 1.4,
            comfort_decel: 2.0,
            exponent: 4.0,
        }
    }
}

/// IDM acceleration for a vehicle at speed `v`; `leader` is `(gap_m,
/// leader_speed)` if a vehicle is ahead on the same lane.
///
/// The returned acceleration is clamped to `[-8, max_accel]` m/s² (an
/// emergency-braking floor keeps the integration stable at tiny gaps).
pub fn idm_acceleration(params: &IdmParams, v: f64, leader: Option<(f64, f64)>) -> f64 {
    let v0 = params.desired_speed.max(0.1);
    let free = params.max_accel * (1.0 - (v / v0).powf(params.exponent));
    let interaction = match leader {
        Some((gap, v_leader)) => {
            let gap = gap.max(0.01);
            let dv = v - v_leader;
            let s_star = params.min_gap
                + (v * params.time_headway
                    + v * dv / (2.0 * (params.max_accel * params.comfort_decel).sqrt()))
                .max(0.0);
            -params.max_accel * (s_star / gap).powi(2)
        }
        None => 0.0,
    };
    (free + interaction).clamp(-8.0, params.max_accel)
}

/// Follows a [`Route`] with an IDM speed profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouteFollower {
    route: Route,
    arc: f64,
    speed: f64,
    idm: IdmParams,
    leader: Option<(f64, f64)>,
    finished: bool,
}

impl RouteFollower {
    /// Starts at the route origin with the given initial speed.
    pub fn new(route: Route, initial_speed: f64, idm: IdmParams) -> Self {
        RouteFollower {
            route,
            arc: 0.0,
            speed: initial_speed.max(0.0),
            idm,
            leader: None,
            finished: false,
        }
    }

    /// Arc length travelled so far, metres.
    pub fn arc_length(&self) -> f64 {
        self.arc
    }

    /// `true` once the route end has been reached.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Informs the follower about the vehicle ahead for the next step:
    /// `(gap_m, leader_speed)`. Cleared after each step.
    pub fn set_leader(&mut self, leader: Option<(f64, f64)>) {
        self.leader = leader;
    }

    /// The route being followed.
    pub fn route(&self) -> &Route {
        &self.route
    }

    fn step(&mut self, dt: f64) {
        if self.finished {
            self.speed = 0.0;
            return;
        }
        let limit = self.route.speed_limit_at(self.arc);
        let mut params = self.idm;
        if limit > 0.0 {
            params.desired_speed = params.desired_speed.min(limit);
        }
        let a = idm_acceleration(&params, self.speed, self.leader.take());
        self.speed = (self.speed + a * dt).max(0.0);
        self.arc += self.speed * dt;
        if self.arc >= self.route.length() {
            self.arc = self.route.length();
            self.finished = true;
            self.speed = 0.0;
        }
    }

    fn state(&self) -> VehicleState {
        let (pos, heading) = self.route.position_at(self.arc);
        VehicleState {
            pos,
            speed: self.speed,
            heading,
        }
    }
}

/// Random-waypoint motion inside a rectangular area.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomWaypoint {
    area: Aabb,
    pos: Vec2,
    target: Vec2,
    speed: f64,
    speed_range: (f64, f64),
    rng: SimRng,
}

impl RandomWaypoint {
    /// Creates a walker inside `area` with speeds drawn uniformly from
    /// `speed_range`; `rng` should be forked per entity for determinism.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty or non-positive.
    pub fn new(area: Aabb, speed_range: (f64, f64), mut rng: SimRng) -> Self {
        assert!(
            speed_range.0 > 0.0 && speed_range.1 >= speed_range.0,
            "speed range must be positive and non-empty"
        );
        let pos = Self::sample_point(&area, &mut rng);
        let target = Self::sample_point(&area, &mut rng);
        let speed = Self::sample_speed(speed_range, &mut rng);
        RandomWaypoint {
            area,
            pos,
            target,
            speed,
            speed_range,
            rng,
        }
    }

    fn sample_point(area: &Aabb, rng: &mut SimRng) -> Vec2 {
        let x = area.min().x + rng.next_f64() * (area.max().x - area.min().x);
        let y = area.min().y + rng.next_f64() * (area.max().y - area.min().y);
        Vec2::new(x, y)
    }

    fn sample_speed(range: (f64, f64), rng: &mut SimRng) -> f64 {
        range.0 + rng.next_f64() * (range.1 - range.0)
    }

    fn step(&mut self, dt: f64) {
        let mut remaining = self.speed * dt;
        // May pass through several waypoints in one tick at large dt.
        while remaining > 0.0 {
            let to_target = self.target - self.pos;
            let dist = to_target.norm();
            if dist <= remaining {
                self.pos = self.target;
                remaining -= dist;
                self.target = Self::sample_point(&self.area, &mut self.rng);
                self.speed = Self::sample_speed(self.speed_range, &mut self.rng);
                if remaining <= 1e-12 {
                    break;
                }
            } else {
                self.pos += to_target / dist * remaining;
                break;
            }
        }
    }

    fn state(&self) -> VehicleState {
        let heading = (self.target - self.pos)
            .normalized()
            .map_or(0.0, |d| d.angle());
        VehicleState {
            pos: self.pos,
            speed: self.speed,
            heading,
        }
    }
}

/// A node's mobility model. Construct with the provided constructors and
/// advance with [`Mobility::step`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Mobility {
    /// Never moves.
    Fixed(VehicleState),
    /// Straight-line constant-velocity motion.
    ConstantVelocity(VehicleState),
    /// Route following with IDM.
    Route(RouteFollower),
    /// Random waypoint within an area.
    RandomWaypoint(RandomWaypoint),
}

impl Mobility {
    /// A stationary node at `pos`.
    pub fn fixed(pos: Vec2) -> Self {
        Mobility::Fixed(VehicleState {
            pos,
            speed: 0.0,
            heading: 0.0,
        })
    }

    /// Straight-line motion from `pos` with velocity `vel`.
    pub fn constant_velocity(pos: Vec2, vel: Vec2) -> Self {
        Mobility::ConstantVelocity(VehicleState {
            pos,
            speed: vel.norm(),
            heading: vel.normalized().map_or(0.0, |d| d.angle()),
        })
    }

    /// Route following; see [`RouteFollower`].
    pub fn route(route: Route, initial_speed: f64, idm: IdmParams) -> Self {
        Mobility::Route(RouteFollower::new(route, initial_speed, idm))
    }

    /// Random waypoint; see [`RandomWaypoint`].
    pub fn random_waypoint(area: Aabb, speed_range: (f64, f64), rng: SimRng) -> Self {
        Mobility::RandomWaypoint(RandomWaypoint::new(area, speed_range, rng))
    }

    /// Advances the model by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite.
    pub fn step(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be non-negative");
        match self {
            Mobility::Fixed(_) => {}
            Mobility::ConstantVelocity(s) => {
                s.pos += s.velocity() * dt;
            }
            Mobility::Route(f) => f.step(dt),
            Mobility::RandomWaypoint(w) => w.step(dt),
        }
    }

    /// Current kinematic state.
    pub fn state(&self) -> VehicleState {
        match self {
            Mobility::Fixed(s) | Mobility::ConstantVelocity(s) => *s,
            Mobility::Route(f) => f.state(),
            Mobility::RandomWaypoint(w) => w.state(),
        }
    }

    /// Current position (shorthand for `state().pos`).
    pub fn pos(&self) -> Vec2 {
        self.state().pos
    }

    /// Mutable access to the route follower, if this is a route model
    /// (for leader coupling).
    pub fn as_route_mut(&mut self) -> Option<&mut RouteFollower> {
        match self {
            Mobility::Route(f) => Some(f),
            _ => None,
        }
    }

    /// Predicts the position `horizon` seconds ahead assuming current
    /// velocity persists — the estimator the orchestrator uses for
    /// in-range-time scoring (it intentionally ignores route curvature;
    /// short horizons dominate).
    pub fn predict_pos(&self, horizon: f64) -> Vec2 {
        let s = self.state();
        s.pos + s.velocity() * horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadNetwork;

    #[test]
    fn fixed_never_moves() {
        let mut m = Mobility::fixed(Vec2::new(1.0, 2.0));
        m.step(10.0);
        assert_eq!(m.pos(), Vec2::new(1.0, 2.0));
        assert_eq!(m.state().speed, 0.0);
    }

    #[test]
    fn constant_velocity_integrates() {
        let mut m = Mobility::constant_velocity(Vec2::ZERO, Vec2::new(3.0, 4.0));
        m.step(2.0);
        assert_eq!(m.pos(), Vec2::new(6.0, 8.0));
        assert_eq!(m.state().speed, 5.0);
    }

    #[test]
    fn idm_free_road_accelerates_to_desired_speed() {
        let p = IdmParams::default();
        let mut v: f64 = 0.0;
        for _ in 0..3000 {
            v += idm_acceleration(&p, v, None) * 0.1;
        }
        assert!((v - p.desired_speed).abs() < 0.1, "converged to {v}");
    }

    #[test]
    fn idm_brakes_behind_slow_leader() {
        let p = IdmParams::default();
        // Fast vehicle 5 m behind a stopped one: strong braking.
        let a = idm_acceleration(&p, 13.9, Some((5.0, 0.0)));
        assert!(a < -3.0, "acceleration was {a}");
        // Far leader at same speed: nearly free-flow.
        let a = idm_acceleration(&p, 10.0, Some((200.0, 10.0)));
        assert!(a > 0.0);
    }

    #[test]
    fn idm_acceleration_is_clamped() {
        let p = IdmParams::default();
        let a = idm_acceleration(&p, 30.0, Some((0.001, 0.0)));
        assert!(a >= -8.0);
        let a = idm_acceleration(&p, 0.0, None);
        assert!(a <= p.max_accel);
    }

    #[test]
    fn route_follower_reaches_the_end_and_stops() {
        let net = RoadNetwork::four_way_intersection(100.0, 13.9);
        let route = net.route(net.approach_node(0), net.exit_node(2)).unwrap();
        let mut m = Mobility::route(route, 10.0, IdmParams::default());
        let mut t = 0.0;
        while !matches!(&m, Mobility::Route(f) if f.is_finished()) && t < 120.0 {
            m.step(0.1);
            t += 0.1;
        }
        assert!(t < 60.0, "should finish a 200 m route well within a minute");
        assert_eq!(m.pos(), Vec2::new(0.0, 100.0));
        assert_eq!(m.state().speed, 0.0);
        // Further steps are inert.
        m.step(5.0);
        assert_eq!(m.pos(), Vec2::new(0.0, 100.0));
    }

    #[test]
    fn route_follower_respects_speed_limit() {
        let net = RoadNetwork::four_way_intersection(500.0, 5.0);
        let route = net.route(net.approach_node(0), net.exit_node(2)).unwrap();
        let mut m = Mobility::route(
            route,
            0.0,
            IdmParams {
                desired_speed: 30.0,
                ..IdmParams::default()
            },
        );
        for _ in 0..400 {
            m.step(0.1);
        }
        assert!(m.state().speed <= 5.0 + 1e-6, "speed {}", m.state().speed);
    }

    #[test]
    fn leader_coupling_slows_the_follower() {
        let net = RoadNetwork::four_way_intersection(500.0, 20.0);
        let route = net.route(net.approach_node(0), net.exit_node(2)).unwrap();
        let mut free = Mobility::route(route.clone(), 10.0, IdmParams::default());
        let mut follower = Mobility::route(route, 10.0, IdmParams::default());
        for _ in 0..100 {
            follower
                .as_route_mut()
                .unwrap()
                .set_leader(Some((8.0, 3.0)));
            follower.step(0.1);
            free.step(0.1);
        }
        let vf = follower.state().speed;
        let vfree = free.state().speed;
        assert!(vf < vfree - 1.0, "follower {vf} vs free {vfree}");
    }

    #[test]
    fn random_waypoint_stays_in_area() {
        let area = Aabb::from_center_size(Vec2::ZERO, 100.0, 100.0);
        let mut m = Mobility::random_waypoint(area, (1.0, 5.0), SimRng::seed_from(1));
        for _ in 0..5000 {
            m.step(0.5);
            let p = m.pos();
            assert!(area.expanded(1e-9).contains(p), "escaped to {p}");
        }
    }

    #[test]
    fn random_waypoint_is_deterministic_per_seed() {
        let area = Aabb::from_center_size(Vec2::ZERO, 50.0, 50.0);
        let mut a = Mobility::random_waypoint(area, (1.0, 2.0), SimRng::seed_from(9));
        let mut b = Mobility::random_waypoint(area, (1.0, 2.0), SimRng::seed_from(9));
        for _ in 0..100 {
            a.step(1.0);
            b.step(1.0);
        }
        assert_eq!(a.pos(), b.pos());
    }

    #[test]
    fn random_waypoint_actually_moves() {
        let area = Aabb::from_center_size(Vec2::ZERO, 100.0, 100.0);
        let mut m = Mobility::random_waypoint(area, (2.0, 2.0), SimRng::seed_from(3));
        let start = m.pos();
        m.step(10.0);
        assert!(m.pos().distance(start) > 1.0);
    }

    #[test]
    fn predict_pos_linear_extrapolation() {
        let m = Mobility::constant_velocity(Vec2::new(1.0, 1.0), Vec2::new(2.0, 0.0));
        assert_eq!(m.predict_pos(3.0), Vec2::new(7.0, 1.0));
        let f = Mobility::fixed(Vec2::new(4.0, 4.0));
        assert_eq!(f.predict_pos(100.0), Vec2::new(4.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "dt must be non-negative")]
    fn negative_dt_panics() {
        let mut m = Mobility::fixed(Vec2::ZERO);
        m.step(-1.0);
    }
}
