//! # airdnd-geo — geometry, roads, mobility and occlusion substrate
//!
//! AirDnD orchestrates *in-range* nodes, so everything in the framework
//! ultimately depends on where nodes are, how they move, and what they can
//! see. This crate provides that physical substrate:
//!
//! * [`Vec2`] — plane geometry,
//! * [`road`] — road networks with lanes, intersections and shortest-path
//!   routes (the "looking around the corner" scenario is a four-way
//!   intersection built here),
//! * [`mobility`] — vehicle motion: constant velocity, route following with
//!   an IDM car-following speed profile, and random waypoint for generic
//!   edge devices,
//! * [`occlusion`] — axis-aligned obstacles and line-of-sight tests (corner
//!   buildings are what make "looking around the corner" necessary),
//! * [`spatial`] — a uniform-grid index for radio-range neighbour queries,
//! * [`fov`] — sensor field-of-view cones combining range, angle and
//!   occlusion.
//!
//! The paper's scaled-vehicle testbed (Revere lab) is replaced by these
//! kinematic models; see `DESIGN.md` §3 for why this preserves the
//! observables the orchestration layer cares about (positions, velocities,
//! in-range windows, occlusion).
//!
//! ## Example
//!
//! ```
//! use airdnd_geo::{RoadNetwork, Vec2};
//!
//! let net = RoadNetwork::four_way_intersection(100.0, 13.9);
//! let route = net.route(net.approach_node(0), net.exit_node(1)).unwrap();
//! let (pos, _heading) = route.position_at(10.0);
//! assert!(pos.distance(Vec2::new(0.0, -90.0)) < 11.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fov;
pub mod mobility;
pub mod occlusion;
pub mod road;
pub mod spatial;
pub mod vec2;

pub use fov::SensorFov;
pub use mobility::{IdmParams, Mobility, VehicleState};
pub use occlusion::{Aabb, Obstacle, ObstacleIndex, World};
pub use road::{NodeId, RoadNetwork, Route};
pub use spatial::SpatialIndex;
pub use vec2::Vec2;
