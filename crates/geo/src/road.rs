//! Road networks: nodes, directed lanes, and shortest-path routes.
//!
//! The "looking around the corner" scenario plays out on a small road graph;
//! [`RoadNetwork::four_way_intersection`] builds the canonical map used by
//! the evaluation, and [`RoadNetwork::manhattan_grid`] provides larger urban
//! fabrics for scalability experiments. Routing minimizes free-flow travel
//! time (length / speed limit) with Dijkstra's algorithm.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Identifies a node (waypoint/junction) within one [`RoadNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index of the node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Errors returned when constructing road networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildRoadError {
    /// An endpoint id does not exist in this network.
    UnknownNode(NodeId),
    /// A lane's two endpoints are the same node.
    SelfLoop(NodeId),
    /// The speed limit is zero, negative or not finite.
    InvalidSpeed(u64),
}

impl fmt::Display for BuildRoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildRoadError::UnknownNode(n) => write!(f, "unknown road node {n}"),
            BuildRoadError::SelfLoop(n) => write!(f, "lane endpoints are both {n}"),
            BuildRoadError::InvalidSpeed(bits) => {
                write!(f, "invalid speed limit {}", f64::from_bits(*bits))
            }
        }
    }
}

impl Error for BuildRoadError {}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Lane {
    to: NodeId,
    length: f64,
    speed_limit: f64,
}

/// A directed road graph with per-lane speed limits.
///
/// See the crate-level example for typical use.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    positions: Vec<Vec2>,
    adjacency: Vec<Vec<Lane>>,
    arms: Vec<NodeId>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at `pos` and returns its id.
    pub fn add_node(&mut self, pos: Vec2) -> NodeId {
        let id = NodeId(self.positions.len() as u32);
        self.positions.push(pos);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds a one-way lane from `from` to `to` with the given speed limit
    /// (m/s).
    ///
    /// # Errors
    ///
    /// Returns [`BuildRoadError`] if either node is unknown, the endpoints
    /// coincide, or the speed limit is not a positive finite number.
    pub fn add_lane(
        &mut self,
        from: NodeId,
        to: NodeId,
        speed_limit: f64,
    ) -> Result<(), BuildRoadError> {
        for n in [from, to] {
            if n.index() >= self.positions.len() {
                return Err(BuildRoadError::UnknownNode(n));
            }
        }
        if from == to {
            return Err(BuildRoadError::SelfLoop(from));
        }
        if !(speed_limit.is_finite() && speed_limit > 0.0) {
            return Err(BuildRoadError::InvalidSpeed(speed_limit.to_bits()));
        }
        let length = self.positions[from.index()].distance(self.positions[to.index()]);
        self.adjacency[from.index()].push(Lane {
            to,
            length,
            speed_limit,
        });
        Ok(())
    }

    /// Adds lanes in both directions between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoadNetwork::add_lane`].
    pub fn add_road(
        &mut self,
        a: NodeId,
        b: NodeId,
        speed_limit: f64,
    ) -> Result<(), BuildRoadError> {
        self.add_lane(a, b, speed_limit)?;
        self.add_lane(b, a, speed_limit)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed lanes.
    pub fn lane_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn position(&self, id: NodeId) -> Vec2 {
        self.positions[id.index()]
    }

    /// Ids of all nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// The canonical "looking around the corner" map: a four-way
    /// intersection with arms of `arm_length` metres meeting at the origin,
    /// all lanes two-way at `speed_limit` m/s.
    ///
    /// Arm indices are 0 = south, 1 = east, 2 = north, 3 = west; use
    /// [`RoadNetwork::approach_node`] / [`RoadNetwork::exit_node`] to fetch
    /// the arm endpoints.
    pub fn four_way_intersection(arm_length: f64, speed_limit: f64) -> Self {
        let mut net = RoadNetwork::new();
        let center = net.add_node(Vec2::ZERO);
        let ends = [
            Vec2::new(0.0, -arm_length),
            Vec2::new(arm_length, 0.0),
            Vec2::new(0.0, arm_length),
            Vec2::new(-arm_length, 0.0),
        ];
        for pos in ends {
            let end = net.add_node(pos);
            net.add_road(end, center, speed_limit)
                .expect("freshly created nodes are valid");
            net.arms.push(end);
        }
        net
    }

    /// A `cols` × `rows` Manhattan grid with `spacing` metres between
    /// junctions, all streets two-way at `speed_limit` m/s. Used by the
    /// scalability experiments.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn manhattan_grid(cols: usize, rows: usize, spacing: f64, speed_limit: f64) -> Self {
        assert!(cols > 0 && rows > 0, "grid must be non-empty");
        let mut net = RoadNetwork::new();
        let mut ids = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                ids.push(net.add_node(Vec2::new(c as f64 * spacing, r as f64 * spacing)));
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                let here = ids[r * cols + c];
                if c + 1 < cols {
                    net.add_road(here, ids[r * cols + c + 1], speed_limit)
                        .expect("valid grid nodes");
                }
                if r + 1 < rows {
                    net.add_road(here, ids[(r + 1) * cols + c], speed_limit)
                        .expect("valid grid nodes");
                }
            }
        }
        net.arms = ids;
        net
    }

    /// Designates `arms` as this network's portal nodes (the spawn/goal
    /// endpoints [`RoadNetwork::approach_node`] / [`RoadNetwork::exit_node`]
    /// hand out). Generators call this after wiring their lanes; the
    /// canonical constructors set their own arms.
    ///
    /// # Panics
    ///
    /// Panics if any id does not belong to this network.
    pub fn set_arms(&mut self, arms: Vec<NodeId>) {
        for &arm in &arms {
            assert!(arm.index() < self.positions.len(), "unknown arm {arm}");
        }
        self.arms = arms;
    }

    /// Every directed lane as `(from, to, length, speed_limit)`, in
    /// adjacency order — the raw edge list generators and invariant tests
    /// iterate.
    pub fn lanes(&self) -> impl Iterator<Item = (NodeId, NodeId, f64, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(from, lanes)| {
            lanes
                .iter()
                .map(move |lane| (NodeId(from as u32), lane.to, lane.length, lane.speed_limit))
        })
    }

    /// The lanes leaving `id` as `(to, length, speed_limit)`, in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn lanes_from(&self, id: NodeId) -> impl Iterator<Item = (NodeId, f64, f64)> + '_ {
        self.adjacency[id.index()]
            .iter()
            .map(|lane| (lane.to, lane.length, lane.speed_limit))
    }

    /// Number of lanes leaving `id` (the node's out-degree); nodes with
    /// three or more are junctions.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.adjacency[id.index()].len()
    }

    /// The entry endpoint of intersection arm `i` (see
    /// [`RoadNetwork::four_way_intersection`] for arm numbering).
    ///
    /// # Panics
    ///
    /// Panics if the network has no arm `i`.
    pub fn approach_node(&self, i: usize) -> NodeId {
        self.arms[i]
    }

    /// The exit endpoint of intersection arm `i` (same nodes as
    /// [`RoadNetwork::approach_node`]; lanes are two-way).
    ///
    /// # Panics
    ///
    /// Panics if the network has no arm `i`.
    pub fn exit_node(&self, i: usize) -> NodeId {
        self.arms[i]
    }

    /// Number of designated arm/portal nodes.
    pub fn arm_count(&self) -> usize {
        self.arms.len()
    }

    /// The node sequence of the shortest route (by free-flow travel time)
    /// from `from` to `to`, or `None` if unreachable or either id is
    /// unknown. The occlusion-derivation pass walks this to find the
    /// junctions an ego traverses.
    pub fn node_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let n = self.positions.len();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        self.dijkstra_ids(from, to)
    }

    fn dijkstra_ids(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let n = self.positions.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Reverse((OrdF64(0.0), from.0)));
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for lane in &self.adjacency[u as usize] {
                let nd = d + lane.length / lane.speed_limit;
                if nd < dist[lane.to.index()] {
                    dist[lane.to.index()] = nd;
                    prev[lane.to.index()] = Some(NodeId(u));
                    heap.push(Reverse((OrdF64(nd), lane.to.0)));
                }
            }
        }
        if dist[to.index()].is_infinite() {
            return None;
        }
        let mut ids = vec![to];
        while let Some(p) = prev[ids.last().expect("non-empty").index()] {
            ids.push(p);
            if p == from {
                break;
            }
        }
        ids.reverse();
        Some(ids)
    }

    /// Shortest route (by free-flow travel time) from `from` to `to`, or
    /// `None` if unreachable or either id is unknown.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Route> {
        let n = self.positions.len();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        if from == to {
            return Some(Route::from_points(vec![self.position(from)], vec![]));
        }
        let ids = self.dijkstra_ids(from, to)?;
        let points: Vec<Vec2> = ids.iter().map(|&id| self.position(id)).collect();
        let speeds: Vec<f64> = ids
            .windows(2)
            .map(|w| {
                self.adjacency[w[0].index()]
                    .iter()
                    .find(|lane| lane.to == w[1])
                    .expect("path edges exist")
                    .speed_limit
            })
            .collect();
        Some(Route::from_points(points, speeds))
    }
}

/// A polyline route with per-segment speed limits and arc-length lookup.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Route {
    points: Vec<Vec2>,
    cumulative: Vec<f64>,
    speed_limits: Vec<f64>,
}

impl Route {
    /// Builds a route from waypoints; `speed_limits` has one entry per
    /// segment (`points.len() - 1`) and may be empty for a degenerate
    /// single-point route.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the lengths disagree.
    pub fn from_points(points: Vec<Vec2>, speed_limits: Vec<f64>) -> Self {
        assert!(!points.is_empty(), "route needs at least one point");
        assert_eq!(
            speed_limits.len(),
            points.len().saturating_sub(1),
            "one speed per segment"
        );
        let mut cumulative = Vec::with_capacity(points.len());
        cumulative.push(0.0);
        for w in points.windows(2) {
            let prev = *cumulative.last().expect("non-empty");
            cumulative.push(prev + w[0].distance(w[1]));
        }
        Route {
            points,
            cumulative,
            speed_limits,
        }
    }

    /// Total length in metres.
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("non-empty")
    }

    /// The waypoints of the route.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Position and heading (radians from +x) at arc length `s`, clamped to
    /// the route's ends.
    pub fn position_at(&self, s: f64) -> (Vec2, f64) {
        let s = s.clamp(0.0, self.length());
        if self.points.len() == 1 {
            return (self.points[0], 0.0);
        }
        // Find the segment containing s (cumulative is sorted).
        let seg = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.points.len() - 2),
        };
        let seg_len = self.cumulative[seg + 1] - self.cumulative[seg];
        let t = if seg_len > 0.0 {
            (s - self.cumulative[seg]) / seg_len
        } else {
            0.0
        };
        let pos = self.points[seg].lerp(self.points[seg + 1], t);
        let heading = (self.points[seg + 1] - self.points[seg]).angle();
        (pos, heading)
    }

    /// Speed limit of the segment containing arc length `s` (m/s); the last
    /// segment's limit past the end. Returns 0.0 for single-point routes.
    pub fn speed_limit_at(&self, s: f64) -> f64 {
        if self.speed_limits.is_empty() {
            return 0.0;
        }
        let s = s.clamp(0.0, self.length());
        for (i, w) in self.cumulative.windows(2).enumerate() {
            if s <= w[1] {
                return self.speed_limits[i];
            }
        }
        *self.speed_limits.last().expect("non-empty")
    }

    /// Free-flow travel time over the whole route, in seconds.
    pub fn free_flow_time(&self) -> f64 {
        self.cumulative
            .windows(2)
            .zip(&self.speed_limits)
            .map(|(w, &v)| (w[1] - w[0]) / v)
            .sum()
    }
}

/// Total-order wrapper for finite f64 priorities.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("priorities are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_routes_pass_through_center() {
        let net = RoadNetwork::four_way_intersection(100.0, 10.0);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.lane_count(), 8);
        let r = net.route(net.approach_node(0), net.exit_node(2)).unwrap();
        assert_eq!(r.points().len(), 3);
        assert!((r.length() - 200.0).abs() < 1e-9);
        let (mid, heading) = r.position_at(100.0);
        assert!(mid.distance(Vec2::ZERO) < 1e-9);
        assert!((heading - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn route_same_node_is_degenerate() {
        let net = RoadNetwork::four_way_intersection(50.0, 10.0);
        let a = net.approach_node(0);
        let r = net.route(a, a).unwrap();
        assert_eq!(r.length(), 0.0);
        let (p, _) = r.position_at(5.0);
        assert_eq!(p, net.position(a));
    }

    #[test]
    fn unreachable_route_is_none() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Vec2::ZERO);
        let b = net.add_node(Vec2::new(10.0, 0.0));
        let c = net.add_node(Vec2::new(20.0, 0.0));
        net.add_lane(a, b, 10.0).unwrap();
        // No lane into c.
        assert!(net.route(a, c).is_none());
        assert!(net.route(c, a).is_none());
    }

    #[test]
    fn dijkstra_prefers_faster_detour() {
        // Direct slow lane vs a two-hop fast detour that is longer but quicker.
        let mut net = RoadNetwork::new();
        let a = net.add_node(Vec2::ZERO);
        let b = net.add_node(Vec2::new(100.0, 0.0));
        let via = net.add_node(Vec2::new(50.0, 20.0));
        net.add_lane(a, b, 2.0).unwrap(); // 100m at 2 m/s = 50 s
        net.add_lane(a, via, 20.0).unwrap(); // ~53.85m at 20 = 2.7s
        net.add_lane(via, b, 20.0).unwrap();
        let r = net.route(a, b).unwrap();
        assert_eq!(r.points().len(), 3, "should take the detour");
        assert!(r.free_flow_time() < 10.0);
    }

    #[test]
    fn lane_validation() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Vec2::ZERO);
        let b = net.add_node(Vec2::new(1.0, 0.0));
        assert_eq!(net.add_lane(a, a, 10.0), Err(BuildRoadError::SelfLoop(a)));
        assert_eq!(
            net.add_lane(a, NodeId(9), 10.0),
            Err(BuildRoadError::UnknownNode(NodeId(9)))
        );
        assert!(matches!(
            net.add_lane(a, b, 0.0),
            Err(BuildRoadError::InvalidSpeed(_))
        ));
        assert!(matches!(
            net.add_lane(a, b, f64::NAN),
            Err(BuildRoadError::InvalidSpeed(_))
        ));
        assert!(net.add_lane(a, b, 10.0).is_ok());
    }

    #[test]
    fn manhattan_grid_shape() {
        let net = RoadNetwork::manhattan_grid(4, 3, 50.0, 10.0);
        assert_eq!(net.node_count(), 12);
        // Horizontal: 3 per row * 3 rows; vertical: 4 per column-pair * 2 = 8... each two-way.
        assert_eq!(net.lane_count(), 2 * (3 * 3 + 4 * 2));
        let r = net.route(NodeId(0), NodeId(11)).unwrap();
        assert!(
            (r.length() - 250.0).abs() < 1e-9,
            "manhattan distance 5 hops"
        );
    }

    #[test]
    fn route_position_interpolates_and_clamps() {
        let r = Route::from_points(
            vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(10.0, 10.0)],
            vec![5.0, 10.0],
        );
        assert_eq!(r.length(), 20.0);
        let (p, h) = r.position_at(5.0);
        assert_eq!(p, Vec2::new(5.0, 0.0));
        assert_eq!(h, 0.0);
        let (p, h) = r.position_at(15.0);
        assert_eq!(p, Vec2::new(10.0, 5.0));
        assert!((h - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Clamping.
        assert_eq!(r.position_at(-3.0).0, Vec2::ZERO);
        assert_eq!(r.position_at(99.0).0, Vec2::new(10.0, 10.0));
    }

    #[test]
    fn speed_limits_per_segment() {
        let r = Route::from_points(
            vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(20.0, 0.0)],
            vec![5.0, 10.0],
        );
        assert_eq!(r.speed_limit_at(2.0), 5.0);
        assert_eq!(r.speed_limit_at(12.0), 10.0);
        assert_eq!(r.speed_limit_at(999.0), 10.0);
        assert!((r.free_flow_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_waypoint_lookup_is_stable() {
        let r = Route::from_points(vec![Vec2::ZERO, Vec2::new(10.0, 0.0)], vec![10.0]);
        // Hitting the cumulative values exactly must not panic or misindex.
        let (p0, _) = r.position_at(0.0);
        let (p1, _) = r.position_at(10.0);
        assert_eq!(p0, Vec2::ZERO);
        assert_eq!(p1, Vec2::new(10.0, 0.0));
    }
}
