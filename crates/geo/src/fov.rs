//! Sensor fields of view: range, aperture and occlusion combined.
//!
//! A perception sensor sees a target when it is (a) within range, (b)
//! within the angular aperture around the sensor heading, and (c) not
//! occluded by a building. [`coverage_fraction`] samples a region on a grid
//! to quantify how much of it a set of sensors can observe — the basis of
//! the looking-around-the-corner coverage metric (experiment F4).

use crate::occlusion::{Aabb, World};
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A sensor's field of view.
///
/// ```
/// use airdnd_geo::{SensorFov, Vec2};
/// let fov = SensorFov::new(100.0, std::f64::consts::FRAC_PI_4);
/// // Target dead ahead at 50 m: covered.
/// assert!(fov.covers(Vec2::ZERO, 0.0, Vec2::new(50.0, 0.0)));
/// // Behind the sensor: not covered.
/// assert!(!fov.covers(Vec2::ZERO, 0.0, Vec2::new(-50.0, 0.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorFov {
    range: f64,
    half_angle: f64,
}

impl SensorFov {
    /// A cone of the given `range` (m) and `half_angle` (radians) either
    /// side of the heading.
    ///
    /// # Panics
    ///
    /// Panics if `range` is negative or `half_angle` is outside `[0, π]`.
    pub fn new(range: f64, half_angle: f64) -> Self {
        assert!(
            range >= 0.0 && range.is_finite(),
            "range must be non-negative"
        );
        assert!(
            (0.0..=std::f64::consts::PI).contains(&half_angle),
            "half-angle must be within [0, PI]"
        );
        SensorFov { range, half_angle }
    }

    /// A 360° sensor (e.g. roof lidar) with the given range.
    pub fn omnidirectional(range: f64) -> Self {
        SensorFov::new(range, std::f64::consts::PI)
    }

    /// Maximum sensing range, metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Angular aperture either side of the heading, radians.
    pub fn half_angle(&self) -> f64 {
        self.half_angle
    }

    /// `true` if `target` is inside the cone (ignoring occlusion).
    pub fn covers(&self, origin: Vec2, heading: f64, target: Vec2) -> bool {
        let to = target - origin;
        let dist = to.norm();
        if dist > self.range {
            return false;
        }
        if dist < 1e-9 {
            return true;
        }
        let angle = to.angle();
        let mut delta = (angle - heading).abs() % (2.0 * std::f64::consts::PI);
        if delta > std::f64::consts::PI {
            delta = 2.0 * std::f64::consts::PI - delta;
        }
        delta <= self.half_angle + 1e-12
    }

    /// `true` if `target` is inside the cone *and* has line of sight.
    pub fn sees(&self, origin: Vec2, heading: f64, target: Vec2, world: &World) -> bool {
        self.covers(origin, heading, target) && world.line_of_sight(origin, target)
    }
}

/// A positioned sensor: origin, heading and field of view.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacedSensor {
    /// Sensor position.
    pub origin: Vec2,
    /// Sensor heading, radians from +x.
    pub heading: f64,
    /// The field-of-view cone.
    pub fov: SensorFov,
}

impl PlacedSensor {
    /// `true` if this sensor sees `target` in `world`.
    pub fn sees(&self, target: Vec2, world: &World) -> bool {
        self.fov.sees(self.origin, self.heading, target, world)
    }
}

/// Fraction of `region` (sampled on a `cell`-metre grid) visible to at
/// least one of `sensors` in `world`. Sample points inside obstacles are
/// excluded from the denominator. Returns 1.0 for a region with no valid
/// sample points.
pub fn coverage_fraction(sensors: &[PlacedSensor], region: Aabb, cell: f64, world: &World) -> f64 {
    assert!(cell > 0.0, "cell size must be positive");
    let (mut total, mut seen) = (0u64, 0u64);
    let nx = (region.width() / cell).ceil().max(1.0) as usize;
    let ny = (region.height() / cell).ceil().max(1.0) as usize;
    for ix in 0..nx {
        for iy in 0..ny {
            let p = Vec2::new(
                region.min().x + (ix as f64 + 0.5) * cell,
                region.min().y + (iy as f64 + 0.5) * cell,
            );
            if !region.contains(p) || world.is_inside_obstacle(p) {
                continue;
            }
            total += 1;
            if sensors.iter().any(|s| s.sees(p, world)) {
                seen += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        seen as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occlusion::Obstacle;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn range_gate() {
        let fov = SensorFov::omnidirectional(10.0);
        assert!(fov.covers(Vec2::ZERO, 0.0, Vec2::new(10.0, 0.0)));
        assert!(!fov.covers(Vec2::ZERO, 0.0, Vec2::new(10.1, 0.0)));
    }

    #[test]
    fn angular_gate() {
        let fov = SensorFov::new(100.0, FRAC_PI_4);
        assert!(fov.covers(Vec2::ZERO, 0.0, Vec2::new(10.0, 9.9)));
        assert!(!fov.covers(Vec2::ZERO, 0.0, Vec2::new(10.0, 10.2)));
        // Heading rotates the cone.
        assert!(fov.covers(Vec2::ZERO, FRAC_PI_2, Vec2::new(0.0, 10.0)));
        assert!(!fov.covers(Vec2::ZERO, FRAC_PI_2, Vec2::new(10.0, 0.0)));
    }

    #[test]
    fn angle_wraparound() {
        let fov = SensorFov::new(100.0, FRAC_PI_4);
        // Heading just below +π, target just above -π: tiny angular gap.
        let heading = PI - 0.05;
        let target = Vec2::from_angle(-PI + 0.05) * 10.0;
        assert!(fov.covers(Vec2::ZERO, heading, target));
    }

    #[test]
    fn coincident_target_is_covered() {
        let fov = SensorFov::new(5.0, 0.1);
        assert!(fov.covers(Vec2::ZERO, 0.0, Vec2::ZERO));
    }

    #[test]
    fn occlusion_blocks_sight() {
        let mut world = World::new();
        world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(
            Vec2::new(5.0, 0.0),
            2.0,
            2.0,
        )));
        let fov = SensorFov::omnidirectional(100.0);
        assert!(!fov.sees(Vec2::ZERO, 0.0, Vec2::new(10.0, 0.0), &world));
        assert!(fov.sees(Vec2::ZERO, 0.0, Vec2::new(0.0, 10.0), &world));
    }

    #[test]
    fn coverage_open_world_full() {
        let sensors = [PlacedSensor {
            origin: Vec2::ZERO,
            heading: 0.0,
            fov: SensorFov::omnidirectional(1000.0),
        }];
        let region = Aabb::from_center_size(Vec2::ZERO, 100.0, 100.0);
        let c = coverage_fraction(&sensors, region, 10.0, &World::new());
        assert_eq!(c, 1.0);
    }

    #[test]
    fn coverage_blocked_corner_is_partial_and_improves_with_helper() {
        let world = World::corner_buildings(10.0, 40.0);
        // Ego vehicle approaching from the south; the hidden region is the
        // east arm behind the corner building.
        let ego = PlacedSensor {
            origin: Vec2::new(0.0, -60.0),
            heading: FRAC_PI_2,
            fov: SensorFov::omnidirectional(300.0),
        };
        let hidden = Aabb::new(Vec2::new(30.0, -10.0), Vec2::new(120.0, 10.0));
        let alone = coverage_fraction(&[ego], hidden, 5.0, &world);
        assert!(
            alone < 0.8,
            "corner must hide part of the region, got {alone}"
        );
        // A helper on the east arm sees what the ego cannot.
        let helper = PlacedSensor {
            origin: Vec2::new(80.0, 0.0),
            heading: PI,
            fov: SensorFov::omnidirectional(300.0),
        };
        let together = coverage_fraction(&[ego, helper], hidden, 5.0, &world);
        assert!(
            together > alone + 0.2,
            "helper must add coverage: {alone} -> {together}"
        );
    }

    #[test]
    fn coverage_excludes_obstacle_interiors() {
        let mut world = World::new();
        // The whole region is one building: no valid samples, vacuous 1.0.
        world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(
            Vec2::ZERO,
            100.0,
            100.0,
        )));
        let region = Aabb::from_center_size(Vec2::ZERO, 50.0, 50.0);
        let c = coverage_fraction(&[], region, 10.0, &world);
        assert_eq!(c, 1.0);
    }

    #[test]
    fn no_sensors_means_zero_coverage() {
        let region = Aabb::from_center_size(Vec2::ZERO, 50.0, 50.0);
        let c = coverage_fraction(&[], region, 10.0, &World::new());
        assert_eq!(c, 0.0);
    }

    #[test]
    #[should_panic(expected = "half-angle")]
    fn invalid_half_angle_panics() {
        let _ = SensorFov::new(10.0, 4.0);
    }
}
