//! A uniform-grid spatial index for in-range neighbour queries.
//!
//! Radio-range queries ("which nodes are within 300 m of me?") run every
//! beacon interval for every node, so they must be cheap. The index buckets
//! positions into square cells of the query radius's order of magnitude;
//! a range query touches only the cells overlapping the query circle.
//!
//! Buckets are kept in a `BTreeMap` so iteration order — and therefore every
//! downstream event ordering — is deterministic.

use crate::vec2::Vec2;
use std::collections::BTreeMap;

/// A rebuild-per-tick spatial hash over items of type `T`.
///
/// ```
/// use airdnd_geo::{SpatialIndex, Vec2};
/// let mut idx = SpatialIndex::new(100.0);
/// idx.insert(1u64, Vec2::new(0.0, 0.0));
/// idx.insert(2u64, Vec2::new(50.0, 0.0));
/// idx.insert(3u64, Vec2::new(500.0, 0.0));
/// let near = idx.query_range(Vec2::ZERO, 100.0);
/// assert_eq!(near, vec![1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct SpatialIndex<T> {
    cell_size: f64,
    cells: BTreeMap<(i64, i64), Vec<(T, Vec2)>>,
    len: usize,
}

impl<T: Copy> SpatialIndex<T> {
    /// Creates an index with the given cell size (metres).
    ///
    /// Pick roughly the typical query radius; correctness does not depend
    /// on the choice, only performance.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        SpatialIndex {
            cell_size,
            cells: BTreeMap::new(),
            len: 0,
        }
    }

    fn cell_of(&self, p: Vec2) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Inserts an item at a position. Duplicate ids are allowed (the index
    /// has no notion of identity); rebuild from scratch each tick instead
    /// of updating.
    pub fn insert(&mut self, item: T, pos: Vec2) {
        let cell = self.cell_of(pos);
        self.cells.entry(cell).or_default().push((item, pos));
        self.len += 1;
    }

    /// Removes all items, keeping allocated buckets for reuse.
    pub fn clear(&mut self) {
        for bucket in self.cells.values_mut() {
            bucket.clear();
        }
        self.len = 0;
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All items within `radius` of `center` (inclusive), with positions,
    /// in deterministic (cell, insertion) order.
    pub fn query_range_with_pos(&self, center: Vec2, radius: f64) -> Vec<(T, Vec2)> {
        if radius < 0.0 {
            return Vec::new();
        }
        let r2 = radius * radius;
        let min = self.cell_of(center - Vec2::new(radius, radius));
        let max = self.cell_of(center + Vec2::new(radius, radius));
        let mut out = Vec::new();
        for cx in min.0..=max.0 {
            for cy in min.1..=max.1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &(item, pos) in bucket {
                        if pos.distance_sq(center) <= r2 {
                            out.push((item, pos));
                        }
                    }
                }
            }
        }
        out
    }

    /// All items within `radius` of `center` (inclusive).
    pub fn query_range(&self, center: Vec2, radius: f64) -> Vec<T> {
        self.query_range_with_pos(center, radius)
            .into_iter()
            .map(|(item, _)| item)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_sim::SimRng;

    #[test]
    fn finds_items_across_cell_borders() {
        let mut idx = SpatialIndex::new(10.0);
        idx.insert(1u32, Vec2::new(9.9, 0.0));
        idx.insert(2u32, Vec2::new(10.1, 0.0));
        let hits = idx.query_range(Vec2::new(10.0, 0.0), 0.5);
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn radius_is_inclusive() {
        let mut idx = SpatialIndex::new(5.0);
        idx.insert(1u32, Vec2::new(3.0, 4.0)); // distance exactly 5
        assert_eq!(idx.query_range(Vec2::ZERO, 5.0), vec![1]);
        assert!(idx.query_range(Vec2::ZERO, 4.999).is_empty());
    }

    #[test]
    fn negative_radius_returns_nothing() {
        let mut idx = SpatialIndex::new(5.0);
        idx.insert(1u32, Vec2::ZERO);
        assert!(idx.query_range(Vec2::ZERO, -1.0).is_empty());
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut idx = SpatialIndex::new(5.0);
        idx.insert(1u32, Vec2::ZERO);
        assert_eq!(idx.len(), 1);
        idx.clear();
        assert!(idx.is_empty());
        assert!(idx.query_range(Vec2::ZERO, 10.0).is_empty());
        idx.insert(2u32, Vec2::ZERO);
        assert_eq!(idx.query_range(Vec2::ZERO, 1.0), vec![2]);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = SimRng::seed_from(42);
        let points: Vec<(u64, Vec2)> = (0..500)
            .map(|i| {
                let x = rng.next_f64() * 1000.0 - 500.0;
                let y = rng.next_f64() * 1000.0 - 500.0;
                (i, Vec2::new(x, y))
            })
            .collect();
        let mut idx = SpatialIndex::new(75.0);
        for &(id, p) in &points {
            idx.insert(id, p);
        }
        for probe in 0..20 {
            let center = Vec2::new(
                rng.next_f64() * 1000.0 - 500.0,
                rng.next_f64() * 1000.0 - 500.0,
            );
            let radius = rng.next_f64() * 200.0;
            let mut expected: Vec<u64> = points
                .iter()
                .filter(|(_, p)| p.distance(center) <= radius)
                .map(|&(id, _)| id)
                .collect();
            expected.sort_unstable();
            let mut got = idx.query_range(center, radius);
            got.sort_unstable();
            assert_eq!(got, expected, "probe {probe}");
        }
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut idx = SpatialIndex::new(10.0);
        idx.insert(1u32, Vec2::new(-0.5, -0.5));
        idx.insert(2u32, Vec2::new(0.5, 0.5));
        let hits = idx.query_range(Vec2::ZERO, 1.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn deterministic_result_order() {
        let build = || {
            let mut idx = SpatialIndex::new(20.0);
            for i in 0..100u64 {
                let angle = i as f64;
                idx.insert(i, Vec2::new(angle.cos() * 50.0, angle.sin() * 50.0));
            }
            idx.query_range(Vec2::ZERO, 60.0)
        };
        assert_eq!(build(), build());
    }
}
