//! Plane vectors and points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (also used as a point), in metres.
///
/// ```
/// use airdnd_geo::Vec2;
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a.distance(Vec2::ZERO), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians from the +x axis.
    pub fn from_angle(angle: f64) -> Self {
        Vec2 {
            x: angle.cos(),
            y: angle.sin(),
        }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared length (avoids the sqrt for comparisons).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector scaled to unit length; `None` if (numerically) zero.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle of this vector from the +x axis, in `(-π, π]` radians.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 {
            x: self.x * c - self.y * s,
            y: self.x * s + self.y * c,
        }
    }

    /// The perpendicular vector (rotated +90°).
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2 {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
        }
    }

    /// Component-wise maximum.
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2 {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
        }
    }

    /// `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}
impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}
impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}
impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}
impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x * rhs,
            y: self.y * rhs,
        }
    }
}
impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x / rhs,
            y: self.y / rhs,
        }
    }
}
impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn norm_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(v), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(v), 25.0);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn normalize_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), None);
        let n = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert_eq!(n, Vec2::new(0.0, 1.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn angle_round_trip() {
        for &a in &[0.0, 0.5, -1.2, PI - 0.01] {
            let v = Vec2::from_angle(a);
            assert!((v.angle() - a).abs() < 1e-12, "angle {a}");
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -10.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max(b), Vec2::new(3.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
