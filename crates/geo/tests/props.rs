//! Property-based tests for geometry, routes and occlusion.

use airdnd_geo::{Aabb, RoadNetwork, Vec2, World};
use proptest::prelude::*;

fn arb_vec2() -> impl Strategy<Value = Vec2> {
    (-1e4f64..1e4, -1e4f64..1e4).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    /// Vector algebra: norm scales with scalar multiplication; the
    /// triangle inequality holds.
    #[test]
    fn vector_norms(a in arb_vec2(), b in arb_vec2(), k in -100.0f64..100.0) {
        prop_assert!(((a * k).norm() - a.norm() * k.abs()).abs() < 1e-6);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    /// Rotation preserves length; rotating by ±θ round-trips.
    #[test]
    fn rotation_is_isometric(v in arb_vec2(), theta in -6.3f64..6.3) {
        let r = v.rotated(theta);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-6);
        let back = r.rotated(-theta);
        prop_assert!(back.distance(v) < 1e-6);
    }

    /// Any point strictly inside a box blocks the segment test through it;
    /// segments fully on one side never intersect.
    #[test]
    fn aabb_segment_agreement(
        cx in -100.0f64..100.0,
        cy in -100.0f64..100.0,
        w in 1.0f64..50.0,
        h in 1.0f64..50.0,
        t in 0.05f64..0.95,
    ) {
        let b = Aabb::from_center_size(Vec2::new(cx, cy), w, h);
        // A segment crossing the centre horizontally must intersect.
        let left = Vec2::new(cx - w, cy);
        let right = Vec2::new(cx + w, cy);
        prop_assert!(b.intersects_segment(left, right));
        // Any point sampled on the inside chord is contained.
        let p = left.lerp(right, t);
        if p.x > cx - w / 2.0 && p.x < cx + w / 2.0 {
            prop_assert!(b.contains(p));
        }
        // A segment strictly above the box never intersects.
        let above = Vec2::new(cx - w, cy + h);
        let above2 = Vec2::new(cx + w, cy + h);
        prop_assert!(!b.intersects_segment(above, above2));
    }

    /// Route positions are continuous: small arc steps move small
    /// distances, and position_at stays on the polyline's bounding box.
    #[test]
    fn route_position_is_continuous(steps in 2usize..50) {
        let net = RoadNetwork::four_way_intersection(200.0, 10.0);
        let route = net.route(net.approach_node(0), net.exit_node(1)).unwrap();
        let len = route.length();
        let mut prev = route.position_at(0.0).0;
        for i in 1..=steps {
            let s = len * i as f64 / steps as f64;
            let (p, _) = route.position_at(s);
            let moved = p.distance(prev);
            let step_len = len / steps as f64;
            prop_assert!(moved <= step_len + 1e-6, "jumped {moved} for step {step_len}");
            prop_assert!(p.x.abs() <= 200.0 + 1e-9 && p.y.abs() <= 200.0 + 1e-9);
            prev = p;
        }
    }

    /// Line of sight is symmetric: if A sees B, B sees A.
    #[test]
    fn line_of_sight_is_symmetric(a in arb_vec2(), b in arb_vec2()) {
        let world = World::corner_buildings(12.0, 40.0);
        prop_assert_eq!(world.line_of_sight(a, b), world.line_of_sight(b, a));
    }

    /// Expanding a box never loses containment.
    #[test]
    fn expansion_is_monotone(p in arb_vec2(), margin in 0.0f64..100.0) {
        let b = Aabb::from_center_size(Vec2::ZERO, 50.0, 30.0);
        if b.contains(p) {
            prop_assert!(b.expanded(margin).contains(p));
        }
    }
}
