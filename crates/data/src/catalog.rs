//! Per-node data catalogs and the compact summaries beaconed to the mesh.
//!
//! Every node keeps a [`DataCatalog`] of the items it currently holds. The
//! full catalog never leaves the node; a [`CatalogSummary`] — a few dozen
//! bytes per data type — rides inside mesh beacons so remote orchestrators
//! can shortlist candidate nodes before asking anything.

use crate::quality::QualityDescriptor;
use crate::schema::{DataQuery, DataType};
use airdnd_geo::Aabb;
use airdnd_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a data item within one node's catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataItemId(u64);

impl DataItemId {
    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DataItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// One piece of data held by a node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataItem {
    /// Catalog-unique id.
    pub id: DataItemId,
    /// What the data is.
    pub data_type: DataType,
    /// Serialized size in bytes (what would travel if it were shipped).
    pub size_bytes: u64,
    /// Quality attributes.
    pub quality: QualityDescriptor,
}

/// Per-type digest inside a [`CatalogSummary`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TypeDigest {
    /// Number of items of this type.
    pub count: u32,
    /// Production time of the freshest item.
    pub freshest: SimTime,
    /// Best confidence among items of this type.
    pub best_confidence: f64,
    /// Best resolution among items of this type.
    pub best_resolution: f64,
    /// Union of the coverage boxes, if any item is spatial.
    pub coverage_union: Option<Aabb>,
}

/// The compact, beacon-sized digest of a catalog.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CatalogSummary {
    digests: BTreeMap<DataType, TypeDigest>,
}

impl CatalogSummary {
    /// Digest for one data type, if the node holds any.
    pub fn digest(&self, data_type: DataType) -> Option<&TypeDigest> {
        self.digests.get(&data_type)
    }

    /// Iterates over all per-type digests.
    pub fn digests(&self) -> impl Iterator<Item = (&DataType, &TypeDigest)> {
        self.digests.iter()
    }

    /// Quick plausibility check: could this node possibly satisfy `query`?
    ///
    /// False positives are fine (the full catalog is re-checked on the
    /// node); false negatives would hide data, so only hard attributes are
    /// tested.
    pub fn may_satisfy(&self, query: &DataQuery, now: SimTime) -> bool {
        let Some(d) = self.digests.get(&query.data_type) else {
            return false;
        };
        if now.saturating_since(d.freshest) > query.requirement.max_age {
            return false;
        }
        if d.best_confidence < query.requirement.min_confidence {
            return false;
        }
        if d.best_resolution < query.requirement.min_resolution {
            return false;
        }
        if let Some(region) = &query.requirement.required_region {
            match &d.coverage_union {
                Some(cov) => {
                    if !region.intersects(cov) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// Approximate wire size of this summary in bytes (for beacon sizing).
    pub fn wire_size_bytes(&self) -> u64 {
        // type tag (1) + count (4) + freshest (8) + conf/res (8) + aabb (33)
        16 + self.digests.len() as u64 * 54
    }
}

/// A node's inventory of locally held data.
///
/// The catalog is bounded: inserting beyond `capacity` evicts the oldest
/// item (by production time) first, mirroring a rolling sensor buffer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataCatalog {
    items: Vec<DataItem>,
    capacity: usize,
    next_id: u64,
    /// Monotone mutation counter (see [`DataCatalog::version`]).
    version: u64,
}

impl DataCatalog {
    /// Creates a catalog bounded to `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "catalog capacity must be positive");
        DataCatalog {
            items: Vec::new(),
            capacity,
            next_id: 0,
            version: 0,
        }
    }

    /// Monotone change counter: bumps whenever the item set changes, so
    /// callers can cache derived views (e.g. the beacon-sized
    /// [`CatalogSummary`]) keyed on it and skip recomputation while the
    /// catalog is quiet.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the catalog holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an item, evicting the oldest if full. Returns the assigned id.
    pub fn insert(
        &mut self,
        data_type: DataType,
        size_bytes: u64,
        quality: QualityDescriptor,
    ) -> DataItemId {
        if self.items.len() >= self.capacity {
            let oldest = self
                .items
                .iter()
                .enumerate()
                .min_by_key(|(_, item)| item.quality.produced_at)
                .map(|(i, _)| i)
                .expect("catalog is non-empty when full");
            self.items.swap_remove(oldest);
        }
        let id = DataItemId(self.next_id);
        self.next_id += 1;
        self.version += 1;
        self.items.push(DataItem {
            id,
            data_type,
            size_bytes,
            quality,
        });
        id
    }

    /// Looks up an item by id.
    pub fn get(&self, id: DataItemId) -> Option<&DataItem> {
        self.items.iter().find(|item| item.id == id)
    }

    /// Removes an item by id; returns it if present.
    pub fn remove(&mut self, id: DataItemId) -> Option<DataItem> {
        let idx = self.items.iter().position(|item| item.id == id)?;
        self.version += 1;
        Some(self.items.swap_remove(idx))
    }

    /// Drops every item older than `max_age` relative to `now`; returns how
    /// many were dropped.
    pub fn expire(&mut self, now: SimTime, max_age: airdnd_sim::SimDuration) -> usize {
        let before = self.items.len();
        self.items.retain(|item| item.quality.age(now) <= max_age);
        let dropped = before - self.items.len();
        if dropped > 0 {
            self.version += 1;
        }
        dropped
    }

    /// All items satisfying `query` at `now`, best match-score first.
    pub fn find(&self, query: &DataQuery, now: SimTime) -> Vec<&DataItem> {
        let mut hits: Vec<(&DataItem, f64)> = self
            .items
            .iter()
            .filter(|item| item.data_type == query.data_type)
            .filter_map(|item| {
                let s = query.requirement.score(&item.quality, now);
                (s > 0.0).then_some((item, s))
            })
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(a.0.id.cmp(&b.0.id))
        });
        hits.into_iter().map(|(item, _)| item).collect()
    }

    /// Iterates over all items.
    pub fn iter(&self) -> impl Iterator<Item = &DataItem> {
        self.items.iter()
    }

    /// Builds the beacon-sized summary of this catalog.
    pub fn summarize(&self) -> CatalogSummary {
        let mut digests: BTreeMap<DataType, TypeDigest> = BTreeMap::new();
        for item in &self.items {
            let d = digests.entry(item.data_type).or_insert(TypeDigest {
                count: 0,
                freshest: SimTime::ZERO,
                best_confidence: 0.0,
                best_resolution: 0.0,
                coverage_union: None,
            });
            d.count += 1;
            d.freshest = d.freshest.max(item.quality.produced_at);
            d.best_confidence = d.best_confidence.max(item.quality.confidence);
            d.best_resolution = d.best_resolution.max(item.quality.resolution);
            if let Some(cov) = item.quality.coverage {
                d.coverage_union = Some(match d.coverage_union {
                    Some(u) => Aabb::new(u.min().min(cov.min()), u.max().max(cov.max())),
                    None => cov,
                });
            }
        }
        CatalogSummary { digests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_geo::Vec2;
    use airdnd_sim::SimDuration;

    fn quality_at(t: u64) -> QualityDescriptor {
        QualityDescriptor::basic(SimTime::from_secs(t), 0.9, 2.0)
    }

    #[test]
    fn insert_find_get_remove_round_trip() {
        let mut cat = DataCatalog::new(10);
        let id = cat.insert(DataType::DetectionList, 2048, quality_at(5));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get(id).unwrap().size_bytes, 2048);
        let hits = cat.find(
            &DataQuery::of_type(DataType::DetectionList),
            SimTime::from_secs(6),
        );
        assert_eq!(hits.len(), 1);
        assert!(cat.remove(id).is_some());
        assert!(cat.is_empty());
        assert!(cat.remove(id).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut cat = DataCatalog::new(3);
        cat.insert(DataType::DetectionList, 1, quality_at(10));
        cat.insert(DataType::DetectionList, 1, quality_at(5)); // oldest
        cat.insert(DataType::DetectionList, 1, quality_at(20));
        cat.insert(DataType::DetectionList, 1, quality_at(30)); // evicts t=5
        assert_eq!(cat.len(), 3);
        let oldest = cat.iter().map(|i| i.quality.produced_at).min().unwrap();
        assert_eq!(oldest, SimTime::from_secs(10));
    }

    #[test]
    fn ids_stay_unique_across_eviction() {
        let mut cat = DataCatalog::new(2);
        let a = cat.insert(DataType::TrackList, 1, quality_at(1));
        let b = cat.insert(DataType::TrackList, 1, quality_at(2));
        let c = cat.insert(DataType::TrackList, 1, quality_at(3));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn find_orders_by_score_and_filters_type() {
        let now = SimTime::from_secs(10);
        let mut cat = DataCatalog::new(10);
        cat.insert(DataType::DetectionList, 1, quality_at(3)); // older
        let fresh_id = cat.insert(DataType::DetectionList, 1, quality_at(9));
        cat.insert(DataType::OccupancyGrid, 1, quality_at(9)); // other type
        let hits = cat.find(&DataQuery::of_type(DataType::DetectionList), now);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, fresh_id, "freshest first");
    }

    #[test]
    fn expire_drops_stale_items() {
        let mut cat = DataCatalog::new(10);
        cat.insert(DataType::DetectionList, 1, quality_at(1));
        cat.insert(DataType::DetectionList, 1, quality_at(8));
        let dropped = cat.expire(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(dropped, 1);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn summary_digests_per_type() {
        let mut cat = DataCatalog::new(10);
        let mut q = quality_at(4);
        q.coverage = Some(Aabb::from_center_size(Vec2::ZERO, 50.0, 50.0));
        cat.insert(DataType::OccupancyGrid, 1, q);
        let mut q2 = quality_at(7);
        q2.confidence = 0.99;
        q2.coverage = Some(Aabb::from_center_size(Vec2::new(100.0, 0.0), 50.0, 50.0));
        cat.insert(DataType::OccupancyGrid, 1, q2);
        let s = cat.summarize();
        let d = s.digest(DataType::OccupancyGrid).unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.freshest, SimTime::from_secs(7));
        assert_eq!(d.best_confidence, 0.99);
        let u = d.coverage_union.unwrap();
        assert!(u.contains(Vec2::new(-20.0, 0.0)) && u.contains(Vec2::new(120.0, 0.0)));
        assert!(s.digest(DataType::TrackList).is_none());
    }

    #[test]
    fn may_satisfy_respects_hard_attributes() {
        let now = SimTime::from_secs(20);
        let mut cat = DataCatalog::new(10);
        cat.insert(DataType::DetectionList, 1, quality_at(19));
        let s = cat.summarize();
        assert!(s.may_satisfy(&DataQuery::of_type(DataType::DetectionList), now));
        assert!(!s.may_satisfy(&DataQuery::of_type(DataType::TrackList), now));
        let mut strict = DataQuery::of_type(DataType::DetectionList);
        strict.requirement.min_confidence = 0.99;
        assert!(!s.may_satisfy(&strict, now));
        let mut stale = DataQuery::of_type(DataType::DetectionList);
        stale.requirement.max_age = SimDuration::from_millis(1);
        assert!(!stale.may_satisfy_helper(&s, now));
    }

    // Small helper so the test above reads naturally in both directions.
    trait MaySatisfyHelper {
        fn may_satisfy_helper(&self, s: &CatalogSummary, now: SimTime) -> bool;
    }
    impl MaySatisfyHelper for DataQuery {
        fn may_satisfy_helper(&self, s: &CatalogSummary, now: SimTime) -> bool {
            s.may_satisfy(self, now)
        }
    }

    #[test]
    fn may_satisfy_region_check() {
        let now = SimTime::from_secs(5);
        let mut cat = DataCatalog::new(10);
        let mut q = quality_at(4);
        q.coverage = Some(Aabb::from_center_size(Vec2::ZERO, 50.0, 50.0));
        cat.insert(DataType::OccupancyGrid, 1, q);
        let s = cat.summarize();
        let mut query = DataQuery::of_type(DataType::OccupancyGrid);
        query.requirement.required_region =
            Some(Aabb::from_center_size(Vec2::new(500.0, 0.0), 10.0, 10.0));
        assert!(!s.may_satisfy(&query, now));
        query.requirement.required_region =
            Some(Aabb::from_center_size(Vec2::new(10.0, 0.0), 10.0, 10.0));
        assert!(s.may_satisfy(&query, now));
    }

    #[test]
    fn wire_size_tracks_type_count() {
        let mut cat = DataCatalog::new(10);
        let empty = cat.summarize().wire_size_bytes();
        cat.insert(DataType::DetectionList, 1, quality_at(0));
        cat.insert(DataType::OccupancyGrid, 1, quality_at(0));
        let two = cat.summarize().wire_size_bytes();
        assert!(two > empty);
        assert!(two < 1_000, "summaries must stay beacon-sized");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DataCatalog::new(0);
    }
}
