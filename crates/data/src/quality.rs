//! Quality descriptors and graded requirement matching.
//!
//! A [`QualityDescriptor`] travels with every advertised data item; a
//! [`QualityRequirement`] travels with every task input. Matching is
//! *graded*: beyond the hard pass/fail test, [`QualityRequirement::score`]
//! returns how comfortably an item clears the bar, which the RQ1 node
//! selector blends with link quality, compute headroom and trust.

use airdnd_geo::Aabb;
use airdnd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Quality attributes of a concrete data item.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QualityDescriptor {
    /// When the data was produced.
    pub produced_at: SimTime,
    /// Producer's confidence in the content, `[0, 1]`.
    pub confidence: f64,
    /// Spatial resolution in cells (or detections) per metre.
    pub resolution: f64,
    /// The region the data covers, if spatial.
    pub coverage: Option<Aabb>,
    /// Estimated noise standard deviation (sensor-specific units).
    pub noise_sigma: f64,
}

impl QualityDescriptor {
    /// A descriptor produced "now" with the given confidence and
    /// resolution, no spatial extent and zero noise.
    pub fn basic(produced_at: SimTime, confidence: f64, resolution: f64) -> Self {
        QualityDescriptor {
            produced_at,
            confidence,
            resolution,
            coverage: None,
            noise_sigma: 0.0,
        }
    }

    /// Age of the data at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.produced_at)
    }
}

/// Minimum quality a task input demands.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QualityRequirement {
    /// Maximum acceptable age.
    pub max_age: SimDuration,
    /// Minimum confidence, `[0, 1]`.
    pub min_confidence: f64,
    /// Minimum resolution, cells per metre.
    pub min_resolution: f64,
    /// Region the data must cover (at least [`QualityRequirement::min_coverage_fraction`] of it).
    pub required_region: Option<Aabb>,
    /// Fraction of `required_region` that must be covered, `[0, 1]`.
    pub min_coverage_fraction: f64,
    /// Maximum acceptable noise sigma.
    pub max_noise_sigma: f64,
}

impl Default for QualityRequirement {
    /// Permissive: anything younger than 10 s with any confidence.
    fn default() -> Self {
        QualityRequirement {
            max_age: SimDuration::from_secs(10),
            min_confidence: 0.0,
            min_resolution: 0.0,
            required_region: None,
            min_coverage_fraction: 1.0,
            max_noise_sigma: f64::INFINITY,
        }
    }
}

/// Fraction of `required` covered by `offered` (by area).
fn coverage_fraction(required: &Aabb, offered: Option<&Aabb>) -> f64 {
    let Some(offered) = offered else { return 0.0 };
    if required.area() <= 0.0 {
        // A degenerate (point/line) requirement is covered iff it intersects.
        return if required.intersects(offered) {
            1.0
        } else {
            0.0
        };
    }
    if !required.intersects(offered) {
        return 0.0;
    }
    let min = required.min().max(offered.min());
    let max = required.max().min(offered.max());
    let inter = Aabb::new(min, max);
    (inter.area() / required.area()).clamp(0.0, 1.0)
}

impl QualityRequirement {
    /// Hard pass/fail: `true` if `desc` satisfies every bound at `now`.
    pub fn is_satisfied_by(&self, desc: &QualityDescriptor, now: SimTime) -> bool {
        if desc.age(now) > self.max_age {
            return false;
        }
        if desc.confidence < self.min_confidence {
            return false;
        }
        if desc.resolution < self.min_resolution {
            return false;
        }
        if desc.noise_sigma > self.max_noise_sigma {
            return false;
        }
        if let Some(region) = &self.required_region {
            if coverage_fraction(region, desc.coverage.as_ref()) + 1e-12
                < self.min_coverage_fraction
            {
                return false;
            }
        }
        true
    }

    /// Graded score in `[0, 1]`: 0 if the requirement fails, otherwise the
    /// geometric mean of per-attribute headroom (freshness, confidence,
    /// resolution margin, coverage). Fresher, higher-confidence,
    /// better-covering data scores higher.
    pub fn score(&self, desc: &QualityDescriptor, now: SimTime) -> f64 {
        if !self.is_satisfied_by(desc, now) {
            return 0.0;
        }
        let freshness = if self.max_age.is_zero() {
            1.0
        } else {
            1.0 - (desc.age(now).as_secs_f64() / self.max_age.as_secs_f64()).clamp(0.0, 1.0)
        };
        let confidence = desc.confidence.clamp(0.0, 1.0);
        let resolution = if self.min_resolution > 0.0 {
            (desc.resolution / (2.0 * self.min_resolution)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let coverage = match &self.required_region {
            Some(region) => coverage_fraction(region, desc.coverage.as_ref()),
            None => 1.0,
        };
        let product: f64 = freshness * confidence * resolution * coverage;
        product.powf(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_geo::Vec2;

    fn fresh(now: SimTime) -> QualityDescriptor {
        QualityDescriptor {
            produced_at: now,
            confidence: 0.9,
            resolution: 4.0,
            coverage: Some(Aabb::from_center_size(Vec2::ZERO, 100.0, 100.0)),
            noise_sigma: 0.1,
        }
    }

    #[test]
    fn age_gate() {
        let now = SimTime::from_secs(100);
        let req = QualityRequirement {
            max_age: SimDuration::from_secs(2),
            ..Default::default()
        };
        let mut d = fresh(SimTime::from_secs(99));
        assert!(req.is_satisfied_by(&d, now));
        d.produced_at = SimTime::from_secs(97);
        assert!(!req.is_satisfied_by(&d, now), "3 s old vs 2 s bound");
    }

    #[test]
    fn confidence_resolution_noise_gates() {
        let now = SimTime::ZERO;
        let d = fresh(now);
        let mut req = QualityRequirement {
            min_confidence: 0.95,
            ..Default::default()
        };
        assert!(!req.is_satisfied_by(&d, now));
        req = QualityRequirement {
            min_resolution: 8.0,
            ..Default::default()
        };
        assert!(!req.is_satisfied_by(&d, now));
        req = QualityRequirement {
            max_noise_sigma: 0.05,
            ..Default::default()
        };
        assert!(!req.is_satisfied_by(&d, now));
        assert!(QualityRequirement::default().is_satisfied_by(&d, now));
    }

    #[test]
    fn coverage_gate_full_and_partial() {
        let now = SimTime::ZERO;
        let d = fresh(now); // covers 100×100 around origin
        let inside = Aabb::from_center_size(Vec2::ZERO, 20.0, 20.0);
        let half_out = Aabb::new(Vec2::new(0.0, -10.0), Vec2::new(100.0, 10.0));
        let outside = Aabb::from_center_size(Vec2::new(500.0, 0.0), 10.0, 10.0);

        let strict = QualityRequirement {
            required_region: Some(inside),
            min_coverage_fraction: 1.0,
            ..Default::default()
        };
        assert!(strict.is_satisfied_by(&d, now));

        let strict_half = QualityRequirement {
            required_region: Some(half_out),
            min_coverage_fraction: 1.0,
            ..Default::default()
        };
        assert!(
            !strict_half.is_satisfied_by(&d, now),
            "only half the region is covered"
        );

        let lenient_half = QualityRequirement {
            required_region: Some(half_out),
            min_coverage_fraction: 0.4,
            ..Default::default()
        };
        assert!(lenient_half.is_satisfied_by(&d, now));

        let impossible = QualityRequirement {
            required_region: Some(outside),
            min_coverage_fraction: 0.01,
            ..Default::default()
        };
        assert!(!impossible.is_satisfied_by(&d, now));
    }

    #[test]
    fn missing_coverage_fails_spatial_requirements() {
        let now = SimTime::ZERO;
        let mut d = fresh(now);
        d.coverage = None;
        let req = QualityRequirement {
            required_region: Some(Aabb::from_center_size(Vec2::ZERO, 1.0, 1.0)),
            min_coverage_fraction: 0.1,
            ..Default::default()
        };
        assert!(!req.is_satisfied_by(&d, now));
    }

    #[test]
    fn score_zero_on_failure_and_graded_on_pass() {
        let now = SimTime::from_secs(10);
        let req = QualityRequirement {
            max_age: SimDuration::from_secs(4),
            ..Default::default()
        };
        let stale = QualityDescriptor::basic(SimTime::ZERO, 0.9, 1.0);
        assert_eq!(req.score(&stale, now), 0.0);

        let newer = QualityDescriptor::basic(SimTime::from_secs(9), 0.9, 1.0);
        let older = QualityDescriptor::basic(SimTime::from_secs(7), 0.9, 1.0);
        let s_new = req.score(&newer, now);
        let s_old = req.score(&older, now);
        assert!(
            s_new > s_old,
            "fresher data must score higher: {s_new} vs {s_old}"
        );
        assert!((0.0..=1.0).contains(&s_new));
    }

    #[test]
    fn score_rewards_confidence() {
        let now = SimTime::ZERO;
        let req = QualityRequirement::default();
        let hi = QualityDescriptor::basic(now, 0.95, 1.0);
        let lo = QualityDescriptor::basic(now, 0.5, 1.0);
        assert!(req.score(&hi, now) > req.score(&lo, now));
    }

    #[test]
    fn degenerate_required_region() {
        let now = SimTime::ZERO;
        let d = fresh(now);
        // Zero-area region inside coverage: treated as intersect test.
        let point = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0));
        let req = QualityRequirement {
            required_region: Some(point),
            min_coverage_fraction: 1.0,
            ..Default::default()
        };
        assert!(req.is_satisfied_by(&d, now));
    }
}
