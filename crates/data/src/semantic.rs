//! Semantic capability matching (the paper's Goal 3 extension).
//!
//! Goal 3 of the research plan calls for "semantic protocols which enable
//! communication between heterogeneous systems". Heterogeneous nodes do
//! not share a closed enum of data types: a drone advertises
//! `sensor.camera.thermal`, a roadside unit wants anything under
//! `sensor.camera`. This module provides that vocabulary: dot-separated
//! capability terms with subsumption (`a` subsumes `a.b.c`), advertised
//! capability sets, and query matching with specificity scoring.
//!
//! ```
//! use airdnd_data::semantic::{CapabilitySet, Term};
//!
//! let mut caps = CapabilitySet::new();
//! caps.add(Term::parse("sensor.camera.thermal").unwrap());
//! caps.add(Term::parse("compute.fusion").unwrap());
//!
//! let want = Term::parse("sensor.camera").unwrap();
//! assert!(caps.satisfies(&want));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors from parsing capability terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseTermError {
    /// The term was empty.
    Empty,
    /// A segment was empty (`"a..b"`) or contained invalid characters.
    BadSegment(String),
    /// More segments than the supported depth.
    TooDeep(usize),
}

impl fmt::Display for ParseTermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTermError::Empty => write!(f, "empty capability term"),
            ParseTermError::BadSegment(s) => write!(f, "invalid term segment {s:?}"),
            ParseTermError::TooDeep(n) => write!(f, "term has {n} segments (max {MAX_DEPTH})"),
        }
    }
}

impl Error for ParseTermError {}

/// Maximum taxonomy depth.
pub const MAX_DEPTH: usize = 8;

/// A dot-separated capability term, e.g. `sensor.camera.thermal`.
///
/// Terms form a taxonomy by prefixing: `sensor.camera` *subsumes*
/// `sensor.camera.thermal`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Term {
    segments: Vec<String>,
}

impl Term {
    /// Parses a term.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTermError`] for empty terms, empty/invalid segments
    /// (only `[a-z0-9_-]` allowed) or terms deeper than [`MAX_DEPTH`].
    pub fn parse(s: &str) -> Result<Self, ParseTermError> {
        if s.is_empty() {
            return Err(ParseTermError::Empty);
        }
        let segments: Vec<String> = s.split('.').map(str::to_owned).collect();
        if segments.len() > MAX_DEPTH {
            return Err(ParseTermError::TooDeep(segments.len()));
        }
        for seg in &segments {
            let ok = !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-');
            if !ok {
                return Err(ParseTermError::BadSegment(seg.clone()));
            }
        }
        Ok(Term { segments })
    }

    /// Number of segments (specificity).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// `true` if `self` subsumes `other` (equal or proper prefix).
    ///
    /// `sensor` subsumes `sensor.camera.thermal`; a term subsumes itself.
    pub fn subsumes(&self, other: &Term) -> bool {
        self.segments.len() <= other.segments.len()
            && self
                .segments
                .iter()
                .zip(&other.segments)
                .all(|(a, b)| a == b)
    }

    /// The parent term (one segment shorter), if any.
    pub fn parent(&self) -> Option<Term> {
        if self.segments.len() <= 1 {
            return None;
        }
        Some(Term {
            segments: self.segments[..self.segments.len() - 1].to_vec(),
        })
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.segments.join("."))
    }
}

/// A node's advertised capability vocabulary.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapabilitySet {
    terms: BTreeSet<Term>,
}

impl CapabilitySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capability.
    pub fn add(&mut self, term: Term) {
        self.terms.insert(term);
    }

    /// Number of advertised terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// `true` if some advertised term is subsumed by `query` — i.e. the
    /// node offers *something* under the requested category — or an
    /// advertised term subsumes the query (the node claims the broader
    /// capability outright).
    pub fn satisfies(&self, query: &Term) -> bool {
        self.terms
            .iter()
            .any(|t| query.subsumes(t) || t.subsumes(query))
    }

    /// Match specificity in `[0, 1]`: the deepest shared prefix between the
    /// query and any advertised term, normalized by the query depth.
    /// 0.0 means no overlap at all; 1.0 means an exact-or-deeper match.
    pub fn match_score(&self, query: &Term) -> f64 {
        let best = self
            .terms
            .iter()
            .map(|t| {
                t.segments
                    .iter()
                    .zip(&query.segments)
                    .take_while(|(a, b)| a == b)
                    .count()
            })
            .max()
            .unwrap_or(0);
        if query.depth() == 0 {
            return 0.0;
        }
        (best.min(query.depth()) as f64 / query.depth() as f64).clamp(0.0, 1.0)
    }

    /// Iterates advertised terms in order.
    pub fn iter(&self) -> impl Iterator<Item = &Term> {
        self.terms.iter()
    }
}

impl FromIterator<Term> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        CapabilitySet {
            terms: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        Term::parse(s).expect("valid test term")
    }

    #[test]
    fn parse_validates() {
        assert!(Term::parse("sensor.camera").is_ok());
        assert!(Term::parse("a-b.c_d.e2").is_ok());
        assert_eq!(Term::parse(""), Err(ParseTermError::Empty));
        assert!(matches!(
            Term::parse("a..b"),
            Err(ParseTermError::BadSegment(_))
        ));
        assert!(matches!(
            Term::parse("A.b"),
            Err(ParseTermError::BadSegment(_))
        ));
        assert!(matches!(
            Term::parse("a b"),
            Err(ParseTermError::BadSegment(_))
        ));
        let deep = ["x"; MAX_DEPTH + 1].join(".");
        assert!(matches!(
            Term::parse(&deep),
            Err(ParseTermError::TooDeep(_))
        ));
    }

    #[test]
    fn subsumption_is_prefix_based() {
        assert!(t("sensor").subsumes(&t("sensor.camera.thermal")));
        assert!(t("sensor.camera").subsumes(&t("sensor.camera")));
        assert!(!t("sensor.camera.thermal").subsumes(&t("sensor.camera")));
        assert!(!t("sensor.lidar").subsumes(&t("sensor.camera")));
        assert!(
            !t("sens").subsumes(&t("sensor")),
            "prefix of a segment is not a parent"
        );
    }

    #[test]
    fn parent_walks_up() {
        assert_eq!(t("a.b.c").parent(), Some(t("a.b")));
        assert_eq!(t("a.b").parent(), Some(t("a")));
        assert_eq!(t("a").parent(), None);
    }

    #[test]
    fn satisfies_both_directions() {
        let caps: CapabilitySet = [t("sensor.camera.thermal"), t("compute.fusion")]
            .into_iter()
            .collect();
        // Query broader than the advert.
        assert!(caps.satisfies(&t("sensor.camera")));
        assert!(caps.satisfies(&t("sensor")));
        // Query deeper than the advert: node claims the broader capability.
        assert!(caps.satisfies(&t("compute.fusion.occupancy")));
        // Disjoint.
        assert!(!caps.satisfies(&t("actuator.brake")));
        assert!(!CapabilitySet::new().satisfies(&t("sensor")));
    }

    #[test]
    fn match_score_rewards_specificity() {
        let caps: CapabilitySet = [t("sensor.camera.thermal")].into_iter().collect();
        assert_eq!(caps.match_score(&t("sensor.camera.thermal")), 1.0);
        assert_eq!(
            caps.match_score(&t("sensor.camera")),
            1.0,
            "advert is deeper than query"
        );
        let partial = caps.match_score(&t("sensor.camera.rgb"));
        assert!(
            (partial - 2.0 / 3.0).abs() < 1e-12,
            "shares sensor.camera, got {partial}"
        );
        assert_eq!(caps.match_score(&t("actuator")), 0.0);
    }

    #[test]
    fn display_round_trips() {
        let term = t("sensor.camera.thermal");
        assert_eq!(Term::parse(&term.to_string()).unwrap(), term);
    }
}
