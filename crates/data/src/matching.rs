//! Query-against-catalog matching used by node selection.
//!
//! [`match_score`] answers "how well could this node's data serve this
//! task?" as a single `[0, 1]` figure; [`best_match`] picks the concrete
//! item a task execution would read. Both operate on full catalogs — the
//! beacon-level prefilter is [`crate::CatalogSummary::may_satisfy`].

use crate::catalog::{DataCatalog, DataItem};
use crate::schema::DataQuery;
use airdnd_sim::SimTime;

/// The best item in `catalog` for `query` at `now`, with its score.
///
/// Ties resolve to the lowest item id, keeping results deterministic.
pub fn best_match<'a>(
    catalog: &'a DataCatalog,
    query: &DataQuery,
    now: SimTime,
) -> Option<(&'a DataItem, f64)> {
    catalog
        .iter()
        .filter(|item| item.data_type == query.data_type)
        .filter_map(|item| {
            let s = query.requirement.score(&item.quality, now);
            (s > 0.0).then_some((item, s))
        })
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("scores are finite")
                .then(b.0.id.cmp(&a.0.id))
        })
}

/// How well `catalog` can serve *all* of `queries`: the geometric mean of
/// the best per-query scores, or 0.0 if any query has no match.
///
/// The geometric mean keeps one unsatisfiable input from being papered
/// over by excellent matches elsewhere — a task needs every input.
pub fn match_score(catalog: &DataCatalog, queries: &[DataQuery], now: SimTime) -> f64 {
    if queries.is_empty() {
        return 1.0;
    }
    let mut log_sum = 0.0;
    for query in queries {
        match best_match(catalog, query, now) {
            Some((_, s)) if s > 0.0 => log_sum += s.ln(),
            _ => return 0.0,
        }
    }
    (log_sum / queries.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityDescriptor;
    use crate::schema::DataType;

    fn catalog_with_ages(ages: &[u64]) -> DataCatalog {
        let mut cat = DataCatalog::new(16);
        for &t in ages {
            cat.insert(
                DataType::DetectionList,
                1_000,
                QualityDescriptor::basic(SimTime::from_secs(t), 0.9, 2.0),
            );
        }
        cat
    }

    #[test]
    fn best_match_picks_freshest() {
        let cat = catalog_with_ages(&[2, 8, 5]);
        let now = SimTime::from_secs(9);
        let (item, score) =
            best_match(&cat, &DataQuery::of_type(DataType::DetectionList), now).unwrap();
        assert_eq!(item.quality.produced_at, SimTime::from_secs(8));
        assert!(score > 0.0);
    }

    #[test]
    fn best_match_none_for_missing_type() {
        let cat = catalog_with_ages(&[2]);
        assert!(best_match(
            &cat,
            &DataQuery::of_type(DataType::TrackList),
            SimTime::from_secs(3)
        )
        .is_none());
    }

    #[test]
    fn match_score_requires_every_query() {
        let cat = catalog_with_ages(&[8]);
        let now = SimTime::from_secs(9);
        let q_ok = DataQuery::of_type(DataType::DetectionList);
        let q_missing = DataQuery::of_type(DataType::OccupancyGrid);
        assert!(match_score(&cat, std::slice::from_ref(&q_ok), now) > 0.0);
        assert_eq!(match_score(&cat, &[q_ok, q_missing], now), 0.0);
    }

    #[test]
    fn empty_query_list_is_trivially_satisfied() {
        let cat = catalog_with_ages(&[]);
        assert_eq!(match_score(&cat, &[], SimTime::ZERO), 1.0);
    }

    #[test]
    fn match_score_is_geometric_mean() {
        let cat = catalog_with_ages(&[8]);
        let now = SimTime::from_secs(9);
        let q = DataQuery::of_type(DataType::DetectionList);
        let single = match_score(&cat, std::slice::from_ref(&q), now);
        let double = match_score(&cat, &[q.clone(), q], now);
        assert!(
            (single - double).abs() < 1e-12,
            "same query twice = same mean"
        );
    }

    #[test]
    fn deterministic_tie_break() {
        // Two identical items: the earlier id must win, repeatably.
        let mut cat = DataCatalog::new(4);
        let q = QualityDescriptor::basic(SimTime::from_secs(1), 0.9, 2.0);
        let first = cat.insert(DataType::DetectionList, 10, q);
        cat.insert(DataType::DetectionList, 10, q);
        let now = SimTime::from_secs(2);
        let (item, _) =
            best_match(&cat, &DataQuery::of_type(DataType::DetectionList), now).unwrap();
        assert_eq!(item.id, first);
    }
}
