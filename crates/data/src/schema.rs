//! Data types: what a piece of edge data *is*, and how big it tends to be.
//!
//! The size model matters: the paper's core claim is that exchanging
//! *tasks and results* (kilobytes) beats exchanging *raw sensor data*
//! (megabytes). The typical sizes here parameterize every data-transfer
//! experiment (F2).

use crate::quality::QualityRequirement;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The physical sensor that produced a raw frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SensorModality {
    /// RGB camera.
    Camera,
    /// Spinning or solid-state lidar.
    Lidar,
    /// Automotive radar.
    Radar,
    /// Positioning receiver.
    Gnss,
}

impl fmt::Display for SensorModality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensorModality::Camera => "camera",
            SensorModality::Lidar => "lidar",
            SensorModality::Radar => "radar",
            SensorModality::Gnss => "gnss",
        };
        f.write_str(s)
    }
}

/// The semantic type of a data item, ordered roughly by processing stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// An unprocessed sensor frame.
    RawFrame(SensorModality),
    /// A list of detected objects (class, position, confidence).
    DetectionList,
    /// A rasterized occupancy grid around the producing vehicle.
    OccupancyGrid,
    /// Tracked objects with velocity estimates.
    TrackList,
    /// A fused multi-source perception summary.
    FusedPerception,
}

impl DataType {
    /// Typical serialized size in bytes, used when generating workloads.
    ///
    /// Raw frames are megabytes; computed artefacts are kilobytes. These
    /// are order-of-magnitude figures from the automotive perception
    /// literature, not calibrated to a specific sensor.
    pub fn typical_size_bytes(self) -> u64 {
        match self {
            DataType::RawFrame(SensorModality::Camera) => 2_000_000,
            DataType::RawFrame(SensorModality::Lidar) => 1_400_000,
            DataType::RawFrame(SensorModality::Radar) => 200_000,
            DataType::RawFrame(SensorModality::Gnss) => 100,
            DataType::DetectionList => 2_000,
            DataType::OccupancyGrid => 32_000,
            DataType::TrackList => 1_200,
            DataType::FusedPerception => 16_000,
        }
    }

    /// `true` for unprocessed sensor output.
    pub fn is_raw(self) -> bool {
        matches!(self, DataType::RawFrame(_))
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::RawFrame(m) => write!(f, "raw-{m}"),
            DataType::DetectionList => f.write_str("detections"),
            DataType::OccupancyGrid => f.write_str("occupancy-grid"),
            DataType::TrackList => f.write_str("tracks"),
            DataType::FusedPerception => f.write_str("fused-perception"),
        }
    }
}

/// A request for data: the type wanted plus the quality it must meet.
///
/// Tasks carry one query per input; the orchestrator matches queries
/// against the catalogs advertised by in-range nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataQuery {
    /// The data type required.
    pub data_type: DataType,
    /// Minimum acceptable quality.
    pub requirement: QualityRequirement,
}

impl DataQuery {
    /// A query with the given type and a permissive default requirement.
    pub fn of_type(data_type: DataType) -> Self {
        DataQuery {
            data_type,
            requirement: QualityRequirement::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_frames_dwarf_computed_artefacts() {
        let raw = DataType::RawFrame(SensorModality::Camera).typical_size_bytes();
        for computed in [
            DataType::DetectionList,
            DataType::TrackList,
            DataType::FusedPerception,
        ] {
            let ratio = raw as f64 / computed.typical_size_bytes() as f64;
            assert!(
                ratio > 50.0,
                "{computed} must be ≫ smaller than a raw frame"
            );
        }
    }

    #[test]
    fn raw_flag() {
        assert!(DataType::RawFrame(SensorModality::Lidar).is_raw());
        assert!(!DataType::OccupancyGrid.is_raw());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            DataType::RawFrame(SensorModality::Camera).to_string(),
            "raw-camera"
        );
        assert_eq!(DataType::FusedPerception.to_string(), "fused-perception");
    }

    #[test]
    fn default_query_is_permissive() {
        let q = DataQuery::of_type(DataType::DetectionList);
        assert_eq!(q.data_type, DataType::DetectionList);
        assert_eq!(q.requirement, QualityRequirement::default());
    }
}
