//! # airdnd-data — Model 3: the Data Description
//!
//! The paper's Model 3 "describes the type and the quality of data that
//! shall be required by the exchanged compute task". In AirDnD the *data
//! stays where it was generated*; what travels is a description rich enough
//! for the orchestrator to decide **which node's data can satisfy a task**
//! without moving a byte of it. This crate defines that description:
//!
//! * [`schema`] — what a piece of data *is* (raw frames, detection lists,
//!   occupancy grids, …) with realistic sizes, because size asymmetry
//!   between raw data and computed results is the heart of the paper's
//!   data-minimization claim,
//! * [`quality`] — freshness, confidence, resolution, spatial coverage and
//!   noise descriptors, plus graded requirement matching (RQ1's "data
//!   quality" selection criterion),
//! * [`catalog`] — the per-node inventory of data items and the compact
//!   summaries beaconed into the mesh,
//! * [`matching`] — query-against-catalog scoring used by node selection,
//! * [`semantic`] — capability-taxonomy matching between heterogeneous
//!   systems (the research plan's Goal 3, implemented as an extension).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod matching;
pub mod quality;
pub mod schema;
pub mod semantic;

pub use catalog::{CatalogSummary, DataCatalog, DataItem, DataItemId};
pub use matching::{best_match, match_score};
pub use quality::{QualityDescriptor, QualityRequirement};
pub use schema::{DataQuery, DataType, SensorModality};
