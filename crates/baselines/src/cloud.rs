//! The cellular cloud-offload baseline: what AirDnD argues against.
//!
//! A vehicle that wants remote perception without a mesh must ship its
//! *raw sensor data* over the shared cellular uplink to a cloud region,
//! wait for cloud compute, and download the result. The cloud is fast and
//! always has capacity; the cost lives in the uplink serialization of
//! megabyte frames and the core-network round trip — exactly the traffic
//! the paper wants 5G to stop carrying.

use airdnd_radio::{CellularLink, CellularParams};
use airdnd_sim::{SimDuration, SimTime};

/// One shared cloud path (cell + region).
#[derive(Clone, Debug)]
pub struct CloudOffload {
    link: CellularLink,
    cloud_gas_rate: u64,
    tasks_served: u64,
}

impl CloudOffload {
    /// Creates the baseline with the given cellular profile and cloud
    /// execution speed (gas/s). The cloud is typically 10–100× faster than
    /// a vehicle ECU.
    ///
    /// # Panics
    ///
    /// Panics if `cloud_gas_rate` is zero.
    pub fn new(params: CellularParams, cloud_gas_rate: u64) -> Self {
        assert!(cloud_gas_rate > 0, "cloud must be able to compute");
        CloudOffload {
            link: CellularLink::new(params),
            cloud_gas_rate,
            tasks_served: 0,
        }
    }

    /// An LTE cloud with a 100 M gas/s region.
    pub fn lte() -> Self {
        CloudOffload::new(CellularParams::lte(), 100_000_000)
    }

    /// A 5G cloud with a 100 M gas/s region.
    pub fn fiveg() -> Self {
        CloudOffload::new(CellularParams::fiveg(), 100_000_000)
    }

    /// Total bytes the cellular path has carried.
    pub fn bytes_total(&self) -> u64 {
        self.link.bytes_total()
    }

    /// Tasks served so far.
    pub fn tasks_served(&self) -> u64 {
        self.tasks_served
    }

    /// Runs one offload: upload `raw_input_bytes`, compute `gas`, download
    /// `result_bytes`. Returns `(completion_time, wire_bytes)`.
    ///
    /// Concurrent calls queue on the shared uplink — twenty vehicles
    /// pushing camera frames contend exactly like real cells do.
    pub fn offload(
        &mut self,
        now: SimTime,
        raw_input_bytes: u64,
        gas: u64,
        result_bytes: u64,
    ) -> (SimTime, u64) {
        let compute = SimDuration::from_secs_f64(gas as f64 / self.cloud_gas_rate as f64);
        self.tasks_served += 1;
        self.link
            .round_trip(now, raw_input_bytes, compute, result_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_offload_latency_decomposes() {
        let mut cloud = CloudOffload::fiveg();
        // 2 MB raw frame up, tiny result down, 1 M gas at 100 M gas/s.
        let (done, bytes) = cloud.offload(SimTime::ZERO, 2_000_000, 1_000_000, 2_000);
        // Lower bound: 2 × 12 ms latency + 2 MB / 400 Mbps = 40 ms + 24 ms.
        assert!(done > SimTime::from_millis(60), "got {done}");
        assert!(done < SimTime::from_millis(200), "got {done}");
        assert!(bytes > 2_000_000);
        assert_eq!(cloud.tasks_served(), 1);
    }

    #[test]
    fn uplink_contention_stretches_the_tail() {
        let mut cloud = CloudOffload::lte();
        // Ten vehicles push 7.5 MB frames at the same instant; at 75 Mbps
        // the tenth waits ~8 s of serialization.
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let (done, _) = cloud.offload(SimTime::ZERO, 7_500_000, 1_000_000, 2_000);
            assert!(done >= last, "completions are FIFO on the uplink");
            last = done;
        }
        assert!(
            last > SimTime::from_secs(7),
            "tail latency under contention, got {last}"
        );
    }

    #[test]
    fn raw_bytes_dominate_accounting() {
        let mut cloud = CloudOffload::fiveg();
        cloud.offload(SimTime::ZERO, 2_000_000, 1_000_000, 2_000);
        assert!(cloud.bytes_total() > 2_000_000, "raw frame dominates");
    }

    #[test]
    fn fiveg_beats_lte_for_the_same_offload() {
        let mut lte = CloudOffload::lte();
        let mut fiveg = CloudOffload::fiveg();
        let (a, _) = lte.offload(SimTime::ZERO, 2_000_000, 1_000_000, 2_000);
        let (b, _) = fiveg.offload(SimTime::ZERO, 2_000_000, 1_000_000, 2_000);
        assert!(b < a);
    }
}
