//! Local-only execution and raw-data V2V sharing.
//!
//! Two more comparison points bracket AirDnD:
//!
//! * [`LocalOnly`] — never cooperate: compute everything on the ego
//!   vehicle with only its own data (fast, private, but blind around
//!   corners);
//! * [`raw_sharing_completion`] — cooperate the naive way: pull the raw
//!   sensor data over V2V and compute locally. Same mesh, same radio, but
//!   megabytes instead of kilobytes on the air — the contrast behind the
//!   paper's data-minimization claim (experiment F2).

use airdnd_radio::{DeliveryOutcome, NodeAddr, RadioMedium};
use airdnd_sim::{SimDuration, SimTime};

/// Never-offload execution model.
#[derive(Clone, Copy, Debug)]
pub struct LocalOnly {
    gas_rate: u64,
    busy_until: SimTime,
}

impl LocalOnly {
    /// Creates the model with the ego vehicle's execution speed.
    ///
    /// # Panics
    ///
    /// Panics if `gas_rate` is zero.
    pub fn new(gas_rate: u64) -> Self {
        assert!(gas_rate > 0, "local execution needs a positive gas rate");
        LocalOnly {
            gas_rate,
            busy_until: SimTime::ZERO,
        }
    }

    /// Runs a task of `gas` locally; returns its completion time.
    /// Sequential tasks queue on the single local executor.
    pub fn run(&mut self, now: SimTime, gas: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let finish = start + SimDuration::from_secs_f64(gas as f64 / self.gas_rate as f64);
        self.busy_until = finish;
        finish
    }
}

/// Naive V2V cooperation: fetch the raw data, then compute locally.
///
/// Models a request frame to `holder`, the bulk transfer of
/// `raw_bytes` back over the shared medium (fragmented into
/// `fragment_bytes` frames), and local execution of `gas`. Returns
/// `(completion_time, wire_bytes)` or `None` if any fragment is lost
/// beyond the MAC's retries.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields one-to-one
pub fn raw_sharing_completion(
    medium: &mut RadioMedium,
    local: &mut LocalOnly,
    now: SimTime,
    requester: NodeAddr,
    holder: NodeAddr,
    raw_bytes: u64,
    fragment_bytes: u64,
    gas: u64,
) -> Option<(SimTime, u64)> {
    let fragment = fragment_bytes.max(1);
    // Request frame.
    let (outcome, request_report) = medium.unicast(now, requester, holder, 64);
    let mut cursor = outcome.delivered_at()?;
    let mut wire_bytes = request_report.bytes_on_air;
    // Bulk transfer, fragment by fragment.
    let mut remaining = raw_bytes;
    while remaining > 0 {
        let this = remaining.min(fragment);
        let (outcome, report) = medium.unicast(cursor, holder, requester, this);
        wire_bytes += report.bytes_on_air;
        match outcome {
            DeliveryOutcome::Delivered { at, .. } => cursor = at,
            _ => return None,
        }
        remaining -= this;
    }
    // Local compute once the data is in.
    let finish = local.run(cursor, gas);
    Some((finish, wire_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_geo::{Vec2, World};
    use airdnd_sim::SimRng;

    #[test]
    fn local_only_queues_sequentially() {
        let mut local = LocalOnly::new(1_000_000);
        let a = local.run(SimTime::ZERO, 500_000);
        let b = local.run(SimTime::ZERO, 500_000);
        assert_eq!(a, SimTime::from_millis(500));
        assert_eq!(b, SimTime::from_secs(1));
        // Idle gaps are not charged.
        let c = local.run(SimTime::from_secs(10), 1_000_000);
        assert_eq!(c, SimTime::from_secs(11));
    }

    #[test]
    fn raw_sharing_costs_dwarf_the_payload() {
        let mut medium = RadioMedium::v2v(World::new(), SimRng::seed_from(1));
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        medium.set_position(a, Vec2::ZERO);
        medium.set_position(b, Vec2::new(30.0, 0.0));
        let mut local = LocalOnly::new(1_000_000);
        let raw = 500_000; // a modest lidar slice
        let (done, wire) = raw_sharing_completion(
            &mut medium,
            &mut local,
            SimTime::ZERO,
            a,
            b,
            raw,
            1_400,
            100_000,
        )
        .expect("30 m link should survive");
        assert!(wire > raw, "headers inflate the wire cost");
        // 500 kB at 6 Mbps is ~0.67 s of airtime alone.
        assert!(done > SimTime::from_millis(600), "got {done}");
    }

    #[test]
    fn raw_sharing_fails_on_dead_links() {
        let mut medium = RadioMedium::v2v(World::new(), SimRng::seed_from(2));
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        medium.set_position(a, Vec2::ZERO);
        medium.set_position(b, Vec2::new(50_000.0, 0.0));
        let mut local = LocalOnly::new(1_000_000);
        let result = raw_sharing_completion(
            &mut medium,
            &mut local,
            SimTime::ZERO,
            a,
            b,
            10_000,
            1_400,
            1_000,
        );
        assert!(result.is_none());
    }

    #[test]
    #[should_panic(expected = "positive gas rate")]
    fn zero_rate_panics() {
        let _ = LocalOnly::new(0);
    }
}
