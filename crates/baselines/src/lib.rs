//! # airdnd-baselines — comparators for the AirDnD orchestrator
//!
//! The paper positions AirDnD against the allocation mechanisms of its
//! related work; this crate implements them behind one [`Assigner`]
//! interface so experiment T6 can swap mechanisms under an identical
//! workload:
//!
//! * [`ScoreAssigner`] — AirDnD's own multi-criteria selection (reference),
//! * [`RandomAssigner`] / [`GreedyComputeAssigner`] — naive strawmen,
//! * [`auction`] — a McAfee-style truthful double auction in the spirit of
//!   DeCloud \[7\] and the coded-VEC auction \[9\] (single-task reverse
//!   form and full batch form),
//! * [`SmartContractAssigner`] — decentralized allocation through a
//!   blockchain, charged a block-interval consensus delay \[8\],
//! * [`CodedAssigner`] — `(k, m)` coded redundancy: offload to `k`, done
//!   after any `m` results \[9\],
//! * [`SyncRoundAssigner`] — the synchronous-round ablation of AirDnD's
//!   asynchrony (experiment F12),
//! * [`cloud`] — the cellular cloud-offload pipeline the paper argues
//!   against (experiments F2/F3),
//! * [`local`] — local-only execution and raw-data V2V sharing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assigner;
pub mod auction;
pub mod cloud;
pub mod local;

pub use assigner::{
    Assigner, Assignment, CandidateInfo, CodedAssigner, GreedyComputeAssigner, RandomAssigner,
    ScoreAssigner, SmartContractAssigner, SyncRoundAssigner,
};
pub use auction::{mcafee_double_auction, AuctionOutcome, DoubleAuctionAssigner};
pub use cloud::CloudOffload;
pub use local::{raw_sharing_completion, LocalOnly};
