//! Truthful double auctions for edge resource allocation.
//!
//! DeCloud \[7\] and the coded-VEC mechanism \[9\] allocate edge resources
//! through double auctions. This module implements the McAfee (1992)
//! mechanism — truthful for both sides — in full batch form
//! ([`mcafee_double_auction`]), plus the per-task reverse (single-buyer
//! Vickrey) degenerate used by [`DoubleAuctionAssigner`] when tasks arrive
//! one at a time.

use crate::assigner::{feasible_for_auction, Assigner, Assignment, CandidateInfo};
use airdnd_sim::{SimDuration, SimTime};
use airdnd_task::{Priority, TaskSpec};
use serde::{Deserialize, Serialize};

/// Result of a batch double auction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuctionOutcome {
    /// Matched `(buyer, seller)` pairs.
    pub matches: Vec<(u64, u64)>,
    /// The uniform clearing price paid by buyers to sellers.
    pub clearing_price: f64,
}

/// McAfee's truthful double auction.
///
/// Buyers bid what a unit of compute is worth to them; sellers ask what it
/// costs them. Sort bids descending and asks ascending; find the largest
/// `k` with `bid_k ≥ ask_k`; trade the first `k − 1` pairs at price
/// `p = (bid_k + ask_k) / 2` (the marginal pair is excluded to buy
/// truthfulness). Returns `None` when no trade is possible.
///
/// Ties and pair identity are deterministic: equal prices order by id.
pub fn mcafee_double_auction(bids: &[(u64, f64)], asks: &[(u64, f64)]) -> Option<AuctionOutcome> {
    let mut bids: Vec<(u64, f64)> = bids
        .iter()
        .copied()
        .filter(|(_, p)| p.is_finite())
        .collect();
    let mut asks: Vec<(u64, f64)> = asks
        .iter()
        .copied()
        .filter(|(_, p)| p.is_finite())
        .collect();
    if bids.is_empty() || asks.is_empty() {
        return None;
    }
    bids.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    asks.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    let max_pairs = bids.len().min(asks.len());
    let mut k = 0;
    while k < max_pairs && bids[k].1 >= asks[k].1 {
        k += 1;
    }
    if k == 0 {
        return None;
    }
    if k == 1 {
        // No marginal pair to price off; trade at the midpoint of the only
        // feasible pair (loses strict truthfulness, standard fallback).
        let price = (bids[0].1 + asks[0].1) / 2.0;
        return Some(AuctionOutcome {
            matches: vec![(bids[0].0, asks[0].0)],
            clearing_price: price,
        });
    }
    let price = (bids[k - 1].1 + asks[k - 1].1) / 2.0;
    // McAfee: if the price is individually rational for the (k−1) pairs,
    // trade k−1 of them at that price; otherwise trade k−1 at bid/ask of
    // the marginal pair. The common simplification trades k−1 pairs at p.
    let trades = k - 1;
    let matches = (0..trades).map(|i| (bids[i].0, asks[i].0)).collect();
    Some(AuctionOutcome {
        matches,
        clearing_price: price,
    })
}

/// Per-task reverse auction (single buyer): every feasible candidate asks
/// a load-dependent price; the cheapest wins and is paid the second-lowest
/// ask (Vickrey, truthful).
#[derive(Clone, Copy, Debug)]
pub struct DoubleAuctionAssigner {
    /// One-way control-message latency per auction round.
    pub round_latency: SimDuration,
    /// Base ask price of an idle node (arbitrary currency units).
    pub base_price: f64,
    /// Buyer valuation per unit priority.
    pub valuation: f64,
}

impl Default for DoubleAuctionAssigner {
    /// 30 ms rounds, base price 1.0, valuation 10.0 per priority step.
    fn default() -> Self {
        DoubleAuctionAssigner {
            round_latency: SimDuration::from_millis(30),
            base_price: 1.0,
            valuation: 10.0,
        }
    }
}

impl DoubleAuctionAssigner {
    /// A seller's (truthful) ask: cost grows with queued work.
    pub fn ask_price(&self, candidate: &CandidateInfo, gas: u64) -> f64 {
        self.base_price * (1.0 + candidate.eta_secs(gas))
    }

    /// The buyer's valuation for a task (priority-scaled).
    pub fn bid_price(&self, task: &TaskSpec) -> f64 {
        let factor = match task.priority {
            Priority::Low => 1.0,
            Priority::Normal => 2.0,
            Priority::High => 3.0,
            Priority::Critical => 4.0,
        };
        self.valuation * factor
    }
}

impl Assigner for DoubleAuctionAssigner {
    fn name(&self) -> &'static str {
        "double-auction"
    }

    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        _now: SimTime,
    ) -> Option<Assignment> {
        let bid = self.bid_price(task);
        let mut asks: Vec<(&CandidateInfo, f64)> = feasible_for_auction(candidates)
            .map(|c| (c, self.ask_price(c, task.requirements.gas)))
            .filter(|(_, ask)| *ask <= bid)
            .collect();
        if asks.is_empty() {
            return None;
        }
        asks.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite")
                .then(a.0.addr.cmp(&b.0.addr))
        });
        let winner = asks[0].0;
        let price = if asks.len() > 1 { asks[1].1 } else { bid };
        Some(Assignment {
            executors: vec![winner.addr],
            min_results: 1,
            // Ask collection + award: two message rounds.
            decision_latency: self.round_latency * 2,
            control_messages: candidates.len() as u64 + 1,
            price: Some(price),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_radio::NodeAddr;
    use airdnd_task::{Program, ResourceRequirements, TaskId};

    fn candidate(id: u64, gas_rate: u64, backlog: u64) -> CandidateInfo {
        CandidateInfo {
            addr: NodeAddr::new(id),
            gas_rate,
            gas_backlog: backlog,
            link_quality: 0.9,
            has_data: true,
            trust: 0.5,
        }
    }

    fn task(priority: Priority) -> TaskSpec {
        TaskSpec::new(
            TaskId::new(1),
            "t",
            Program::new(vec![airdnd_task::Instr::Halt], 0),
        )
        .with_requirements(ResourceRequirements {
            gas: 1_000_000,
            ..Default::default()
        })
        .with_priority(priority)
    }

    #[test]
    fn mcafee_basic_trade() {
        // bids: 10, 8, 3; asks: 2, 4, 9 → k = 2 (8 ≥ 4), trade 1 pair.
        let out = mcafee_double_auction(
            &[(1, 10.0), (2, 8.0), (3, 3.0)],
            &[(10, 2.0), (11, 4.0), (12, 9.0)],
        )
        .unwrap();
        assert_eq!(out.matches, vec![(1, 10)]);
        assert!((out.clearing_price - 6.0).abs() < 1e-12, "(8+4)/2");
    }

    #[test]
    fn mcafee_no_overlap_is_none() {
        assert!(mcafee_double_auction(&[(1, 1.0)], &[(2, 5.0)]).is_none());
        assert!(mcafee_double_auction(&[], &[(2, 5.0)]).is_none());
        assert!(mcafee_double_auction(&[(1, 1.0)], &[]).is_none());
    }

    #[test]
    fn mcafee_single_pair_midpoint_fallback() {
        let out = mcafee_double_auction(&[(1, 10.0)], &[(2, 4.0)]).unwrap();
        assert_eq!(out.matches, vec![(1, 2)]);
        assert!((out.clearing_price - 7.0).abs() < 1e-12);
    }

    #[test]
    fn mcafee_price_is_individually_rational_for_traders() {
        let bids = [(1u64, 9.0), (2, 7.0), (3, 5.0), (4, 2.0)];
        let asks = [(10u64, 1.0), (11, 3.0), (12, 6.0), (13, 8.0)];
        let out = mcafee_double_auction(&bids, &asks).unwrap();
        // k = 3 (5 ≥ ... check: pair0 9≥1, pair1 7≥3, pair2 5<6 → k=2),
        // so one trade at (7+3)/2 = 5.
        assert_eq!(out.matches.len(), 1);
        let p = out.clearing_price;
        for &(buyer, seller) in &out.matches {
            let bid = bids.iter().find(|(b, _)| *b == buyer).unwrap().1;
            let ask = asks.iter().find(|(s, _)| *s == seller).unwrap().1;
            assert!(
                bid >= p && p >= ask,
                "price {p} must sit between {bid} and {ask}"
            );
        }
    }

    #[test]
    fn mcafee_truthfulness_spot_check() {
        // A trading buyer cannot improve the price it pays by shading its
        // bid: the price depends on the marginal (excluded) pair.
        let asks = [(10u64, 1.0), (11, 3.0), (12, 6.0)];
        let honest = mcafee_double_auction(&[(1, 9.0), (2, 7.0), (3, 5.0)], &asks).unwrap();
        let shaded = mcafee_double_auction(&[(1, 7.5), (2, 7.0), (3, 5.0)], &asks).unwrap();
        assert!(honest.matches.iter().any(|&(b, _)| b == 1));
        assert!(shaded.matches.iter().any(|&(b, _)| b == 1));
        assert_eq!(honest.clearing_price, shaded.clearing_price);
    }

    #[test]
    fn reverse_auction_picks_cheapest_pays_second_price() {
        let mut auction = DoubleAuctionAssigner::default();
        let cands = [
            candidate(1, 1_000_000, 0),         // eta 1 s  → ask 2.0
            candidate(2, 1_000_000, 2_000_000), // eta 3 s  → ask 4.0
        ];
        let a = auction
            .assign(&task(Priority::Normal), &cands, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.executors, vec![NodeAddr::new(1)]);
        assert!((a.price.unwrap() - 4.0).abs() < 1e-12, "second price");
        assert_eq!(a.decision_latency, SimDuration::from_millis(60));
        assert_eq!(a.control_messages, 3);
    }

    #[test]
    fn low_priority_task_cannot_afford_busy_sellers() {
        let mut auction = DoubleAuctionAssigner {
            valuation: 2.0,
            ..Default::default()
        };
        // Ask = 1 + eta; eta = 30 s → ask 31 ≫ bid 2 (low = ×1).
        let busy = [candidate(1, 1_000_000, 29_000_000)];
        assert!(auction
            .assign(&task(Priority::Low), &busy, SimTime::ZERO)
            .is_none());
        // A critical task (bid 8) still cannot afford it; an idle seller is fine.
        let idle = [candidate(2, 1_000_000, 0)];
        assert!(auction
            .assign(&task(Priority::Low), &idle, SimTime::ZERO)
            .is_some());
    }
}
