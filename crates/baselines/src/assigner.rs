//! The common assignment interface and the non-market mechanisms.
//!
//! An [`Assigner`] answers one question — *which in-range node(s) should
//! run this task, and what does deciding cost?* — so that experiment T6
//! can hold the workload, radio and executors constant while swapping the
//! allocation mechanism.

use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimRng, SimTime};
use airdnd_task::TaskSpec;
use serde::{Deserialize, Serialize};

/// Mechanism-agnostic view of one candidate executor (derived from the
/// Model-1 mesh descriptor).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateInfo {
    /// Candidate address.
    pub addr: NodeAddr,
    /// Execution speed, gas/s.
    pub gas_rate: u64,
    /// Queued gas.
    pub gas_backlog: u64,
    /// Link quality `[0, 1]`.
    pub link_quality: f64,
    /// Whether the advertised catalog plausibly satisfies the task inputs.
    pub has_data: bool,
    /// Reputation score `[0, 1]`.
    pub trust: f64,
}

impl CandidateInfo {
    /// Estimated completion seconds for `gas` on this candidate.
    pub fn eta_secs(&self, gas: u64) -> f64 {
        if self.gas_rate == 0 {
            return f64::INFINITY;
        }
        (self.gas_backlog + gas) as f64 / self.gas_rate as f64
    }
}

/// The outcome of an assignment decision.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// Chosen executors, best first.
    pub executors: Vec<NodeAddr>,
    /// Results required before the task completes (≤ `executors.len()`;
    /// `executors.len()` for plain redundancy, `m` for coded schemes).
    pub min_results: usize,
    /// Protocol delay before the first offer can leave the node.
    pub decision_latency: SimDuration,
    /// Control-plane messages the mechanism exchanged to decide.
    pub control_messages: u64,
    /// Clearing price, for market mechanisms.
    pub price: Option<f64>,
}

impl Assignment {
    /// A direct single-executor assignment with zero overhead.
    pub fn direct(executor: NodeAddr) -> Self {
        Assignment {
            executors: vec![executor],
            min_results: 1,
            decision_latency: SimDuration::ZERO,
            control_messages: 0,
            price: None,
        }
    }
}

/// An allocation mechanism. Returns `None` when no candidate is feasible.
pub trait Assigner {
    /// Mechanism name for experiment tables.
    fn name(&self) -> &'static str;

    /// Decides executor(s) for `task` among `candidates` at `now`.
    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        now: SimTime,
    ) -> Option<Assignment>;
}

fn feasible(candidates: &[CandidateInfo]) -> impl Iterator<Item = &CandidateInfo> {
    candidates.iter().filter(|c| c.has_data && c.gas_rate > 0)
}

/// Shared feasibility filter for the auction module.
pub(crate) fn feasible_for_auction(
    candidates: &[CandidateInfo],
) -> impl Iterator<Item = &CandidateInfo> {
    feasible(candidates)
}

/// AirDnD's multi-criteria selection, reduced to the mechanism-agnostic
/// candidate view (the full-featured version lives in `airdnd-core`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScoreAssigner;

impl Assigner for ScoreAssigner {
    fn name(&self) -> &'static str {
        "airdnd"
    }

    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        _now: SimTime,
    ) -> Option<Assignment> {
        let deadline = task.requirements.deadline.as_secs_f64().max(1e-3);
        let best = feasible(candidates).max_by(|a, b| {
            let score = |c: &CandidateInfo| {
                let compute = (1.0 - c.eta_secs(task.requirements.gas) / deadline).clamp(0.0, 1.0);
                compute + c.link_quality + c.trust
            };
            score(a)
                .partial_cmp(&score(b))
                .expect("finite")
                .then(b.addr.cmp(&a.addr))
        })?;
        Some(Assignment::direct(best.addr))
    }
}

/// Uniform random choice among feasible candidates.
#[derive(Clone, Debug)]
pub struct RandomAssigner {
    rng: SimRng,
}

impl RandomAssigner {
    /// Creates the assigner with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        RandomAssigner { rng }
    }
}

impl Assigner for RandomAssigner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(
        &mut self,
        _task: &TaskSpec,
        candidates: &[CandidateInfo],
        _now: SimTime,
    ) -> Option<Assignment> {
        let pool: Vec<&CandidateInfo> = feasible(candidates).collect();
        let idx = self.rng.index(pool.len())?;
        Some(Assignment::direct(pool[idx].addr))
    }
}

/// Always the lowest-ETA candidate, ignoring links and trust.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyComputeAssigner;

impl Assigner for GreedyComputeAssigner {
    fn name(&self) -> &'static str {
        "greedy-compute"
    }

    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        _now: SimTime,
    ) -> Option<Assignment> {
        let best = feasible(candidates).min_by(|a, b| {
            a.eta_secs(task.requirements.gas)
                .partial_cmp(&b.eta_secs(task.requirements.gas))
                .expect("finite")
                .then(a.addr.cmp(&b.addr))
        })?;
        Some(Assignment::direct(best.addr))
    }
}

/// Smart-contract allocation (Xu et al. \[8\]): a greedy match whose
/// decision is only final after a consensus round, modelled as the chain's
/// block interval plus per-candidate transaction gossip.
#[derive(Clone, Copy, Debug)]
pub struct SmartContractAssigner {
    /// Block interval of the chain.
    pub block_interval: SimDuration,
}

impl Default for SmartContractAssigner {
    /// A 2-second block interval (permissioned-chain scale).
    fn default() -> Self {
        SmartContractAssigner {
            block_interval: SimDuration::from_secs(2),
        }
    }
}

impl Assigner for SmartContractAssigner {
    fn name(&self) -> &'static str {
        "smart-contract"
    }

    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        now: SimTime,
    ) -> Option<Assignment> {
        let mut inner = GreedyComputeAssigner;
        let mut assignment = inner.assign(task, candidates, now)?;
        assignment.decision_latency = self.block_interval;
        // Bid transactions from every feasible candidate + the award tx.
        assignment.control_messages = feasible(candidates).count() as u64 + 1;
        Some(assignment)
    }
}

/// `(k, m)` coded offloading (Ng et al. \[9\]): send to `k` executors,
/// complete on any `m` results — trades radio and compute for tail
/// latency and stragglers.
#[derive(Clone, Copy, Debug)]
pub struct CodedAssigner {
    /// Executors to engage.
    pub k: usize,
    /// Results required.
    pub m: usize,
}

impl CodedAssigner {
    /// Creates a `(k, m)` coded assigner.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ m ≤ k`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= k, "need 1 ≤ m ≤ k");
        CodedAssigner { k, m }
    }
}

impl Assigner for CodedAssigner {
    fn name(&self) -> &'static str {
        "coded-vec"
    }

    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        _now: SimTime,
    ) -> Option<Assignment> {
        let mut pool: Vec<&CandidateInfo> = feasible(candidates).collect();
        if pool.len() < self.m {
            return None;
        }
        pool.sort_by(|a, b| {
            a.eta_secs(task.requirements.gas)
                .partial_cmp(&b.eta_secs(task.requirements.gas))
                .expect("finite")
                .then(a.addr.cmp(&b.addr))
        });
        let executors: Vec<NodeAddr> = pool.iter().take(self.k).map(|c| c.addr).collect();
        let min_results = self.m.min(executors.len());
        Some(Assignment {
            executors,
            min_results,
            decision_latency: SimDuration::ZERO,
            control_messages: 0,
            price: None,
        })
    }
}

/// The asynchrony ablation: identical selection to [`ScoreAssigner`], but
/// decisions only leave the node at fixed round boundaries.
#[derive(Clone, Copy, Debug)]
pub struct SyncRoundAssigner {
    /// Round period.
    pub period: SimDuration,
}

impl SyncRoundAssigner {
    /// Creates the assigner with the given round period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "round period must be positive");
        SyncRoundAssigner { period }
    }

    /// Delay from `now` to the next round boundary.
    pub fn wait_until_round(&self, now: SimTime) -> SimDuration {
        let period = self.period.as_nanos();
        let phase = now.as_nanos() % period;
        if phase == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(period - phase)
        }
    }
}

impl Assigner for SyncRoundAssigner {
    fn name(&self) -> &'static str {
        "sync-round"
    }

    fn assign(
        &mut self,
        task: &TaskSpec,
        candidates: &[CandidateInfo],
        now: SimTime,
    ) -> Option<Assignment> {
        let mut assignment = ScoreAssigner.assign(task, candidates, now)?;
        assignment.decision_latency = self.wait_until_round(now);
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_task::{Program, ResourceRequirements, TaskId};

    fn candidate(id: u64, gas_rate: u64, backlog: u64, link: f64, trust: f64) -> CandidateInfo {
        CandidateInfo {
            addr: NodeAddr::new(id),
            gas_rate,
            gas_backlog: backlog,
            link_quality: link,
            has_data: true,
            trust,
        }
    }

    fn task() -> TaskSpec {
        TaskSpec::new(
            TaskId::new(1),
            "t",
            Program::new(vec![airdnd_task::Instr::Halt], 0),
        )
        .with_requirements(ResourceRequirements {
            gas: 1_000_000,
            deadline: SimDuration::from_secs(2),
            ..Default::default()
        })
    }

    #[test]
    fn eta_combines_backlog_and_task() {
        let c = candidate(1, 1_000_000, 500_000, 1.0, 0.5);
        assert!((c.eta_secs(1_000_000) - 1.5).abs() < 1e-12);
        let dead = CandidateInfo { gas_rate: 0, ..c };
        assert!(dead.eta_secs(1).is_infinite());
    }

    #[test]
    fn score_assigner_balances_criteria() {
        // Candidate 1: fast, bad link+trust. Candidate 2: decent all round.
        let cands = [
            candidate(1, 10_000_000, 0, 0.1, 0.1),
            candidate(2, 2_000_000, 0, 0.9, 0.9),
        ];
        let a = ScoreAssigner
            .assign(&task(), &cands, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.executors, vec![NodeAddr::new(2)]);
        assert_eq!(a.decision_latency, SimDuration::ZERO);
    }

    #[test]
    fn dataless_candidates_are_never_chosen() {
        let mut no_data = candidate(1, 10_000_000, 0, 1.0, 1.0);
        no_data.has_data = false;
        assert!(ScoreAssigner
            .assign(&task(), &[no_data], SimTime::ZERO)
            .is_none());
        assert!(GreedyComputeAssigner
            .assign(&task(), &[no_data], SimTime::ZERO)
            .is_none());
        let mut random = RandomAssigner::new(SimRng::seed_from(1));
        assert!(random.assign(&task(), &[no_data], SimTime::ZERO).is_none());
    }

    #[test]
    fn greedy_picks_lowest_eta() {
        let cands = [
            candidate(1, 1_000_000, 5_000_000, 1.0, 1.0), // 6 s
            candidate(2, 1_000_000, 0, 0.1, 0.1),         // 1 s
        ];
        let a = GreedyComputeAssigner
            .assign(&task(), &cands, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.executors, vec![NodeAddr::new(2)]);
    }

    #[test]
    fn random_is_seed_deterministic_and_covers_pool() {
        let cands: Vec<CandidateInfo> = (1..=4)
            .map(|i| candidate(i, 1_000_000, 0, 0.5, 0.5))
            .collect();
        let run = |seed| {
            let mut r = RandomAssigner::new(SimRng::seed_from(seed));
            (0..50)
                .map(|_| r.assign(&task(), &cands, SimTime::ZERO).unwrap().executors[0].raw())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        let picks = run(3);
        for id in 1..=4u64 {
            assert!(picks.contains(&id), "node {id} never picked");
        }
    }

    #[test]
    fn smart_contract_charges_block_interval() {
        let cands = [
            candidate(1, 1_000_000, 0, 0.5, 0.5),
            candidate(2, 1_000_000, 0, 0.5, 0.5),
        ];
        let mut sc = SmartContractAssigner::default();
        let a = sc.assign(&task(), &cands, SimTime::ZERO).unwrap();
        assert_eq!(a.decision_latency, SimDuration::from_secs(2));
        assert_eq!(a.control_messages, 3, "2 bids + 1 award");
    }

    #[test]
    fn coded_engages_k_completes_on_m() {
        let cands: Vec<CandidateInfo> = (1..=5)
            .map(|i| candidate(i, i * 1_000_000, 0, 0.5, 0.5))
            .collect();
        let mut coded = CodedAssigner::new(3, 2);
        let a = coded.assign(&task(), &cands, SimTime::ZERO).unwrap();
        assert_eq!(a.executors.len(), 3);
        assert_eq!(a.min_results, 2);
        // Fastest first: highest gas rates.
        assert_eq!(a.executors[0], NodeAddr::new(5));
    }

    #[test]
    fn coded_needs_at_least_m_candidates() {
        let cands = [candidate(1, 1_000_000, 0, 0.5, 0.5)];
        let mut coded = CodedAssigner::new(3, 2);
        assert!(coded.assign(&task(), &cands, SimTime::ZERO).is_none());
        // k larger than the pool degrades gracefully to the pool size.
        let cands: Vec<CandidateInfo> = (1..=2)
            .map(|i| candidate(i, 1_000_000, 0, 0.5, 0.5))
            .collect();
        let a = coded.assign(&task(), &cands, SimTime::ZERO).unwrap();
        assert_eq!(a.executors.len(), 2);
        assert_eq!(a.min_results, 2);
    }

    #[test]
    fn sync_round_waits_for_the_boundary() {
        let assigner = SyncRoundAssigner::new(SimDuration::from_millis(500));
        assert_eq!(assigner.wait_until_round(SimTime::ZERO), SimDuration::ZERO);
        assert_eq!(
            assigner.wait_until_round(SimTime::from_millis(200)),
            SimDuration::from_millis(300)
        );
        assert_eq!(
            assigner.wait_until_round(SimTime::from_millis(500)),
            SimDuration::ZERO
        );
        let cands = [candidate(1, 1_000_000, 0, 0.5, 0.5)];
        let mut a = SyncRoundAssigner::new(SimDuration::from_millis(500));
        let assignment = a
            .assign(&task(), &cands, SimTime::from_millis(321))
            .unwrap();
        assert_eq!(assignment.decision_latency, SimDuration::from_millis(179));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            ScoreAssigner.name(),
            GreedyComputeAssigner.name(),
            RandomAssigner::new(SimRng::seed_from(0)).name(),
            SmartContractAssigner::default().name(),
            CodedAssigner::new(2, 1).name(),
            SyncRoundAssigner::new(SimDuration::from_secs(1)).name(),
        ];
        let unique: std::collections::BTreeSet<&str> = names.into_iter().collect();
        assert_eq!(unique.len(), 6);
    }
}
