//! # airdnd-mesh — Model 1: the Network Description
//!
//! The paper's Model 1 describes "the spontaneously forming and dissolving
//! dynamic mesh network". This crate implements that lifecycle as a
//! **sans-IO state machine** ([`MeshNode`]): it consumes timer ticks and
//! received messages, and emits [`MeshAction`]s (frames to broadcast or
//! unicast, membership notifications). The caller — an engine actor in the
//! simulations, conceivably a real network stack elsewhere — owns all IO,
//! which keeps the protocol testable in isolation.
//!
//! The protocol itself:
//!
//! * **Beaconing** ([`beacon`]) — every node periodically broadcasts its
//!   position, velocity, compute advertisement and data-catalog summary.
//! * **Neighbor tracking** ([`neighbor`]) — beacon reception feeds a
//!   per-neighbor link-quality EWMA; sequence gaps count as losses.
//! * **Membership** ([`membership`]) — a join handshake establishes
//!   lease-based membership; leases renew implicitly through beacons and
//!   expire silently, so the mesh *dissolves* without any teardown protocol
//!   when vehicles drive apart (the paper's "spontaneous dissolution").
//! * **Description** ([`descriptor`]) — a [`MeshDescriptor`] snapshot is the
//!   Model-1 artefact the orchestrator consumes: members, their adverts,
//!   link qualities, staleness and churn estimates.
//! * **Relay** ([`routing`]) — 2-hop next-hop selection through the
//!   best-linked common neighbor when a direct link is poor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod descriptor;
pub mod membership;
pub mod neighbor;
pub mod routing;

pub use beacon::{Beacon, NodeAdvert};
pub use descriptor::{MemberDescriptor, MeshDescriptor};
pub use membership::{MeshAction, MeshConfig, MeshMsg, MeshNode};
pub use neighbor::{NeighborEntry, NeighborTable};
pub use routing::next_hop;
