//! The mesh membership state machine: spontaneous formation & dissolution.
//!
//! [`MeshNode`] is sans-IO: feed it timer ticks ([`MeshNode::on_timer`])
//! and received messages ([`MeshNode::on_message`]); it returns
//! [`MeshAction`]s for the caller to execute. Membership is **lease-based**
//! and pairwise:
//!
//! * hearing a stranger's beacon with adequate link quality triggers a
//!   `JoinRequest`;
//! * `JoinAccept` (or an incoming request) establishes membership with a
//!   lease;
//! * every subsequent beacon from a member implicitly renews its lease;
//! * silence lets the lease expire — the mesh *dissolves* with zero
//!   teardown traffic when vehicles drive apart, exactly the spontaneity
//!   Model 1 calls for. An explicit [`MeshMsg::Leave`] exists for graceful
//!   departures but is never required for correctness.

use crate::beacon::{Beacon, NodeAdvert, MAX_BEACON_MEMBERS};
use crate::neighbor::NeighborTable;
use airdnd_geo::Vec2;
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Tuning knobs of the membership protocol.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Beacon period.
    pub beacon_interval: SimDuration,
    /// Drop neighbors silent for longer than this.
    pub neighbor_timeout: SimDuration,
    /// Membership lease granted/renewed on contact.
    pub member_lease: SimDuration,
    /// EWMA weight for link-quality updates.
    pub link_alpha: f64,
    /// Minimum link quality before initiating a join.
    pub join_threshold: f64,
    /// Maximum concurrent members.
    pub max_members: usize,
    /// Cooldown between join attempts to the same node.
    pub join_retry: SimDuration,
}

impl Default for MeshConfig {
    /// 100 ms beacons, 350 ms neighbor timeout, 2 s leases.
    fn default() -> Self {
        MeshConfig {
            beacon_interval: SimDuration::from_millis(100),
            neighbor_timeout: SimDuration::from_millis(350),
            member_lease: SimDuration::from_secs(2),
            link_alpha: 0.3,
            join_threshold: 0.5,
            max_members: 64,
            join_retry: SimDuration::from_millis(500),
        }
    }
}

/// Protocol messages exchanged between mesh nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MeshMsg {
    /// Periodic broadcast heartbeat.
    Beacon(Beacon),
    /// "I would like to join your mesh view."
    JoinRequest {
        /// Requester's advertisement.
        advert: NodeAdvert,
        /// Requester's position.
        pos: Vec2,
        /// Requester's velocity.
        velocity: Vec2,
    },
    /// "Accepted; here is your lease."
    JoinAccept {
        /// Granted lease duration.
        lease: SimDuration,
    },
    /// Graceful departure (optional; leases handle crashes).
    Leave,
}

impl MeshMsg {
    /// Approximate on-air payload size.
    pub fn wire_size_bytes(&self) -> u64 {
        match self {
            MeshMsg::Beacon(b) => b.wire_size_bytes(),
            MeshMsg::JoinRequest { advert, .. } => 33 + advert.catalog.wire_size_bytes() + 25,
            MeshMsg::JoinAccept { .. } => 9,
            MeshMsg::Leave => 1,
        }
    }
}

/// What the caller must do after feeding the state machine.
#[derive(Clone, Debug, PartialEq)]
pub enum MeshAction {
    /// Broadcast this message to whoever is in range.
    Broadcast(MeshMsg),
    /// Send this message to one peer.
    Unicast(NodeAddr, MeshMsg),
    /// A peer became a member (application-level notification).
    Joined(NodeAddr),
    /// A peer ceased to be a member.
    Left(NodeAddr),
}

/// Window over which churn (joins+leaves per second) is estimated.
const CHURN_WINDOW: SimDuration = SimDuration::from_secs(10);

/// The per-node mesh state machine. See the module docs for the protocol.
#[derive(Clone, Debug)]
pub struct MeshNode {
    addr: NodeAddr,
    cfg: MeshConfig,
    neighbors: NeighborTable,
    /// member → lease expiry.
    members: BTreeMap<NodeAddr, SimTime>,
    /// join target → when the last request went out.
    pending_joins: BTreeMap<NodeAddr, SimTime>,
    seq: u64,
    advert: NodeAdvert,
    pos: Vec2,
    velocity: Vec2,
    churn_events: VecDeque<SimTime>,
    total_joins: u64,
    total_leaves: u64,
}

impl MeshNode {
    /// Creates a node with the given address, configuration and initial
    /// advertisement.
    pub fn new(addr: NodeAddr, cfg: MeshConfig, advert: NodeAdvert) -> Self {
        let neighbors = NeighborTable::new(cfg.link_alpha, cfg.neighbor_timeout);
        MeshNode {
            addr,
            cfg,
            neighbors,
            members: BTreeMap::new(),
            pending_joins: BTreeMap::new(),
            seq: 0,
            advert,
            pos: Vec2::ZERO,
            velocity: Vec2::ZERO,
            churn_events: VecDeque::new(),
            total_joins: 0,
            total_leaves: 0,
        }
    }

    /// This node's address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The configuration in force.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Updates the kinematic state carried in future beacons.
    pub fn set_kinematics(&mut self, pos: Vec2, velocity: Vec2) {
        self.pos = pos;
        self.velocity = velocity;
    }

    /// Updates the resource advertisement carried in future beacons.
    pub fn set_advert(&mut self, advert: NodeAdvert) {
        self.advert = advert;
    }

    /// The current position (as last set).
    pub fn pos(&self) -> Vec2 {
        self.pos
    }

    /// Read access to the neighbor table.
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// Current members in address order.
    pub fn members(&self) -> impl Iterator<Item = NodeAddr> + '_ {
        self.members.keys().copied()
    }

    /// Number of current members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// `true` if `addr` holds an unexpired lease.
    pub fn is_member(&self, addr: NodeAddr) -> bool {
        self.members.contains_key(&addr)
    }

    /// Lifetime join count (for churn experiments).
    pub fn total_joins(&self) -> u64 {
        self.total_joins
    }

    /// Lifetime leave count.
    pub fn total_leaves(&self) -> u64 {
        self.total_leaves
    }

    /// Estimated membership churn: join+leave events per second over the
    /// last `CHURN_WINDOW` (10 s).
    pub fn churn_per_sec(&self, now: SimTime) -> f64 {
        let cutoff = now - CHURN_WINDOW;
        let recent = self.churn_events.iter().filter(|&&t| t >= cutoff).count();
        recent as f64 / CHURN_WINDOW.as_secs_f64()
    }

    fn record_churn(&mut self, now: SimTime) {
        self.churn_events.push_back(now);
        while self.churn_events.len() > 1024 {
            self.churn_events.pop_front();
        }
    }

    fn add_member(&mut self, now: SimTime, peer: NodeAddr, actions: &mut Vec<MeshAction>) {
        let expiry = now + self.cfg.member_lease;
        if self.members.insert(peer, expiry).is_none() {
            self.total_joins += 1;
            self.record_churn(now);
            actions.push(MeshAction::Joined(peer));
        }
        self.pending_joins.remove(&peer);
    }

    fn remove_member(&mut self, now: SimTime, peer: NodeAddr, actions: &mut Vec<MeshAction>) {
        if self.members.remove(&peer).is_some() {
            self.total_leaves += 1;
            self.record_churn(now);
            actions.push(MeshAction::Left(peer));
        }
    }

    /// Periodic tick: call once per [`MeshConfig::beacon_interval`].
    ///
    /// Prunes dead neighbors, expires leases and emits the next beacon.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<MeshAction> {
        let mut actions = Vec::new();
        for dead in self.neighbors.prune(now) {
            self.remove_member(now, dead, &mut actions);
            self.pending_joins.remove(&dead);
        }
        let expired: Vec<NodeAddr> = self
            .members
            .iter()
            .filter(|(_, &expiry)| expiry <= now)
            .map(|(&a, _)| a)
            .collect();
        for peer in expired {
            self.remove_member(now, peer, &mut actions);
        }
        let beacon = Beacon {
            src: self.addr,
            seq: self.seq,
            pos: self.pos,
            velocity: self.velocity,
            advert: self.advert.clone(),
            members: self
                .members
                .keys()
                .copied()
                .take(MAX_BEACON_MEMBERS)
                .collect(),
        };
        self.seq += 1;
        actions.push(MeshAction::Broadcast(MeshMsg::Beacon(beacon)));
        actions
    }

    /// Handles a received protocol message from `from`.
    pub fn on_message(&mut self, now: SimTime, from: NodeAddr, msg: MeshMsg) -> Vec<MeshAction> {
        let mut actions = Vec::new();
        match msg {
            MeshMsg::Beacon(beacon) => {
                debug_assert_eq!(beacon.src, from, "beacon source must match sender");
                self.neighbors.on_beacon(now, beacon);
                if self.members.contains_key(&from) {
                    // Implicit lease renewal.
                    self.members.insert(from, now + self.cfg.member_lease);
                } else if self.members.len() < self.cfg.max_members
                    && self.neighbors.link_quality(from) >= self.cfg.join_threshold
                {
                    let retry_ok = self
                        .pending_joins
                        .get(&from)
                        .is_none_or(|&sent| now.saturating_since(sent) >= self.cfg.join_retry);
                    if retry_ok {
                        self.pending_joins.insert(from, now);
                        actions.push(MeshAction::Unicast(
                            from,
                            MeshMsg::JoinRequest {
                                advert: self.advert.clone(),
                                pos: self.pos,
                                velocity: self.velocity,
                            },
                        ));
                    }
                }
            }
            MeshMsg::JoinRequest { .. } => {
                if self.members.contains_key(&from) || self.members.len() < self.cfg.max_members {
                    self.add_member(now, from, &mut actions);
                    actions.push(MeshAction::Unicast(
                        from,
                        MeshMsg::JoinAccept {
                            lease: self.cfg.member_lease,
                        },
                    ));
                }
                // At capacity: silently ignore; the requester's lease logic
                // handles the absence of an accept.
            }
            MeshMsg::JoinAccept { .. } => {
                if self.members.len() < self.cfg.max_members || self.members.contains_key(&from) {
                    self.add_member(now, from, &mut actions);
                }
            }
            MeshMsg::Leave => {
                self.remove_member(now, from, &mut actions);
                self.pending_joins.remove(&from);
            }
        }
        actions
    }

    /// Emits the actions for a graceful departure (tell members goodbye).
    pub fn leave_all(&mut self, now: SimTime) -> Vec<MeshAction> {
        let mut actions = Vec::new();
        let peers: Vec<NodeAddr> = self.members.keys().copied().collect();
        for peer in peers {
            actions.push(MeshAction::Unicast(peer, MeshMsg::Leave));
            self.remove_member(now, peer, &mut actions);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64) -> MeshNode {
        MeshNode::new(
            NodeAddr::new(id),
            MeshConfig::default(),
            NodeAdvert::closed(),
        )
    }

    /// Delivers every network action from `from` to `to` (lossless wire),
    /// returning the application-level notifications from both sides.
    fn exchange(
        now: SimTime,
        from: &mut MeshNode,
        to: &mut MeshNode,
        actions: Vec<MeshAction>,
    ) -> Vec<MeshAction> {
        let mut notifications = Vec::new();
        let mut queue: VecDeque<(NodeAddr, NodeAddr, MeshMsg)> = VecDeque::new();
        for a in actions {
            match a {
                MeshAction::Broadcast(msg) => queue.push_back((from.addr(), to.addr(), msg)),
                MeshAction::Unicast(dst, msg) => queue.push_back((from.addr(), dst, msg)),
                other => notifications.push(other),
            }
        }
        while let Some((src, dst, msg)) = queue.pop_front() {
            let (sender, receiver) = if dst == to.addr() {
                (&mut *from, &mut *to)
            } else {
                (&mut *to, &mut *from)
            };
            debug_assert_eq!(sender.addr(), src);
            for a in receiver.on_message(now, src, msg) {
                match a {
                    MeshAction::Broadcast(m) => {
                        let peer = if receiver.addr() == src { dst } else { src };
                        queue.push_back((receiver.addr(), peer, m));
                    }
                    MeshAction::Unicast(d, m) => queue.push_back((receiver.addr(), d, m)),
                    other => notifications.push(other),
                }
            }
        }
        notifications
    }

    #[test]
    fn two_nodes_form_a_mesh_after_beacons() {
        let mut a = node(1);
        let mut b = node(2);
        let mut joined = 0;
        for tick in 0..10u64 {
            let now = SimTime::from_millis(tick * 100);
            let acts = a.on_timer(now);
            joined += exchange(now, &mut a, &mut b, acts)
                .iter()
                .filter(|x| matches!(x, MeshAction::Joined(_)))
                .count();
            let acts = b.on_timer(now);
            joined += exchange(now, &mut b, &mut a, acts)
                .iter()
                .filter(|x| matches!(x, MeshAction::Joined(_)))
                .count();
            if a.is_member(b.addr()) && b.is_member(a.addr()) {
                break;
            }
        }
        assert!(a.is_member(NodeAddr::new(2)));
        assert!(b.is_member(NodeAddr::new(1)));
        assert!(joined >= 2, "both sides must notify Joined");
    }

    #[test]
    fn silence_dissolves_membership() {
        let mut a = node(1);
        let mut b = node(2);
        for tick in 0..10u64 {
            let now = SimTime::from_millis(tick * 100);
            let acts = a.on_timer(now);
            exchange(now, &mut a, &mut b, acts);
            let acts = b.on_timer(now);
            exchange(now, &mut b, &mut a, acts);
        }
        assert!(a.is_member(NodeAddr::new(2)));
        // b goes silent; a keeps ticking. The neighbor timeout fires first,
        // then (belt and braces) the lease would too.
        let mut left = false;
        for tick in 10..40u64 {
            let now = SimTime::from_millis(tick * 100);
            let acts = a.on_timer(now);
            left |= acts.iter().any(|x| matches!(x, MeshAction::Left(_)));
        }
        assert!(left, "member must be dropped after silence");
        assert!(!a.is_member(NodeAddr::new(2)));
        assert_eq!(a.total_leaves(), 1);
    }

    #[test]
    fn graceful_leave_notifies_peer() {
        let mut a = node(1);
        let mut b = node(2);
        for tick in 0..6u64 {
            let now = SimTime::from_millis(tick * 100);
            let acts = a.on_timer(now);
            exchange(now, &mut a, &mut b, acts);
            let acts = b.on_timer(now);
            exchange(now, &mut b, &mut a, acts);
        }
        assert!(b.is_member(a.addr()));
        let now = SimTime::from_secs(1);
        let actions = a.leave_all(now);
        let note = exchange(now, &mut a, &mut b, actions);
        assert!(
            note.contains(&MeshAction::Left(NodeAddr::new(2))),
            "a's own notification"
        );
        assert!(!b.is_member(a.addr()), "b must have processed Leave");
    }

    #[test]
    fn join_not_attempted_below_link_threshold() {
        let mut a = node(1);
        // One beacon gives quality ≈ max(alpha, 0.5) = 0.5, at threshold.
        // Raise the threshold so a single beacon is insufficient.
        a.cfg.join_threshold = 0.8;
        let b = Beacon {
            src: NodeAddr::new(2),
            seq: 0,
            pos: Vec2::ZERO,
            velocity: Vec2::ZERO,
            advert: NodeAdvert::closed(),
            members: Vec::new(),
        };
        let acts = a.on_message(SimTime::ZERO, NodeAddr::new(2), MeshMsg::Beacon(b));
        assert!(
            acts.is_empty(),
            "poor link must not trigger a join: {acts:?}"
        );
    }

    #[test]
    fn join_retry_is_rate_limited() {
        let mut a = node(1);
        let beacon_from_2 = |seq| {
            MeshMsg::Beacon(Beacon {
                src: NodeAddr::new(2),
                seq,
                pos: Vec2::ZERO,
                velocity: Vec2::ZERO,
                advert: NodeAdvert::closed(),
                members: Vec::new(),
            })
        };
        // The cautious link prior means the very first beacon does not
        // clear the join threshold; the second does.
        let first = a.on_message(SimTime::ZERO, NodeAddr::new(2), beacon_from_2(0));
        assert!(first.is_empty(), "one beacon is not yet a joinable link");
        let second = a.on_message(
            SimTime::from_millis(100),
            NodeAddr::new(2),
            beacon_from_2(1),
        );
        assert_eq!(
            second
                .iter()
                .filter(|x| matches!(x, MeshAction::Unicast(_, MeshMsg::JoinRequest { .. })))
                .count(),
            1
        );
        // 100 ms later (within the retry window): no duplicate request.
        let third = a.on_message(
            SimTime::from_millis(200),
            NodeAddr::new(2),
            beacon_from_2(2),
        );
        assert!(third.is_empty());
        // After the cooldown: retried.
        let fourth = a.on_message(
            SimTime::from_millis(700),
            NodeAddr::new(2),
            beacon_from_2(3),
        );
        assert_eq!(fourth.len(), 1);
    }

    #[test]
    fn member_capacity_is_enforced() {
        let mut a = node(1);
        a.cfg.max_members = 2;
        let now = SimTime::ZERO;
        for id in 10..14u64 {
            let req = MeshMsg::JoinRequest {
                advert: NodeAdvert::closed(),
                pos: Vec2::ZERO,
                velocity: Vec2::ZERO,
            };
            a.on_message(now, NodeAddr::new(id), req);
        }
        assert_eq!(a.member_count(), 2);
    }

    #[test]
    fn beacons_renew_leases() {
        let mut a = node(1);
        let now0 = SimTime::ZERO;
        a.on_message(
            now0,
            NodeAddr::new(2),
            MeshMsg::JoinRequest {
                advert: NodeAdvert::closed(),
                pos: Vec2::ZERO,
                velocity: Vec2::ZERO,
            },
        );
        assert!(a.is_member(NodeAddr::new(2)));
        // Keep beaconing every 100 ms well past the original 2 s lease.
        for tick in 1..40u64 {
            let now = SimTime::from_millis(tick * 100);
            let b = Beacon {
                src: NodeAddr::new(2),
                seq: tick,
                pos: Vec2::ZERO,
                velocity: Vec2::ZERO,
                advert: NodeAdvert::closed(),
                members: Vec::new(),
            };
            a.on_message(now, NodeAddr::new(2), MeshMsg::Beacon(b));
            a.on_timer(now);
        }
        assert!(
            a.is_member(NodeAddr::new(2)),
            "beacons must renew the lease"
        );
    }

    #[test]
    fn churn_rate_reflects_events() {
        let mut a = node(1);
        let now = SimTime::from_secs(5);
        for id in 10..20u64 {
            a.on_message(
                now,
                NodeAddr::new(id),
                MeshMsg::JoinRequest {
                    advert: NodeAdvert::closed(),
                    pos: Vec2::ZERO,
                    velocity: Vec2::ZERO,
                },
            );
        }
        // 10 joins within the window → 1 event/s.
        assert!((a.churn_per_sec(now) - 1.0).abs() < 1e-9);
        // Much later the events age out of the window.
        assert_eq!(a.churn_per_sec(SimTime::from_secs(60)), 0.0);
    }

    #[test]
    fn beacon_seq_increments() {
        let mut a = node(1);
        let b0 = a.on_timer(SimTime::ZERO);
        let b1 = a.on_timer(SimTime::from_millis(100));
        let seq = |acts: &[MeshAction]| match acts.last() {
            Some(MeshAction::Broadcast(MeshMsg::Beacon(b))) => b.seq,
            other => panic!("expected beacon, got {other:?}"),
        };
        assert_eq!(seq(&b0), 0);
        assert_eq!(seq(&b1), 1);
    }
}
