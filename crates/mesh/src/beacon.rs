//! Beacon frames: the heartbeat of the mesh.
//!
//! A beacon carries everything a stranger needs to decide whether this node
//! is worth joining: where it is and where it is going (for in-range
//! prediction), what compute it offers, and a digest of the data it holds
//! (Model 3). Beacons double as lease renewals for existing members.

use airdnd_data::CatalogSummary;
use airdnd_geo::Vec2;
use airdnd_radio::NodeAddr;
use serde::{Deserialize, Serialize};

/// A node's advertisement of its resources (rides inside every beacon).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeAdvert {
    /// Execution speed, gas per second.
    pub gas_rate: u64,
    /// Gas already queued (backlog — the load signal).
    pub gas_backlog: u64,
    /// Free working memory, bytes.
    pub mem_free_bytes: u64,
    /// Whether the node currently accepts offloaded work.
    pub accepting: bool,
    /// Digest of the locally held data catalog.
    pub catalog: CatalogSummary,
}

impl NodeAdvert {
    /// An advert for a node that shares nothing (still participates in the
    /// mesh for its own requests).
    pub fn closed() -> Self {
        NodeAdvert {
            gas_rate: 0,
            gas_backlog: 0,
            mem_free_bytes: 0,
            accepting: false,
            catalog: CatalogSummary::default(),
        }
    }

    /// Seconds of queued work implied by the backlog, at this node's rate.
    pub fn backlog_seconds(&self) -> f64 {
        if self.gas_rate == 0 {
            return f64::INFINITY;
        }
        self.gas_backlog as f64 / self.gas_rate as f64
    }
}

/// A periodic broadcast frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    /// Sender address.
    pub src: NodeAddr,
    /// Monotone per-sender sequence number (loss detection).
    pub seq: u64,
    /// Sender position, metres.
    pub pos: Vec2,
    /// Sender velocity, m/s.
    pub velocity: Vec2,
    /// Resource advertisement.
    pub advert: NodeAdvert,
    /// Addresses this node currently considers mesh members (capped; used
    /// for 2-hop relay discovery).
    pub members: Vec<NodeAddr>,
}

/// Maximum member addresses carried in one beacon.
pub const MAX_BEACON_MEMBERS: usize = 16;

impl Beacon {
    /// Approximate on-air size in bytes: fixed fields + catalog digest +
    /// member list.
    pub fn wire_size_bytes(&self) -> u64 {
        let fixed = 8 + 8 + 16 + 16 + 8 + 8 + 8 + 1;
        fixed + self.advert.catalog.wire_size_bytes() + self.members.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon() -> Beacon {
        Beacon {
            src: NodeAddr::new(1),
            seq: 0,
            pos: Vec2::ZERO,
            velocity: Vec2::new(10.0, 0.0),
            advert: NodeAdvert::closed(),
            members: vec![NodeAddr::new(2), NodeAddr::new(3)],
        }
    }

    #[test]
    fn wire_size_is_beacon_scale() {
        let b = beacon();
        let size = b.wire_size_bytes();
        assert!(size < 500, "beacons must be small, got {size}");
        let mut bigger = b.clone();
        bigger.members.push(NodeAddr::new(4));
        assert_eq!(bigger.wire_size_bytes(), size + 8);
    }

    #[test]
    fn closed_advert_offers_nothing() {
        let a = NodeAdvert::closed();
        assert!(!a.accepting);
        assert_eq!(a.backlog_seconds(), f64::INFINITY);
    }

    #[test]
    fn backlog_seconds_scales() {
        let a = NodeAdvert {
            gas_rate: 1_000_000,
            gas_backlog: 2_500_000,
            mem_free_bytes: 0,
            accepting: true,
            catalog: CatalogSummary::default(),
        };
        assert!((a.backlog_seconds() - 2.5).abs() < 1e-12);
    }
}
