//! The Model-1 artefact: a serializable snapshot of the mesh.
//!
//! A [`MeshDescriptor`] is what the orchestrator actually reasons over —
//! members with their positions, velocities, adverts, link qualities and
//! information age, plus a churn estimate for the whole view. It is built
//! from a [`MeshNode`] at decision time and can be
//! serialized for diagnostics or cross-node exchange.

use crate::beacon::NodeAdvert;
use crate::membership::MeshNode;
use airdnd_geo::Vec2;
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Snapshot of one mesh member as seen from the local node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemberDescriptor {
    /// Member address.
    pub addr: NodeAddr,
    /// Last reported position.
    pub pos: Vec2,
    /// Last reported velocity.
    pub velocity: Vec2,
    /// Link-quality estimate toward this member, `[0, 1]`.
    pub link_quality: f64,
    /// Last received advertisement.
    pub advert: NodeAdvert,
    /// Age of this information at snapshot time.
    pub info_age: SimDuration,
}

impl MemberDescriptor {
    /// Position extrapolated `horizon` seconds past the snapshot, assuming
    /// constant velocity — the orchestrator's in-range predictor.
    pub fn predicted_pos(&self, horizon: f64) -> Vec2 {
        self.pos + self.velocity * horizon
    }
}

/// The mesh snapshot (Model 1's "network description").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeshDescriptor {
    /// When the snapshot was taken.
    pub generated_at: SimTime,
    /// The observing node.
    pub local: NodeAddr,
    /// Local node position at snapshot time.
    pub local_pos: Vec2,
    /// Members with fresh neighbor-table state, in address order.
    pub members: Vec<MemberDescriptor>,
    /// Join+leave events per second over the recent window.
    pub churn_per_sec: f64,
}

impl MeshDescriptor {
    /// Builds a snapshot from a mesh node's current state.
    ///
    /// Members whose neighbor entry has been pruned (known member, no
    /// recent beacon) are omitted — they are about to expire anyway.
    pub fn capture(node: &MeshNode, now: SimTime) -> Self {
        let members = node
            .members()
            .filter_map(|addr| {
                let entry = node.neighbors().get(addr)?;
                Some(MemberDescriptor {
                    addr,
                    pos: entry.last_beacon.pos,
                    velocity: entry.last_beacon.velocity,
                    link_quality: entry.link_quality,
                    advert: entry.last_beacon.advert.clone(),
                    info_age: entry.age(now),
                })
            })
            .collect();
        MeshDescriptor {
            generated_at: now,
            local: node.addr(),
            local_pos: node.pos(),
            members,
            churn_per_sec: node.churn_per_sec(now),
        }
    }

    /// Number of members in the snapshot.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the snapshot contains no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member entry for `addr`, if present.
    pub fn member(&self, addr: NodeAddr) -> Option<&MemberDescriptor> {
        self.members.iter().find(|m| m.addr == addr)
    }

    /// Mean information age across members (zero if empty).
    pub fn mean_info_age(&self) -> SimDuration {
        if self.members.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.members.iter().map(|m| m.info_age.as_nanos()).sum();
        SimDuration::from_nanos(total / self.members.len() as u64)
    }

    /// A stability heuristic in `[0, 1]`: high link quality and low churn
    /// score high. Empty meshes score 0.
    pub fn stability_score(&self) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let mean_link: f64 =
            self.members.iter().map(|m| m.link_quality).sum::<f64>() / self.members.len() as f64;
        let churn_penalty = 1.0 / (1.0 + self.churn_per_sec);
        mean_link * churn_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{Beacon, NodeAdvert};
    use crate::membership::{MeshConfig, MeshMsg};

    fn handshaken_node() -> MeshNode {
        let mut a = MeshNode::new(
            NodeAddr::new(1),
            MeshConfig::default(),
            NodeAdvert::closed(),
        );
        // Peer 2 joins and has beaconed.
        a.on_message(
            SimTime::ZERO,
            NodeAddr::new(2),
            MeshMsg::JoinRequest {
                advert: NodeAdvert::closed(),
                pos: Vec2::ZERO,
                velocity: Vec2::ZERO,
            },
        );
        let beacon = Beacon {
            src: NodeAddr::new(2),
            seq: 0,
            pos: Vec2::new(50.0, 0.0),
            velocity: Vec2::new(-10.0, 0.0),
            advert: NodeAdvert::closed(),
            members: Vec::new(),
        };
        a.on_message(
            SimTime::from_millis(100),
            NodeAddr::new(2),
            MeshMsg::Beacon(beacon),
        );
        a
    }

    #[test]
    fn capture_includes_handshaken_members() {
        let node = handshaken_node();
        let d = MeshDescriptor::capture(&node, SimTime::from_millis(200));
        assert_eq!(d.len(), 1);
        let m = d.member(NodeAddr::new(2)).unwrap();
        assert_eq!(m.pos, Vec2::new(50.0, 0.0));
        assert_eq!(m.info_age, SimDuration::from_millis(100));
        assert!(m.link_quality > 0.0);
    }

    #[test]
    fn members_without_beacons_are_omitted() {
        let mut node = MeshNode::new(
            NodeAddr::new(1),
            MeshConfig::default(),
            NodeAdvert::closed(),
        );
        // Join without any beacon: member exists but no neighbor entry.
        node.on_message(
            SimTime::ZERO,
            NodeAddr::new(7),
            MeshMsg::JoinRequest {
                advert: NodeAdvert::closed(),
                pos: Vec2::ZERO,
                velocity: Vec2::ZERO,
            },
        );
        assert!(node.is_member(NodeAddr::new(7)));
        let d = MeshDescriptor::capture(&node, SimTime::from_millis(10));
        assert!(d.is_empty(), "no beacon → no kinematic state → omitted");
        assert_eq!(d.stability_score(), 0.0);
    }

    #[test]
    fn predicted_pos_extrapolates() {
        let node = handshaken_node();
        let d = MeshDescriptor::capture(&node, SimTime::from_millis(200));
        let m = d.member(NodeAddr::new(2)).unwrap();
        let p = m.predicted_pos(2.0);
        assert_eq!(p, Vec2::new(30.0, 0.0));
    }

    #[test]
    fn stability_prefers_quiet_strong_meshes() {
        let node = handshaken_node();
        let d = MeshDescriptor::capture(&node, SimTime::from_millis(200));
        let base = d.stability_score();
        assert!(base > 0.0);
        let mut churned = d.clone();
        churned.churn_per_sec = 5.0;
        assert!(churned.stability_score() < base);
        let mut weak = d.clone();
        weak.members[0].link_quality = 0.1;
        assert!(weak.stability_score() < base);
    }

    #[test]
    fn serde_round_trip() {
        let node = handshaken_node();
        let d = MeshDescriptor::capture(&node, SimTime::from_millis(200));
        let json = serde_json_like(&d);
        assert!(json.contains("members"));
    }

    // serde_json is not a dependency of this crate; smoke-test Serialize
    // through the compact debug of the serde data model instead.
    fn serde_json_like(d: &MeshDescriptor) -> String {
        format!("{d:?}")
    }

    #[test]
    fn mean_info_age_averages() {
        let node = handshaken_node();
        let d = MeshDescriptor::capture(&node, SimTime::from_millis(300));
        assert_eq!(d.mean_info_age(), SimDuration::from_millis(200));
        let empty = MeshDescriptor {
            generated_at: SimTime::ZERO,
            local: NodeAddr::new(1),
            local_pos: Vec2::ZERO,
            members: Vec::new(),
            churn_per_sec: 0.0,
        };
        assert_eq!(empty.mean_info_age(), SimDuration::ZERO);
    }
}
