//! Neighbor tables with link-quality estimation.
//!
//! Every received beacon updates the sender's entry; sequence-number gaps
//! reveal lost beacons. Link quality is an EWMA over the implied
//! delivery/loss history, so it tracks fading links *before* they die —
//! the orchestrator uses it to avoid offloading to a vehicle that is about
//! to leave range (RQ1's "link quality" criterion).

use crate::beacon::Beacon;
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// State kept per neighbor.
#[derive(Clone, Debug)]
pub struct NeighborEntry {
    /// The most recent beacon received.
    pub last_beacon: Beacon,
    /// When it was received.
    pub last_seen: SimTime,
    /// EWMA delivery ratio in `[0, 1]`.
    pub link_quality: f64,
}

impl NeighborEntry {
    /// Age of the newest information about this neighbor.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.last_seen)
    }
}

/// The per-node neighbor table.
#[derive(Clone, Debug)]
pub struct NeighborTable {
    entries: BTreeMap<NodeAddr, NeighborEntry>,
    alpha: f64,
    timeout: SimDuration,
}

impl NeighborTable {
    /// Creates a table.
    ///
    /// `alpha` is the EWMA weight of a new observation; `timeout` is how
    /// long an entry survives without beacons.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64, timeout: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        NeighborTable {
            entries: BTreeMap::new(),
            alpha,
            timeout,
        }
    }

    /// Ingests a received beacon.
    ///
    /// Sequence gaps since the previous beacon are charged as losses before
    /// the successful reception is credited.
    pub fn on_beacon(&mut self, now: SimTime, beacon: Beacon) {
        match self.entries.get_mut(&beacon.src) {
            Some(entry) => {
                let expected = entry.last_beacon.seq.wrapping_add(1);
                let missed = beacon.seq.saturating_sub(expected).min(16);
                for _ in 0..missed {
                    entry.link_quality *= 1.0 - self.alpha;
                }
                entry.link_quality = entry.link_quality * (1.0 - self.alpha) + self.alpha;
                entry.last_beacon = beacon;
                entry.last_seen = now;
            }
            None => {
                self.entries.insert(
                    beacon.src,
                    NeighborEntry {
                        last_beacon: beacon,
                        last_seen: now,
                        // Cautious prior: a single beacon proves little;
                        // quality must be earned over a few receptions so
                        // range-edge links do not flap into membership.
                        link_quality: self.alpha,
                    },
                );
            }
        }
    }

    /// Removes entries not heard from within the timeout; returns their
    /// addresses.
    pub fn prune(&mut self, now: SimTime) -> Vec<NodeAddr> {
        let timeout = self.timeout;
        let dead: Vec<NodeAddr> = self
            .entries
            .iter()
            .filter(|(_, e)| e.age(now) > timeout)
            .map(|(&a, _)| a)
            .collect();
        for addr in &dead {
            self.entries.remove(addr);
        }
        dead
    }

    /// The entry for `addr`, if known.
    pub fn get(&self, addr: NodeAddr) -> Option<&NeighborEntry> {
        self.entries.get(&addr)
    }

    /// Link quality toward `addr` (0.0 if unknown).
    pub fn link_quality(&self, addr: NodeAddr) -> f64 {
        self.entries.get(&addr).map_or(0.0, |e| e.link_quality)
    }

    /// Iterates over all neighbors in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeAddr, &NeighborEntry)> {
        self.entries.iter()
    }

    /// Number of known neighbors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no neighbors are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::NodeAdvert;
    use airdnd_geo::Vec2;

    fn beacon(src: u64, seq: u64) -> Beacon {
        Beacon {
            src: NodeAddr::new(src),
            seq,
            pos: Vec2::ZERO,
            velocity: Vec2::ZERO,
            advert: NodeAdvert::closed(),
            members: Vec::new(),
        }
    }

    fn table() -> NeighborTable {
        NeighborTable::new(0.3, SimDuration::from_millis(300))
    }

    #[test]
    fn first_beacon_creates_entry_with_cautious_prior() {
        let mut t = table();
        t.on_beacon(SimTime::ZERO, beacon(1, 0));
        assert_eq!(t.len(), 1);
        let q = t.link_quality(NodeAddr::new(1));
        assert!(
            q > 0.0 && q < 0.5,
            "one beacon must not look like a solid link: {q}"
        );
        assert_eq!(t.link_quality(NodeAddr::new(9)), 0.0);
    }

    #[test]
    fn consecutive_beacons_raise_quality() {
        let mut t = table();
        for seq in 0..20 {
            t.on_beacon(SimTime::from_millis(seq * 100), beacon(1, seq));
        }
        assert!(t.link_quality(NodeAddr::new(1)) > 0.95);
    }

    #[test]
    fn sequence_gaps_lower_quality() {
        let mut t = table();
        for seq in 0..10 {
            t.on_beacon(SimTime::from_millis(seq * 100), beacon(1, seq));
        }
        let before = t.link_quality(NodeAddr::new(1));
        // Next beacon skips 5 sequence numbers → 5 losses charged.
        t.on_beacon(SimTime::from_millis(1600), beacon(1, 15));
        let after = t.link_quality(NodeAddr::new(1));
        assert!(after < before, "{after} should drop below {before}");
    }

    #[test]
    fn quality_stays_in_unit_interval() {
        let mut t = table();
        t.on_beacon(SimTime::ZERO, beacon(1, 0));
        // Huge gap: loss charging is capped, quality must stay ≥ 0.
        t.on_beacon(SimTime::from_secs(1), beacon(1, 1_000_000));
        let q = t.link_quality(NodeAddr::new(1));
        assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn prune_removes_silent_neighbors() {
        let mut t = table();
        t.on_beacon(SimTime::ZERO, beacon(1, 0));
        t.on_beacon(SimTime::from_millis(250), beacon(2, 0));
        let dead = t.prune(SimTime::from_millis(400));
        assert_eq!(dead, vec![NodeAddr::new(1)]);
        assert_eq!(t.len(), 1);
        assert!(t.get(NodeAddr::new(2)).is_some());
    }

    #[test]
    fn entry_exposes_latest_beacon() {
        let mut t = table();
        let mut b = beacon(1, 0);
        b.pos = Vec2::new(5.0, 5.0);
        t.on_beacon(SimTime::ZERO, b);
        let mut b2 = beacon(1, 1);
        b2.pos = Vec2::new(7.0, 5.0);
        t.on_beacon(SimTime::from_millis(100), b2.clone());
        let e = t.get(NodeAddr::new(1)).unwrap();
        assert_eq!(e.last_beacon.pos, Vec2::new(7.0, 5.0));
        assert_eq!(
            e.age(SimTime::from_millis(150)),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = NeighborTable::new(0.0, SimDuration::from_secs(1));
    }
}
