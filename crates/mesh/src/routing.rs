//! Two-hop relay selection.
//!
//! The mesh is intentionally shallow — AirDnD orchestrates *in-range*
//! nodes — but links fade before they fail, and a task result is sometimes
//! worth one relay hop. Beacons carry each node's member list precisely so
//! that [`next_hop`] can pick the best-linked neighbor that claims
//! adjacency to the destination.

use crate::neighbor::NeighborTable;
use airdnd_radio::NodeAddr;

/// Picks the forwarding hop toward `dst`.
///
/// * If `dst` is a direct neighbor with link quality at least
///   `direct_threshold`, the answer is `dst` itself.
/// * Otherwise the best-linked neighbor whose last beacon listed `dst` as a
///   member is chosen — provided its link beats both the threshold and any
///   weak direct link.
/// * `None` means `dst` is unreachable in two hops.
pub fn next_hop(table: &NeighborTable, dst: NodeAddr, direct_threshold: f64) -> Option<NodeAddr> {
    let direct = table.link_quality(dst);
    if direct >= direct_threshold {
        return Some(dst);
    }
    let relay = table
        .iter()
        .filter(|(&addr, entry)| addr != dst && entry.last_beacon.members.contains(&dst))
        .max_by(|a, b| {
            a.1.link_quality
                .partial_cmp(&b.1.link_quality)
                .expect("link qualities are finite")
                // Deterministic tie-break on address.
                .then(b.0.cmp(a.0))
        })
        .map(|(&addr, entry)| (addr, entry.link_quality));
    match relay {
        Some((addr, quality)) if quality >= direct_threshold && quality > direct => Some(addr),
        _ => {
            // Fall back to a weak direct link rather than nothing.
            (direct > 0.0).then_some(dst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{Beacon, NodeAdvert};
    use airdnd_geo::Vec2;
    use airdnd_sim::{SimDuration, SimTime};

    fn beacon(src: u64, seq: u64, members: &[u64]) -> Beacon {
        Beacon {
            src: NodeAddr::new(src),
            seq,
            pos: Vec2::ZERO,
            velocity: Vec2::ZERO,
            advert: NodeAdvert::closed(),
            members: members.iter().map(|&m| NodeAddr::new(m)).collect(),
        }
    }

    fn table() -> NeighborTable {
        NeighborTable::new(0.3, SimDuration::from_secs(10))
    }

    /// Feeds `n` consecutive beacons so the link quality converges high.
    fn strong_link(t: &mut NeighborTable, src: u64, members: &[u64]) {
        for seq in 0..20 {
            t.on_beacon(SimTime::from_millis(seq * 100), beacon(src, seq, members));
        }
    }

    #[test]
    fn direct_neighbor_wins() {
        let mut t = table();
        strong_link(&mut t, 2, &[]);
        assert_eq!(next_hop(&t, NodeAddr::new(2), 0.5), Some(NodeAddr::new(2)));
    }

    #[test]
    fn relay_found_through_member_lists() {
        let mut t = table();
        // 3 is not our neighbor; 2 is, and lists 3 as a member.
        strong_link(&mut t, 2, &[3]);
        assert_eq!(next_hop(&t, NodeAddr::new(3), 0.5), Some(NodeAddr::new(2)));
    }

    #[test]
    fn unreachable_destination_is_none() {
        let mut t = table();
        strong_link(&mut t, 2, &[]);
        assert_eq!(next_hop(&t, NodeAddr::new(9), 0.5), None);
    }

    #[test]
    fn best_linked_relay_is_chosen() {
        let mut t = table();
        // Neighbor 2: weak (single beacon). Neighbor 4: strong. Both list 7.
        t.on_beacon(SimTime::ZERO, beacon(2, 0, &[7]));
        strong_link(&mut t, 4, &[7]);
        assert_eq!(next_hop(&t, NodeAddr::new(7), 0.5), Some(NodeAddr::new(4)));
    }

    #[test]
    fn weak_direct_link_is_replaced_by_strong_relay() {
        let mut t = table();
        // Direct link to 7 exists but is weak; relay via 4 is strong.
        t.on_beacon(SimTime::ZERO, beacon(7, 0, &[]));
        // Degrade 7's quality with sequence gaps.
        t.on_beacon(SimTime::from_secs(1), beacon(7, 50, &[]));
        strong_link(&mut t, 4, &[7]);
        let direct_quality = t.link_quality(NodeAddr::new(7));
        assert!(
            direct_quality < 0.5,
            "setup: direct link must be weak, got {direct_quality}"
        );
        assert_eq!(next_hop(&t, NodeAddr::new(7), 0.5), Some(NodeAddr::new(4)));
    }

    #[test]
    fn weak_direct_beats_nothing() {
        let mut t = table();
        t.on_beacon(SimTime::ZERO, beacon(7, 0, &[]));
        t.on_beacon(SimTime::from_secs(1), beacon(7, 50, &[]));
        let q = t.link_quality(NodeAddr::new(7));
        assert!(q > 0.0 && q < 0.5);
        // No relay available: fall back to the weak direct link.
        assert_eq!(next_hop(&t, NodeAddr::new(7), 0.5), Some(NodeAddr::new(7)));
    }
}
