//! Property-based tests for mesh membership invariants.

use airdnd_geo::Vec2;
use airdnd_mesh::{Beacon, MeshAction, MeshConfig, MeshDescriptor, MeshMsg, MeshNode, NodeAdvert};
use airdnd_radio::NodeAddr;
use airdnd_sim::SimTime;
use proptest::prelude::*;

fn beacon(src: u64, seq: u64) -> Beacon {
    Beacon {
        src: NodeAddr::new(src),
        seq,
        pos: Vec2::new(src as f64, 0.0),
        velocity: Vec2::ZERO,
        advert: NodeAdvert::closed(),
        members: Vec::new(),
    }
}

proptest! {
    /// Member count never exceeds the configured maximum, no matter what
    /// join traffic arrives.
    #[test]
    fn membership_capacity_invariant(
        max_members in 1usize..8,
        joiners in proptest::collection::vec(1u64..50, 0..64),
    ) {
        let cfg = MeshConfig { max_members, ..MeshConfig::default() };
        let mut node = MeshNode::new(NodeAddr::new(100), cfg, NodeAdvert::closed());
        for (i, &peer) in joiners.iter().enumerate() {
            node.on_message(
                SimTime::from_millis(i as u64 * 10),
                NodeAddr::new(peer),
                MeshMsg::JoinRequest {
                    advert: NodeAdvert::closed(),
                    pos: Vec2::ZERO,
                    velocity: Vec2::ZERO,
                },
            );
            prop_assert!(node.member_count() <= max_members);
        }
    }

    /// Every Joined notification is eventually balanced: total joins −
    /// total leaves == current membership.
    #[test]
    fn join_leave_accounting_balances(
        events in proptest::collection::vec((1u64..12, any::<bool>()), 0..100),
    ) {
        let mut node = MeshNode::new(NodeAddr::new(100), MeshConfig::default(), NodeAdvert::closed());
        for (i, &(peer, join)) in events.iter().enumerate() {
            let now = SimTime::from_millis(i as u64 * 10);
            let msg = if join {
                MeshMsg::JoinRequest {
                    advert: NodeAdvert::closed(),
                    pos: Vec2::ZERO,
                    velocity: Vec2::ZERO,
                }
            } else {
                MeshMsg::Leave
            };
            node.on_message(now, NodeAddr::new(peer), msg);
        }
        prop_assert_eq!(
            node.total_joins() as i64 - node.total_leaves() as i64,
            node.member_count() as i64
        );
    }

    /// Link quality stays within [0, 1] under arbitrary beacon sequences
    /// (gaps, replays, reordering).
    #[test]
    fn link_quality_bounded(seqs in proptest::collection::vec(0u64..1000, 1..64)) {
        let mut node = MeshNode::new(NodeAddr::new(100), MeshConfig::default(), NodeAdvert::closed());
        for (i, &seq) in seqs.iter().enumerate() {
            node.on_message(
                SimTime::from_millis(i as u64 * 50),
                NodeAddr::new(7),
                MeshMsg::Beacon(beacon(7, seq)),
            );
            let q = node.neighbors().link_quality(NodeAddr::new(7));
            prop_assert!((0.0..=1.0).contains(&q), "quality {q} out of range");
        }
    }

    /// A captured descriptor only ever contains current members, and its
    /// stability score is bounded.
    #[test]
    fn descriptor_reflects_membership(peers in proptest::collection::vec(1u64..20, 0..16)) {
        let mut node = MeshNode::new(NodeAddr::new(100), MeshConfig::default(), NodeAdvert::closed());
        for (i, &peer) in peers.iter().enumerate() {
            let now = SimTime::from_millis(i as u64 * 10);
            node.on_message(
                now,
                NodeAddr::new(peer),
                MeshMsg::JoinRequest {
                    advert: NodeAdvert::closed(),
                    pos: Vec2::ZERO,
                    velocity: Vec2::ZERO,
                },
            );
            node.on_message(now, NodeAddr::new(peer), MeshMsg::Beacon(beacon(peer, i as u64)));
        }
        let d = MeshDescriptor::capture(&node, SimTime::from_secs(1));
        for m in &d.members {
            prop_assert!(node.is_member(m.addr));
        }
        prop_assert!((0.0..=1.0).contains(&d.stability_score()));
    }

    /// on_timer always emits exactly one beacon, whatever state the node
    /// is in, and beacon sequence numbers strictly increase.
    #[test]
    fn timer_always_beacons(ticks in 1usize..50) {
        let mut node = MeshNode::new(NodeAddr::new(100), MeshConfig::default(), NodeAdvert::closed());
        let mut last_seq = None;
        for i in 0..ticks {
            let actions = node.on_timer(SimTime::from_millis(i as u64 * 100));
            let beacons: Vec<u64> = actions
                .iter()
                .filter_map(|a| match a {
                    MeshAction::Broadcast(MeshMsg::Beacon(b)) => Some(b.seq),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(beacons.len(), 1);
            if let Some(prev) = last_seq {
                prop_assert!(beacons[0] > prev);
            }
            last_seq = Some(beacons[0]);
        }
    }
}
