//! Privacy levels and sharing policies (data minimization).
//!
//! AirDnD's whole design is privacy-friendly — raw data never leaves its
//! producer — but tasks still read local data and return derived results.
//! A [`PrivacyPolicy`] states, per data category, the *least processed*
//! form a node is willing to let results reveal. The orchestrator rejects
//! task offers whose declared output level is more revealing than the
//! policy allows.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How much a shared artefact reveals, ordered from least to most
/// revealing.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum PrivacyLevel {
    /// Only aggregate statistics (counts, histograms).
    #[default]
    Aggregate,
    /// Derived artefacts without identities (occupancy, anonymous tracks).
    Anonymized,
    /// Full derived artefacts (detections with attributes).
    Derived,
    /// Raw sensor data.
    Raw,
}

impl fmt::Display for PrivacyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivacyLevel::Aggregate => "aggregate",
            PrivacyLevel::Anonymized => "anonymized",
            PrivacyLevel::Derived => "derived",
            PrivacyLevel::Raw => "raw",
        };
        f.write_str(s)
    }
}

/// Per-category sharing policy, generic over the category key so any layer
/// can reuse it (the core orchestrator keys by data type).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrivacyPolicy<K: Ord> {
    limits: BTreeMap<K, PrivacyLevel>,
    default_limit: PrivacyLevel,
}

impl<K: Ord> PrivacyPolicy<K> {
    /// A policy allowing up to `default_limit` for unlisted categories.
    pub fn new(default_limit: PrivacyLevel) -> Self {
        PrivacyPolicy {
            limits: BTreeMap::new(),
            default_limit,
        }
    }

    /// Sets the limit for one category.
    pub fn set_limit(&mut self, category: K, limit: PrivacyLevel) {
        self.limits.insert(category, limit);
    }

    /// The limit for a category.
    pub fn limit(&self, category: &K) -> PrivacyLevel {
        self.limits
            .get(category)
            .copied()
            .unwrap_or(self.default_limit)
    }

    /// `true` if sharing an artefact at `level` for this category is
    /// allowed (i.e. `level` is no more revealing than the limit).
    pub fn allows(&self, category: &K, level: PrivacyLevel) -> bool {
        level <= self.limit(category)
    }
}

impl<K: Ord> Default for PrivacyPolicy<K> {
    /// Anything up to anonymized derived artefacts; never raw.
    fn default() -> Self {
        PrivacyPolicy::new(PrivacyLevel::Anonymized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_tracks_revelation() {
        assert!(PrivacyLevel::Aggregate < PrivacyLevel::Anonymized);
        assert!(PrivacyLevel::Anonymized < PrivacyLevel::Derived);
        assert!(PrivacyLevel::Derived < PrivacyLevel::Raw);
    }

    #[test]
    fn default_policy_blocks_raw() {
        let policy: PrivacyPolicy<&str> = PrivacyPolicy::default();
        assert!(policy.allows(&"camera", PrivacyLevel::Aggregate));
        assert!(policy.allows(&"camera", PrivacyLevel::Anonymized));
        assert!(!policy.allows(&"camera", PrivacyLevel::Derived));
        assert!(!policy.allows(&"camera", PrivacyLevel::Raw));
    }

    #[test]
    fn per_category_overrides() {
        let mut policy: PrivacyPolicy<&str> = PrivacyPolicy::new(PrivacyLevel::Derived);
        policy.set_limit("camera", PrivacyLevel::Aggregate);
        policy.set_limit("gnss", PrivacyLevel::Raw);
        assert!(
            !policy.allows(&"camera", PrivacyLevel::Anonymized),
            "camera locked down"
        );
        assert!(
            policy.allows(&"gnss", PrivacyLevel::Raw),
            "gnss fully shareable"
        );
        assert!(
            policy.allows(&"lidar", PrivacyLevel::Derived),
            "default applies"
        );
        assert!(!policy.allows(&"lidar", PrivacyLevel::Raw));
    }

    #[test]
    fn limit_lookup() {
        let mut policy: PrivacyPolicy<u8> = PrivacyPolicy::new(PrivacyLevel::Aggregate);
        policy.set_limit(1, PrivacyLevel::Raw);
        assert_eq!(policy.limit(&1), PrivacyLevel::Raw);
        assert_eq!(policy.limit(&2), PrivacyLevel::Aggregate);
    }
}
