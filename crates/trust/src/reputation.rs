//! Beta-distribution reputation (Jøsang & Ismail 2002).
//!
//! Each interaction outcome updates a `Beta(α, β)` posterior; the
//! reputation score is its mean `α / (α + β)`. A forgetting factor decays
//! old evidence so nodes can redeem themselves — and so a long-honest node
//! that turns byzantine is caught quickly.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One entity's reputation state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BetaReputation {
    alpha: f64,
    beta: f64,
    decay: f64,
}

impl BetaReputation {
    /// A fresh reputation with a uniform prior (`Beta(1, 1)`, score 0.5)
    /// and the given forgetting factor per observation (1.0 = never
    /// forget).
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        BetaReputation {
            alpha: 1.0,
            beta: 1.0,
            decay,
        }
    }

    /// Records an interaction outcome.
    pub fn record(&mut self, success: bool) {
        self.alpha = (self.alpha - 1.0) * self.decay + 1.0;
        self.beta = (self.beta - 1.0) * self.decay + 1.0;
        if success {
            self.alpha += 1.0;
        } else {
            self.beta += 1.0;
        }
    }

    /// Expected probability of good behaviour, `(0, 1)`.
    pub fn score(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Total (decayed) evidence mass — low means "barely known".
    pub fn evidence(&self) -> f64 {
        self.alpha + self.beta - 2.0
    }
}

impl Default for BetaReputation {
    /// Decay 0.98 per observation.
    fn default() -> Self {
        BetaReputation::new(0.98)
    }
}

/// Reputation bookkeeping for a population of nodes, keyed by raw address.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReputationTable {
    entries: BTreeMap<u64, BetaReputation>,
    decay: f64,
}

impl Default for ReputationTable {
    /// Decay 0.98 per observation.
    fn default() -> Self {
        ReputationTable::new(0.98)
    }
}

impl ReputationTable {
    /// Creates a table whose entries use the given forgetting factor.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        ReputationTable {
            entries: BTreeMap::new(),
            decay,
        }
    }

    /// Records an outcome for `node`.
    pub fn record(&mut self, node: u64, success: bool) {
        let decay = self.decay;
        self.entries
            .entry(node)
            .or_insert_with(|| BetaReputation::new(decay))
            .record(success);
    }

    /// Score for `node`; unknown nodes get the neutral prior 0.5.
    pub fn score(&self, node: u64) -> f64 {
        self.entries.get(&node).map_or(0.5, BetaReputation::score)
    }

    /// Evidence mass for `node` (0 if unknown).
    pub fn evidence(&self, node: u64) -> f64 {
        self.entries
            .get(&node)
            .map_or(0.0, BetaReputation::evidence)
    }

    /// `true` if the node's score is at least `threshold`.
    pub fn is_trusted(&self, node: u64, threshold: f64) -> bool {
        self.score(node) >= threshold
    }

    /// Number of nodes with recorded history.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no history is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(node, score)` in node order.
    pub fn scores(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().map(|(&n, r)| (n, r.score()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_is_neutral() {
        let r = BetaReputation::default();
        assert!((r.score() - 0.5).abs() < 1e-12);
        assert_eq!(r.evidence(), 0.0);
    }

    #[test]
    fn successes_raise_failures_lower() {
        let mut good = BetaReputation::default();
        let mut bad = BetaReputation::default();
        for _ in 0..20 {
            good.record(true);
            bad.record(false);
        }
        assert!(good.score() > 0.9, "got {}", good.score());
        assert!(bad.score() < 0.1, "got {}", bad.score());
    }

    #[test]
    fn score_stays_in_open_interval() {
        let mut r = BetaReputation::new(1.0);
        for _ in 0..10_000 {
            r.record(true);
        }
        assert!(r.score() < 1.0);
        for _ in 0..100_000 {
            r.record(false);
        }
        assert!(r.score() > 0.0);
    }

    #[test]
    fn decay_allows_redemption() {
        let mut forgetful = BetaReputation::new(0.9);
        let mut elephant = BetaReputation::new(1.0);
        for _ in 0..30 {
            forgetful.record(false);
            elephant.record(false);
        }
        for _ in 0..30 {
            forgetful.record(true);
            elephant.record(true);
        }
        assert!(
            forgetful.score() > elephant.score() + 0.1,
            "forgetful {} vs elephant {}",
            forgetful.score(),
            elephant.score()
        );
        assert!(forgetful.score() > 0.8, "redeemed: {}", forgetful.score());
    }

    #[test]
    fn turncoat_is_caught_quickly_with_decay() {
        let mut r = BetaReputation::new(0.9);
        for _ in 0..100 {
            r.record(true);
        }
        let honest = r.score();
        for _ in 0..10 {
            r.record(false);
        }
        assert!(
            r.score() < honest - 0.3,
            "10 failures must bite: {} → {}",
            honest,
            r.score()
        );
    }

    #[test]
    fn table_defaults_unknown_to_neutral() {
        let t = ReputationTable::new(0.98);
        assert_eq!(t.score(42), 0.5);
        assert!(!t.is_trusted(42, 0.6));
        assert!(t.is_trusted(42, 0.5));
        assert!(t.is_empty());
    }

    #[test]
    fn table_tracks_multiple_nodes() {
        let mut t = ReputationTable::new(0.98);
        for _ in 0..10 {
            t.record(1, true);
            t.record(2, false);
        }
        assert!(t.score(1) > 0.8);
        assert!(t.score(2) < 0.2);
        assert_eq!(t.len(), 2);
        let scores: Vec<(u64, f64)> = t.scores().collect();
        assert_eq!(scores[0].0, 1);
        assert_eq!(scores[1].0, 2);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn invalid_decay_panics() {
        let _ = BetaReputation::new(0.0);
    }
}
