//! Result verification by redundant execution.
//!
//! TaskVM is deterministic, so every honest executor of a task produces
//! identical outputs. Integrity checking therefore reduces to comparing
//! content digests:
//!
//! * [`majority_vote`] — unweighted quorum over executor digests,
//! * [`weighted_vote`] — reputation-weighted quorum (a 0.9-score node
//!   outvotes two 0.2-score colluders),
//! * [`SpotChecker`] — deterministic sampling of results for local
//!   re-execution when redundancy is too expensive to pay every time.

use crate::hash::{sha256, Digest};
use crate::reputation::ReputationTable;
use airdnd_sim::SimRng;
use std::collections::BTreeMap;

/// Digest of a TaskVM output stream (little-endian word encoding).
pub fn digest_outputs(outputs: &[i64]) -> Digest {
    let mut bytes = Vec::with_capacity(outputs.len() * 8);
    for &w in outputs {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    sha256(&bytes)
}

/// Outcome of a vote over redundant executions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A digest won the vote.
    Accepted {
        /// The winning digest.
        digest: Digest,
        /// Executors that reported the winning digest.
        agreeing: Vec<u64>,
        /// Executors that reported something else (candidates for
        /// reputation penalties).
        dissenting: Vec<u64>,
    },
    /// No digest reached the required quorum.
    Inconclusive {
        /// Number of distinct digests observed.
        distinct: usize,
    },
}

impl Verdict {
    /// The accepted digest, if any.
    pub fn accepted_digest(&self) -> Option<Digest> {
        match self {
            Verdict::Accepted { digest, .. } => Some(*digest),
            Verdict::Inconclusive { .. } => None,
        }
    }
}

/// Unweighted majority vote: a digest wins if strictly more than half of
/// the executors report it *and* at least `min_votes` did.
///
/// Ties and empty inputs are [`Verdict::Inconclusive`].
pub fn majority_vote(results: &[(u64, Digest)], min_votes: usize) -> Verdict {
    vote_with_weights(results, |_| 1.0, min_votes as f64, 0.5)
}

/// Reputation-weighted vote: each executor's vote counts `score(node)`;
/// a digest wins with more than `win_fraction` of the total weight and at
/// least `min_weight` absolute weight.
pub fn weighted_vote(
    results: &[(u64, Digest)],
    reputation: &ReputationTable,
    min_weight: f64,
    win_fraction: f64,
) -> Verdict {
    vote_with_weights(
        results,
        |node| reputation.score(node),
        min_weight,
        win_fraction,
    )
}

fn vote_with_weights(
    results: &[(u64, Digest)],
    weight_of: impl Fn(u64) -> f64,
    min_weight: f64,
    win_fraction: f64,
) -> Verdict {
    if results.is_empty() {
        return Verdict::Inconclusive { distinct: 0 };
    }
    let mut tally: BTreeMap<Digest, f64> = BTreeMap::new();
    let mut total = 0.0;
    for &(node, digest) in results {
        let w = weight_of(node).max(0.0);
        *tally.entry(digest).or_insert(0.0) += w;
        total += w;
    }
    let distinct = tally.len();
    let Some((&winner, &weight)) = tally
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
    else {
        return Verdict::Inconclusive { distinct };
    };
    if weight < min_weight || total <= 0.0 || weight / total <= win_fraction {
        return Verdict::Inconclusive { distinct };
    }
    let (agreeing, dissenting): (Vec<u64>, Vec<u64>) = {
        let mut agree = Vec::new();
        let mut dissent = Vec::new();
        for &(node, digest) in results {
            if digest == winner {
                agree.push(node);
            } else {
                dissent.push(node);
            }
        }
        (agree, dissent)
    };
    Verdict::Accepted {
        digest: winner,
        agreeing,
        dissenting,
    }
}

/// Deterministic random spot-checking: re-execute a sampled fraction of
/// results locally and compare digests.
#[derive(Clone, Debug)]
pub struct SpotChecker {
    probability: f64,
    rng: SimRng,
    checks: u64,
    caught: u64,
}

impl SpotChecker {
    /// Creates a checker that samples each result with `probability`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn new(probability: f64, rng: SimRng) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        SpotChecker {
            probability,
            rng,
            checks: 0,
            caught: 0,
        }
    }

    /// Decides whether this result should be re-executed locally.
    pub fn should_check(&mut self) -> bool {
        self.rng.chance(self.probability)
    }

    /// Compares a claimed digest against a local re-execution; records the
    /// outcome and returns `true` if the claim was honest.
    pub fn check(&mut self, claimed: Digest, recomputed: Digest) -> bool {
        self.checks += 1;
        let honest = claimed == recomputed;
        if !honest {
            self.caught += 1;
        }
        honest
    }

    /// Number of spot checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of forged results caught.
    pub fn caught(&self) -> u64 {
        self.caught
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(tag: u8) -> Digest {
        sha256(&[tag])
    }

    #[test]
    fn digest_outputs_is_order_sensitive() {
        assert_eq!(digest_outputs(&[1, 2, 3]), digest_outputs(&[1, 2, 3]));
        assert_ne!(digest_outputs(&[1, 2, 3]), digest_outputs(&[3, 2, 1]));
        assert_ne!(digest_outputs(&[]), digest_outputs(&[0]));
    }

    #[test]
    fn unanimous_majority_accepts() {
        let results = [(1, d(0)), (2, d(0)), (3, d(0))];
        match majority_vote(&results, 2) {
            Verdict::Accepted {
                agreeing,
                dissenting,
                ..
            } => {
                assert_eq!(agreeing, vec![1, 2, 3]);
                assert!(dissenting.is_empty());
            }
            v => panic!("expected acceptance, got {v:?}"),
        }
    }

    #[test]
    fn lone_dissenter_is_identified() {
        let results = [(1, d(0)), (2, d(0)), (3, d(9))];
        match majority_vote(&results, 2) {
            Verdict::Accepted {
                digest, dissenting, ..
            } => {
                assert_eq!(digest, d(0));
                assert_eq!(dissenting, vec![3]);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn tie_is_inconclusive() {
        let results = [(1, d(0)), (2, d(1))];
        assert_eq!(
            majority_vote(&results, 1),
            Verdict::Inconclusive { distinct: 2 }
        );
    }

    #[test]
    fn quorum_floor_is_enforced() {
        let results = [(1, d(0))];
        assert_eq!(
            majority_vote(&results, 2),
            Verdict::Inconclusive { distinct: 1 }
        );
        assert!(matches!(
            majority_vote(&results, 1),
            Verdict::Accepted { .. }
        ));
    }

    #[test]
    fn empty_vote_is_inconclusive() {
        assert_eq!(majority_vote(&[], 1), Verdict::Inconclusive { distinct: 0 });
    }

    #[test]
    fn reputation_outweighs_colluders() {
        let mut table = ReputationTable::new(0.98);
        for _ in 0..20 {
            table.record(1, true); // trusted node
            table.record(2, false); // known-bad colluders
            table.record(3, false);
        }
        let results = [(1, d(0)), (2, d(9)), (3, d(9))];
        // Unweighted: the colluders would win 2-vs-1.
        match majority_vote(&results, 1) {
            Verdict::Accepted { digest, .. } => assert_eq!(digest, d(9)),
            v => panic!("{v:?}"),
        }
        // Weighted: the trusted node's single vote dominates.
        match weighted_vote(&results, &table, 0.5, 0.5) {
            Verdict::Accepted {
                digest, dissenting, ..
            } => {
                assert_eq!(digest, d(0));
                assert_eq!(dissenting, vec![2, 3]);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn spot_checker_samples_at_configured_rate() {
        let mut checker = SpotChecker::new(0.25, SimRng::seed_from(11));
        let sampled = (0..10_000).filter(|_| checker.should_check()).count();
        let rate = sampled as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn spot_checker_counts_catches() {
        let mut checker = SpotChecker::new(1.0, SimRng::seed_from(1));
        assert!(checker.check(d(0), d(0)));
        assert!(!checker.check(d(0), d(1)));
        assert_eq!(checker.checks(), 2);
        assert_eq!(checker.caught(), 1);
    }

    #[test]
    fn spot_checker_extremes() {
        let mut never = SpotChecker::new(0.0, SimRng::seed_from(2));
        assert!((0..100).all(|_| !never.should_check()));
        let mut always = SpotChecker::new(1.0, SimRng::seed_from(3));
        assert!((0..100).all(|_| always.should_check()));
    }
}
