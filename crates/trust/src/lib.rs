//! # airdnd-trust — RQ3: integrity, trust and privacy
//!
//! The paper's third research question asks how to handle offloaded
//! computation with respect to "feasibility, privacy, integrity, and
//! trust". Feasibility is handled by the TaskVM verifier and gas meter
//! (crate `airdnd-task`); this crate supplies the remaining three:
//!
//! * [`hash`] — a from-scratch SHA-256 for content-addressing results,
//! * [`reputation`] — beta-distribution reputation scores that the node
//!   selector blends in (nodes that return wrong results stop being
//!   chosen),
//! * [`verify`] — redundant-execution voting (plain and
//!   reputation-weighted) plus deterministic spot-checking; TaskVM
//!   execution is deterministic, so *any* honest re-execution exposes a
//!   forged result,
//! * [`privacy`] — ordered data-minimization levels and a generic policy
//!   table gating what may be shared with whom.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod privacy;
pub mod reputation;
pub mod verify;

pub use hash::{sha256, Digest};
pub use privacy::{PrivacyLevel, PrivacyPolicy};
pub use reputation::{BetaReputation, ReputationTable};
pub use verify::{digest_outputs, majority_vote, weighted_vote, SpotChecker, Verdict};
