//! RQ2: the asynchronous offload protocol (requester side).
//!
//! Offloading is a fully message-driven exchange — offer → accept/decline
//! → result — with per-task timeouts instead of global rounds:
//!
//! * offers go to the top `redundancy` ranked candidates at once;
//! * a decline or offer timeout immediately tries the next candidate;
//! * an accept arms a result deadline (executor ETA + grace);
//! * enough results trigger digest voting (RQ3) and completion;
//! * the task deadline cancels everything outstanding.
//!
//! [`RequesterBook`] is the sans-IO state machine: every entry point
//! returns [`RequesterDirective`]s for the node glue to turn into frames.

use crate::config::OrchestratorConfig;
use crate::executor::DeclineReason;
use airdnd_radio::NodeAddr;
use airdnd_sim::SimTime;
use airdnd_task::{TaskId, TaskSpec};
use airdnd_trust::{digest_outputs, majority_vote, ReputationTable, Verdict};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Offload protocol messages (the RQ2 wire vocabulary).
#[derive(Clone, Debug, PartialEq)]
pub enum OffloadMsg {
    /// "Run this task on your data" — carries the full Model-2 spec.
    Offer {
        /// The task to run.
        task: Box<TaskSpec>,
        /// Privacy level of the derived output (checked against the
        /// executor's policy).
        output_level: airdnd_trust::PrivacyLevel,
    },
    /// "Accepted; expect the result around `eta`."
    Accept {
        /// The accepted task.
        task: TaskId,
        /// Estimated completion time.
        eta: SimTime,
    },
    /// "Cannot run this."
    Decline {
        /// The declined task.
        task: TaskId,
        /// Why.
        reason: DeclineReason,
    },
    /// The computed outputs.
    Result {
        /// The finished task.
        task: TaskId,
        /// Output words of the TaskVM program.
        outputs: Vec<i64>,
        /// Gas the execution consumed.
        gas_used: u64,
    },
    /// Requester gave up; executor may drop the reservation.
    Cancel {
        /// The cancelled task.
        task: TaskId,
    },
}

impl OffloadMsg {
    /// Approximate on-air payload size in bytes.
    pub fn wire_size_bytes(&self) -> u64 {
        match self {
            OffloadMsg::Offer { task, .. } => task.wire_size_bytes() + 17,
            OffloadMsg::Accept { .. } => 24,
            OffloadMsg::Decline { .. } => 17,
            OffloadMsg::Result { outputs, .. } => 32 + outputs.len() as u64 * 8,
            OffloadMsg::Cancel { .. } => 16,
        }
    }
}

/// Final status of a submitted task.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// A (verified, if redundant) result was obtained.
    Completed {
        /// The accepted output words.
        outputs: Vec<i64>,
        /// Executors whose results agreed.
        executors: Vec<NodeAddr>,
        /// Submission-to-acceptance latency.
        latency: airdnd_sim::SimDuration,
        /// `true` if a redundancy vote backed the result.
        verified: bool,
    },
    /// No acceptable result before the deadline.
    Failed {
        /// Why.
        reason: FailReason,
    },
}

/// Why a task failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailReason {
    /// Selection produced no candidates at all.
    NoCandidates,
    /// Every candidate declined or timed out.
    AllDeclined,
    /// The deadline passed before enough results arrived.
    DeadlineExpired,
    /// Redundant results disagreed irreconcilably.
    VerificationFailed,
}

/// What the node glue must do after a requester-state transition.
#[derive(Clone, Debug, PartialEq)]
pub enum RequesterDirective {
    /// Transmit an offer for `task` to `to`.
    SendOffer {
        /// Destination executor.
        to: NodeAddr,
        /// The task.
        task: TaskId,
    },
    /// Transmit a cancel for `task` to `to`.
    SendCancel {
        /// Destination executor.
        to: NodeAddr,
        /// The task.
        task: TaskId,
    },
    /// The task reached a terminal state.
    Finished {
        /// The task.
        task: TaskId,
        /// Its outcome.
        outcome: TaskOutcome,
    },
}

#[derive(Clone, Debug)]
struct PendingTask {
    spec: TaskSpec,
    submitted_at: SimTime,
    deadline_at: SimTime,
    /// Ranked candidates not yet offered.
    queue: Vec<NodeAddr>,
    /// offer target → sent time.
    outstanding: BTreeMap<NodeAddr, SimTime>,
    /// accepted executor → result deadline (eta + grace).
    accepted: BTreeMap<NodeAddr, SimTime>,
    results: Vec<(NodeAddr, Vec<i64>, u64)>,
    needed: usize,
    offered_count: usize,
}

/// The per-node requester state machine. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct RequesterBook {
    tasks: BTreeMap<TaskId, PendingTask>,
}

impl RequesterBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The spec of an in-flight task (for re-offers).
    pub fn spec(&self, task: TaskId) -> Option<&TaskSpec> {
        self.tasks.get(&task).map(|t| &t.spec)
    }

    /// Starts a task with an already-ranked candidate list.
    ///
    /// `redundancy` executors are offered immediately; further candidates
    /// are tried on decline/timeout up to `cfg.max_candidates`.
    pub fn submit(
        &mut self,
        now: SimTime,
        spec: TaskSpec,
        ranked: Vec<NodeAddr>,
        cfg: &OrchestratorConfig,
    ) -> Vec<RequesterDirective> {
        let id = spec.id;
        if ranked.is_empty() {
            return vec![RequesterDirective::Finished {
                task: id,
                outcome: TaskOutcome::Failed {
                    reason: FailReason::NoCandidates,
                },
            }];
        }
        let deadline_at = now + spec.requirements.deadline;
        let needed = cfg.redundancy.max(1);
        let mut pending = PendingTask {
            spec,
            submitted_at: now,
            deadline_at,
            queue: ranked,
            outstanding: BTreeMap::new(),
            accepted: BTreeMap::new(),
            results: Vec::new(),
            needed,
            offered_count: 0,
        };
        let mut directives = Vec::new();
        for _ in 0..needed {
            if let Some(next) = Self::next_candidate(&mut pending, cfg) {
                pending.outstanding.insert(next, now);
                directives.push(RequesterDirective::SendOffer { to: next, task: id });
            }
        }
        if directives.is_empty() {
            return vec![RequesterDirective::Finished {
                task: id,
                outcome: TaskOutcome::Failed {
                    reason: FailReason::NoCandidates,
                },
            }];
        }
        self.tasks.insert(id, pending);
        directives
    }

    fn next_candidate(pending: &mut PendingTask, cfg: &OrchestratorConfig) -> Option<NodeAddr> {
        if pending.offered_count >= cfg.max_candidates {
            return None;
        }
        let next = pending.queue.iter().position(|a| {
            !pending.outstanding.contains_key(a)
                && !pending.accepted.contains_key(a)
                && !pending.results.iter().any(|(r, _, _)| r == a)
        })?;
        pending.offered_count += 1;
        Some(pending.queue.remove(next))
    }

    /// Handles an `Accept` from `from`.
    pub fn on_accept(
        &mut self,
        _now: SimTime,
        from: NodeAddr,
        task: TaskId,
        eta: SimTime,
        cfg: &OrchestratorConfig,
    ) -> Vec<RequesterDirective> {
        let Some(pending) = self.tasks.get_mut(&task) else {
            // Late accept for a finished/cancelled task.
            return vec![RequesterDirective::SendCancel { to: from, task }];
        };
        if pending.outstanding.remove(&from).is_none() {
            return Vec::new(); // duplicate or unsolicited
        }
        pending.accepted.insert(from, eta + cfg.result_grace);
        Vec::new()
    }

    /// Handles a `Decline` (or treats an offer timeout identically).
    pub fn on_decline(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        task: TaskId,
        cfg: &OrchestratorConfig,
    ) -> Vec<RequesterDirective> {
        let Some(pending) = self.tasks.get_mut(&task) else {
            return Vec::new();
        };
        pending.outstanding.remove(&from);
        let mut directives = Vec::new();
        if let Some(next) = Self::next_candidate(pending, cfg) {
            pending.outstanding.insert(next, now);
            directives.push(RequesterDirective::SendOffer { to: next, task });
        } else if pending.outstanding.is_empty()
            && pending.accepted.is_empty()
            && pending.results.is_empty()
        {
            directives.extend(self.finish(
                task,
                TaskOutcome::Failed {
                    reason: FailReason::AllDeclined,
                },
            ));
        }
        directives
    }

    /// Handles a `Result`; may finish the task via digest voting.
    ///
    /// `trust` is updated with agreement/dissent when a vote happens.
    pub fn on_result(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        task: TaskId,
        outputs: Vec<i64>,
        gas_used: u64,
        trust: &mut ReputationTable,
    ) -> Vec<RequesterDirective> {
        let Some(pending) = self.tasks.get_mut(&task) else {
            return Vec::new();
        };
        if pending.accepted.remove(&from).is_none() {
            return Vec::new(); // result from someone we never accepted
        }
        pending.results.push((from, outputs, gas_used));
        if pending.results.len() >= pending.needed {
            return self.conclude(now, task, trust);
        }
        Vec::new()
    }

    /// Concludes a task from the results gathered so far.
    fn conclude(
        &mut self,
        now: SimTime,
        task: TaskId,
        trust: &mut ReputationTable,
    ) -> Vec<RequesterDirective> {
        let Some(pending) = self.tasks.get(&task) else {
            return Vec::new();
        };
        let latency = now.saturating_since(pending.submitted_at);
        let results = pending.results.clone();
        debug_assert!(!results.is_empty(), "conclude requires at least one result");
        if results.len() == 1 {
            let (addr, outputs, _) = results.into_iter().next().expect("non-empty");
            trust.record(addr.raw(), true);
            return self.finish(
                task,
                TaskOutcome::Completed {
                    outputs,
                    executors: vec![addr],
                    latency,
                    verified: false,
                },
            );
        }
        let votes: Vec<(u64, airdnd_trust::Digest)> = results
            .iter()
            .map(|(addr, outputs, _)| (addr.raw(), digest_outputs(outputs)))
            .collect();
        let min_votes = results.len() / 2 + 1;
        match majority_vote(&votes, min_votes) {
            Verdict::Accepted {
                digest,
                agreeing,
                dissenting,
            } => {
                for &node in &agreeing {
                    trust.record(node, true);
                }
                for &node in &dissenting {
                    trust.record(node, false);
                }
                let outputs = results
                    .iter()
                    .find(|(_, o, _)| digest_outputs(o) == digest)
                    .map(|(_, o, _)| o.clone())
                    .expect("winning digest came from a result");
                let executors = agreeing.iter().map(|&n| NodeAddr::new(n)).collect();
                self.finish(
                    task,
                    TaskOutcome::Completed {
                        outputs,
                        executors,
                        latency,
                        verified: true,
                    },
                )
            }
            Verdict::Inconclusive { .. } => {
                for (addr, _, _) in &results {
                    trust.record(addr.raw(), false);
                }
                self.finish(
                    task,
                    TaskOutcome::Failed {
                        reason: FailReason::VerificationFailed,
                    },
                )
            }
        }
    }

    fn finish(&mut self, task: TaskId, outcome: TaskOutcome) -> Vec<RequesterDirective> {
        let mut directives = Vec::new();
        if let Some(pending) = self.tasks.remove(&task) {
            for (&addr, _) in pending.outstanding.iter().chain(pending.accepted.iter()) {
                directives.push(RequesterDirective::SendCancel { to: addr, task });
            }
        }
        directives.push(RequesterDirective::Finished { task, outcome });
        directives
    }

    /// Periodic maintenance: offer timeouts, result timeouts, deadlines.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        cfg: &OrchestratorConfig,
        trust: &mut ReputationTable,
    ) -> Vec<RequesterDirective> {
        let mut directives = Vec::new();
        let ids: Vec<TaskId> = self.tasks.keys().copied().collect();
        for id in ids {
            // Deadline: conclude with whatever we have, or fail.
            let (deadline_at, has_results) = {
                let p = self.tasks.get(&id).expect("id from keys");
                (p.deadline_at, !p.results.is_empty())
            };
            if now >= deadline_at {
                if has_results {
                    directives.extend(self.conclude(now, id, trust));
                } else {
                    directives.extend(self.finish(
                        id,
                        TaskOutcome::Failed {
                            reason: FailReason::DeadlineExpired,
                        },
                    ));
                }
                continue;
            }
            // Offer timeouts → treat as declines.
            let timed_out: Vec<NodeAddr> = {
                let p = self.tasks.get(&id).expect("still present");
                p.outstanding
                    .iter()
                    .filter(|(_, &sent)| now.saturating_since(sent) >= cfg.offer_timeout)
                    .map(|(&a, _)| a)
                    .collect()
            };
            for addr in timed_out {
                directives.extend(self.on_decline(now, addr, id, cfg));
            }
            // Result timeouts → penalize and retry.
            if let Some(p) = self.tasks.get_mut(&id) {
                let overdue: Vec<NodeAddr> = p
                    .accepted
                    .iter()
                    .filter(|(_, &by)| now >= by)
                    .map(|(&a, _)| a)
                    .collect();
                for addr in overdue {
                    p.accepted.remove(&addr);
                    trust.record(addr.raw(), false);
                    let mut next_directives = Vec::new();
                    if let Some(next) = Self::next_candidate(p, cfg) {
                        p.outstanding.insert(next, now);
                        next_directives.push(RequesterDirective::SendOffer { to: next, task: id });
                    }
                    directives.extend(next_directives);
                }
                if p.outstanding.is_empty() && p.accepted.is_empty() {
                    if p.results.is_empty() {
                        directives.extend(self.finish(
                            id,
                            TaskOutcome::Failed {
                                reason: FailReason::AllDeclined,
                            },
                        ));
                    } else {
                        // Partial results and nobody left to wait for.
                        directives.extend(self.conclude(now, id, trust));
                    }
                }
            }
        }
        directives
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_sim::SimDuration;
    use airdnd_task::{Program, ResourceRequirements};

    fn spec(id: u64) -> TaskSpec {
        TaskSpec::new(
            TaskId::new(id),
            "t",
            Program::new(vec![airdnd_task::Instr::Halt], 0),
        )
        .with_requirements(ResourceRequirements {
            deadline: SimDuration::from_secs(2),
            ..Default::default()
        })
    }

    fn addrs(ids: &[u64]) -> Vec<NodeAddr> {
        ids.iter().map(|&i| NodeAddr::new(i)).collect()
    }

    fn cfg() -> OrchestratorConfig {
        OrchestratorConfig::default()
    }

    #[test]
    fn submit_offers_to_best_candidate() {
        let mut book = RequesterBook::new();
        let d = book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6, 7]), &cfg());
        assert_eq!(
            d,
            vec![RequesterDirective::SendOffer {
                to: NodeAddr::new(5),
                task: TaskId::new(1)
            }]
        );
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn no_candidates_fails_immediately() {
        let mut book = RequesterBook::new();
        let d = book.submit(SimTime::ZERO, spec(1), vec![], &cfg());
        assert!(matches!(
            d.as_slice(),
            [RequesterDirective::Finished {
                outcome: TaskOutcome::Failed {
                    reason: FailReason::NoCandidates
                },
                ..
            }]
        ));
        assert!(book.is_empty());
    }

    #[test]
    fn single_result_completes_unverified() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = cfg();
        book.submit(SimTime::ZERO, spec(1), addrs(&[5]), &c);
        book.on_accept(
            SimTime::from_millis(50),
            NodeAddr::new(5),
            TaskId::new(1),
            SimTime::from_millis(300),
            &c,
        );
        let d = book.on_result(
            SimTime::from_millis(320),
            NodeAddr::new(5),
            TaskId::new(1),
            vec![42],
            100,
            &mut trust,
        );
        match d.as_slice() {
            [RequesterDirective::Finished {
                outcome:
                    TaskOutcome::Completed {
                        outputs,
                        verified,
                        latency,
                        ..
                    },
                ..
            }] => {
                assert_eq!(outputs, &vec![42]);
                assert!(!verified);
                assert_eq!(*latency, SimDuration::from_millis(320));
            }
            other => panic!("{other:?}"),
        }
        assert!(trust.score(5) > 0.5);
        assert!(book.is_empty());
    }

    #[test]
    fn decline_moves_to_next_candidate() {
        let mut book = RequesterBook::new();
        let c = cfg();
        book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6]), &c);
        let d = book.on_decline(
            SimTime::from_millis(10),
            NodeAddr::new(5),
            TaskId::new(1),
            &c,
        );
        assert_eq!(
            d,
            vec![RequesterDirective::SendOffer {
                to: NodeAddr::new(6),
                task: TaskId::new(1)
            }]
        );
        // Exhausting the list fails the task.
        let d = book.on_decline(
            SimTime::from_millis(20),
            NodeAddr::new(6),
            TaskId::new(1),
            &c,
        );
        assert!(matches!(
            d.as_slice(),
            [RequesterDirective::Finished {
                outcome: TaskOutcome::Failed {
                    reason: FailReason::AllDeclined
                },
                ..
            }]
        ));
    }

    #[test]
    fn offer_timeout_behaves_like_decline() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = cfg();
        book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6]), &c);
        // Past the 200 ms offer timeout.
        let d = book.on_tick(SimTime::from_millis(250), &c, &mut trust);
        assert_eq!(
            d,
            vec![RequesterDirective::SendOffer {
                to: NodeAddr::new(6),
                task: TaskId::new(1)
            }]
        );
    }

    #[test]
    fn result_timeout_penalizes_and_retries() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = cfg();
        book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6]), &c);
        book.on_accept(
            SimTime::from_millis(10),
            NodeAddr::new(5),
            TaskId::new(1),
            SimTime::from_millis(100),
            &c,
        );
        // Result due at 100 + 500 grace = 600 ms; tick at 700.
        let d = book.on_tick(SimTime::from_millis(700), &c, &mut trust);
        assert_eq!(
            d,
            vec![RequesterDirective::SendOffer {
                to: NodeAddr::new(6),
                task: TaskId::new(1)
            }]
        );
        assert!(trust.score(5) < 0.5, "silent executor is penalized");
    }

    #[test]
    fn deadline_fails_resultless_task_and_cancels() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = cfg();
        book.submit(SimTime::ZERO, spec(1), addrs(&[5]), &c);
        book.on_accept(
            SimTime::from_millis(10),
            NodeAddr::new(5),
            TaskId::new(1),
            SimTime::from_secs(10),
            &c,
        );
        let d = book.on_tick(SimTime::from_secs(3), &c, &mut trust);
        assert!(d.contains(&RequesterDirective::SendCancel {
            to: NodeAddr::new(5),
            task: TaskId::new(1)
        }));
        assert!(d.iter().any(|x| matches!(
            x,
            RequesterDirective::Finished {
                outcome: TaskOutcome::Failed {
                    reason: FailReason::DeadlineExpired
                },
                ..
            }
        )));
    }

    #[test]
    fn redundant_agreement_verifies() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = OrchestratorConfig {
            redundancy: 3,
            max_candidates: 5,
            ..cfg()
        };
        let d = book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6, 7, 8]), &c);
        assert_eq!(d.len(), 3, "three parallel offers");
        for n in [5, 6, 7] {
            book.on_accept(
                SimTime::from_millis(10),
                NodeAddr::new(n),
                TaskId::new(1),
                SimTime::from_millis(100),
                &c,
            );
        }
        book.on_result(
            SimTime::from_millis(100),
            NodeAddr::new(5),
            TaskId::new(1),
            vec![1, 2],
            10,
            &mut trust,
        );
        book.on_result(
            SimTime::from_millis(110),
            NodeAddr::new(6),
            TaskId::new(1),
            vec![1, 2],
            10,
            &mut trust,
        );
        let d = book.on_result(
            SimTime::from_millis(120),
            NodeAddr::new(7),
            TaskId::new(1),
            vec![9, 9],
            10,
            &mut trust,
        );
        match d.as_slice() {
            [RequesterDirective::Finished {
                outcome:
                    TaskOutcome::Completed {
                        outputs,
                        executors,
                        verified,
                        ..
                    },
                ..
            }] => {
                assert_eq!(outputs, &vec![1, 2]);
                assert!(verified);
                assert_eq!(executors.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(trust.score(7) < 0.5, "dissenter penalized");
        assert!(trust.score(5) > 0.5);
    }

    #[test]
    fn redundant_disagreement_fails_verification() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = OrchestratorConfig {
            redundancy: 2,
            ..cfg()
        };
        book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6]), &c);
        for n in [5, 6] {
            book.on_accept(
                SimTime::from_millis(10),
                NodeAddr::new(n),
                TaskId::new(1),
                SimTime::from_millis(100),
                &c,
            );
        }
        book.on_result(
            SimTime::from_millis(100),
            NodeAddr::new(5),
            TaskId::new(1),
            vec![1],
            10,
            &mut trust,
        );
        let d = book.on_result(
            SimTime::from_millis(110),
            NodeAddr::new(6),
            TaskId::new(1),
            vec![2],
            10,
            &mut trust,
        );
        assert!(matches!(
            d.as_slice(),
            [RequesterDirective::Finished {
                outcome: TaskOutcome::Failed {
                    reason: FailReason::VerificationFailed
                },
                ..
            }]
        ));
    }

    #[test]
    fn late_accept_gets_cancelled() {
        let mut book = RequesterBook::new();
        let c = cfg();
        let d = book.on_accept(
            SimTime::ZERO,
            NodeAddr::new(9),
            TaskId::new(77),
            SimTime::from_secs(1),
            &c,
        );
        assert_eq!(
            d,
            vec![RequesterDirective::SendCancel {
                to: NodeAddr::new(9),
                task: TaskId::new(77)
            }]
        );
    }

    #[test]
    fn unsolicited_result_is_ignored() {
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = cfg();
        book.submit(SimTime::ZERO, spec(1), addrs(&[5]), &c);
        let d = book.on_result(
            SimTime::from_millis(10),
            NodeAddr::new(6),
            TaskId::new(1),
            vec![1],
            10,
            &mut trust,
        );
        assert!(d.is_empty());
        assert_eq!(book.len(), 1, "task still pending");
    }

    #[test]
    fn partial_results_conclude_at_deadline() {
        // Redundancy 2, but only one result arrives before the deadline:
        // the deadline tick must conclude with that single result.
        let mut book = RequesterBook::new();
        let mut trust = ReputationTable::default();
        let c = OrchestratorConfig {
            redundancy: 2,
            ..cfg()
        };
        book.submit(SimTime::ZERO, spec(1), addrs(&[5, 6]), &c);
        for n in [5, 6] {
            book.on_accept(
                SimTime::from_millis(10),
                NodeAddr::new(n),
                TaskId::new(1),
                SimTime::from_millis(100),
                &c,
            );
        }
        book.on_result(
            SimTime::from_millis(100),
            NodeAddr::new(5),
            TaskId::new(1),
            vec![3],
            10,
            &mut trust,
        );
        let d = book.on_tick(SimTime::from_secs(2), &c, &mut trust);
        assert!(
            d.iter().any(|x| matches!(
                x,
                RequesterDirective::Finished {
                    outcome: TaskOutcome::Completed {
                        verified: false,
                        ..
                    },
                    ..
                }
            )),
            "{d:?}"
        );
    }

    #[test]
    fn offer_wire_sizes_are_plausible() {
        let offer = OffloadMsg::Offer {
            task: Box::new(spec(1)),
            output_level: airdnd_trust::PrivacyLevel::Derived,
        };
        let result = OffloadMsg::Result {
            task: TaskId::new(1),
            outputs: vec![0; 100],
            gas_used: 5,
        };
        assert!(offer.wire_size_bytes() < 2_000, "task specs stay small");
        assert_eq!(result.wire_size_bytes(), 32 + 800);
    }
}
