//! RQ1: which qualities and properties select the computing nodes?
//!
//! Candidates come from the Model-1 mesh descriptor; each passes hard
//! gates (accepting work, trusted enough, data plausibly available, memory
//! fits, compute exists) and is then scored on five soft criteria —
//! compute headroom, link quality, data quality, trust and predicted
//! in-range time — blended by [`SelectionWeights`](crate::config::SelectionWeights). The output is a
//! deterministic ranking; the offload protocol walks it.

use crate::config::OrchestratorConfig;
use airdnd_geo::Vec2;
use airdnd_mesh::{MemberDescriptor, MeshDescriptor};
use airdnd_radio::NodeAddr;
use airdnd_sim::SimTime;
use airdnd_task::TaskSpec;
use airdnd_trust::ReputationTable;
use serde::{Deserialize, Serialize};

/// One candidate's scores (all components in `[0, 1]`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateScore {
    /// The candidate.
    pub addr: NodeAddr,
    /// Weighted blend of the components.
    pub total: f64,
    /// Compute-headroom component.
    pub compute: f64,
    /// Link-quality component.
    pub link: f64,
    /// Data-quality component.
    pub data: f64,
    /// Trust component.
    pub trust: f64,
    /// In-range-prediction component.
    pub in_range: f64,
    /// Estimated completion time if offloaded now, seconds (queueing +
    /// execution; transfer excluded).
    pub eta_secs: f64,
}

/// Time until the candidate leaves `range` of the (moving) local node,
/// assuming both keep their current velocities. `f64::INFINITY` if the
/// relative motion never exits.
fn time_in_range(member: &MemberDescriptor, local_pos: Vec2, local_vel: Vec2, range: f64) -> f64 {
    let p = member.pos - local_pos;
    let v = member.velocity - local_vel;
    let dist = p.norm();
    if dist > range {
        return 0.0;
    }
    let speed_sq = v.norm_sq();
    if speed_sq < 1e-9 {
        return f64::INFINITY;
    }
    // Solve |p + v t|² = range²  →  t² v·v + 2 t p·v + p·p − range² = 0.
    let b = p.dot(v);
    let c = p.norm_sq() - range * range;
    let disc = b * b - speed_sq * c;
    if disc < 0.0 {
        return f64::INFINITY;
    }
    let t = (-b + disc.sqrt()) / speed_sq;
    t.max(0.0)
}

/// Approximate data-quality score from a beacon-level catalog summary.
///
/// The full graded match runs on the executor against real items; this
/// estimate blends the digest's freshness and confidence headroom for each
/// query the summary can plausibly satisfy.
fn summary_data_score(member: &MemberDescriptor, task: &TaskSpec, now: SimTime) -> Option<f64> {
    if task.inputs.is_empty() {
        return Some(1.0);
    }
    let mut log_sum = 0.0;
    for query in &task.inputs {
        if !member.advert.catalog.may_satisfy(query, now) {
            return None;
        }
        let digest = member
            .advert
            .catalog
            .digest(query.data_type)
            .expect("may_satisfy implies digest");
        let age = now.saturating_since(digest.freshest);
        let freshness = if query.requirement.max_age.is_zero() {
            1.0
        } else {
            (1.0 - age.as_secs_f64() / query.requirement.max_age.as_secs_f64()).clamp(0.0, 1.0)
        };
        let confidence = digest.best_confidence.clamp(0.0, 1.0);
        let s: f64 = (freshness * confidence).max(1e-6);
        log_sum += s.ln();
    }
    Some((log_sum / (2.0 * task.inputs.len() as f64)).exp())
}

/// Scores and ranks every mesh member for `task`.
///
/// `local_vel` is the local node's own velocity (for relative in-range
/// prediction). The result is sorted best-first with deterministic
/// address tie-breaks; members failing a hard gate are absent.
pub fn score_candidates(
    task: &TaskSpec,
    mesh: &MeshDescriptor,
    local_vel: Vec2,
    trust: &ReputationTable,
    cfg: &OrchestratorConfig,
    now: SimTime,
) -> Vec<CandidateScore> {
    let w = &cfg.weights;
    let deadline_secs = task.requirements.deadline.as_secs_f64().max(1e-3);
    let mut out: Vec<CandidateScore> = mesh
        .members
        .iter()
        .filter_map(|m| {
            // Hard gates.
            if !m.advert.accepting || m.advert.gas_rate == 0 {
                return None;
            }
            if m.advert.mem_free_bytes < task.requirements.memory_bytes {
                return None;
            }
            let trust_score = trust.score(m.addr.raw());
            if trust_score < cfg.trust_floor {
                return None;
            }
            let data = summary_data_score(m, task, now)?;

            // Soft components.
            let eta_secs = m.advert.backlog_seconds()
                + task.requirements.gas as f64 / m.advert.gas_rate as f64;
            let compute = (1.0 - eta_secs / deadline_secs).clamp(0.0, 1.0);
            let link = m.link_quality.clamp(0.0, 1.0);
            let t_exit = time_in_range(m, mesh.local_pos, local_vel, cfg.assumed_range_m);
            let in_range = (t_exit / deadline_secs).clamp(0.0, 1.0);

            let total_weight = w.total();
            let total = if total_weight <= 0.0 {
                0.0
            } else {
                (w.compute * compute
                    + w.link * link
                    + w.data * data
                    + w.trust * trust_score
                    + w.in_range * in_range)
                    / total_weight
            };
            Some(CandidateScore {
                addr: m.addr,
                total,
                compute,
                link,
                data,
                trust: trust_score,
                in_range,
                eta_secs,
            })
        })
        .filter(|c| c.total >= cfg.min_score)
        .collect();
    out.sort_by(|a, b| {
        b.total
            .partial_cmp(&a.total)
            .expect("scores are finite")
            .then(a.addr.cmp(&b.addr))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionWeights;
    use airdnd_data::{CatalogSummary, DataCatalog, DataQuery, DataType, QualityDescriptor};
    use airdnd_mesh::NodeAdvert;
    use airdnd_sim::SimDuration;
    use airdnd_task::{Program, TaskId};

    fn catalog_summary(fresh_at: SimTime) -> CatalogSummary {
        let mut cat = DataCatalog::new(4);
        cat.insert(
            DataType::OccupancyGrid,
            32_000,
            QualityDescriptor::basic(fresh_at, 0.9, 2.0),
        );
        cat.summarize()
    }

    fn member(
        id: u64,
        gas_rate: u64,
        backlog: u64,
        link: f64,
        fresh_at: SimTime,
    ) -> MemberDescriptor {
        MemberDescriptor {
            addr: NodeAddr::new(id),
            pos: Vec2::new(50.0, 0.0),
            velocity: Vec2::ZERO,
            link_quality: link,
            advert: NodeAdvert {
                gas_rate,
                gas_backlog: backlog,
                mem_free_bytes: 1 << 30,
                accepting: true,
                catalog: catalog_summary(fresh_at),
            },
            info_age: SimDuration::from_millis(100),
        }
    }

    fn mesh(members: Vec<MemberDescriptor>) -> MeshDescriptor {
        MeshDescriptor {
            generated_at: SimTime::from_secs(1),
            local: NodeAddr::new(0),
            local_pos: Vec2::ZERO,
            members,
            churn_per_sec: 0.0,
        }
    }

    fn task() -> TaskSpec {
        TaskSpec::new(
            TaskId::new(1),
            "t",
            Program::new(vec![airdnd_task::Instr::Halt], 0),
        )
        .with_input(DataQuery::of_type(DataType::OccupancyGrid))
    }

    fn now() -> SimTime {
        SimTime::from_secs(1)
    }

    #[test]
    fn faster_node_scores_higher_on_compute() {
        let m = mesh(vec![
            member(1, 2_000_000, 0, 0.9, now()),
            member(2, 200_000, 0, 0.9, now()),
        ]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].addr, NodeAddr::new(1));
        assert!(scores[0].compute > scores[1].compute);
        assert!(scores[0].eta_secs < scores[1].eta_secs);
    }

    #[test]
    fn backlog_penalizes_compute_score() {
        let m = mesh(vec![
            member(1, 1_000_000, 0, 0.9, now()),
            member(2, 1_000_000, 1_500_000, 0.9, now()),
        ]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        assert_eq!(scores[0].addr, NodeAddr::new(1));
    }

    #[test]
    fn non_accepting_and_zero_rate_nodes_are_gated() {
        let mut closed = member(1, 1_000_000, 0, 0.9, now());
        closed.advert.accepting = false;
        let zero = member(2, 0, 0, 0.9, now());
        let m = mesh(vec![closed, zero, member(3, 1_000_000, 0, 0.9, now())]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].addr, NodeAddr::new(3));
    }

    #[test]
    fn missing_data_is_a_hard_gate() {
        let mut no_data = member(1, 1_000_000, 0, 0.9, now());
        no_data.advert.catalog = CatalogSummary::default();
        let m = mesh(vec![no_data, member(2, 1_000_000, 0, 0.9, now())]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].addr, NodeAddr::new(2));
    }

    #[test]
    fn low_memory_is_a_hard_gate() {
        let mut small = member(1, 1_000_000, 0, 0.9, now());
        small.advert.mem_free_bytes = 1024;
        let m = mesh(vec![small]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        assert!(scores.is_empty());
    }

    #[test]
    fn distrusted_nodes_are_gated() {
        let mut table = ReputationTable::default();
        for _ in 0..20 {
            table.record(1, false);
        }
        let m = mesh(vec![
            member(1, 1_000_000, 0, 0.9, now()),
            member(2, 1_000_000, 0, 0.9, now()),
        ]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &table,
            &OrchestratorConfig::default(),
            now(),
        );
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].addr, NodeAddr::new(2));
    }

    #[test]
    fn departing_node_scores_lower_on_in_range() {
        let mut leaving = member(1, 1_000_000, 0, 0.9, now());
        leaving.pos = Vec2::new(280.0, 0.0);
        leaving.velocity = Vec2::new(30.0, 0.0); // exits 300 m range in <1 s
        let staying = member(2, 1_000_000, 0, 0.9, now());
        let m = mesh(vec![leaving, staying]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        let leave_score = scores.iter().find(|s| s.addr == NodeAddr::new(1)).unwrap();
        let stay_score = scores.iter().find(|s| s.addr == NodeAddr::new(2)).unwrap();
        assert!(leave_score.in_range < stay_score.in_range);
        assert_eq!(scores[0].addr, NodeAddr::new(2));
    }

    #[test]
    fn out_of_range_now_scores_zero_in_range() {
        let mut far = member(1, 1_000_000, 0, 0.9, now());
        far.pos = Vec2::new(500.0, 0.0);
        let m = mesh(vec![far]);
        let scores = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        if let Some(s) = scores.first() {
            assert_eq!(s.in_range, 0.0);
        }
    }

    #[test]
    fn stale_data_gates_via_summary() {
        let stale_at = SimTime::ZERO;
        let late = SimTime::from_secs(60);
        let m = MeshDescriptor {
            generated_at: late,
            local: NodeAddr::new(0),
            local_pos: Vec2::ZERO,
            members: vec![member(1, 1_000_000, 0, 0.9, stale_at)],
            churn_per_sec: 0.0,
        };
        let mut t = task();
        t.inputs[0].requirement.max_age = SimDuration::from_secs(5);
        let scores = score_candidates(
            &t,
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            late,
        );
        assert!(scores.is_empty(), "60 s old data vs 5 s bound");
    }

    #[test]
    fn ablation_changes_ranking() {
        // Node 1: fast but weak link. Node 2: slower but strong link.
        let fast_weak = member(1, 4_000_000, 0, 0.2, now());
        let slow_strong = member(2, 600_000, 0, 1.0, now());
        let m = mesh(vec![fast_weak, slow_strong]);
        let mut cfg = OrchestratorConfig {
            weights: SelectionWeights::compute_only(),
            ..Default::default()
        };
        let by_compute = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &cfg,
            now(),
        );
        assert_eq!(by_compute[0].addr, NodeAddr::new(1));
        cfg.weights = SelectionWeights {
            compute: 0.1,
            link: 2.0,
            ..SelectionWeights::default()
        };
        let by_link = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &cfg,
            now(),
        );
        assert_eq!(
            by_link[0].addr,
            NodeAddr::new(2),
            "link-heavy weights flip the ranking"
        );
    }

    #[test]
    fn deterministic_tie_break_by_address() {
        let m = mesh(vec![
            member(2, 1_000_000, 0, 0.9, now()),
            member(1, 1_000_000, 0, 0.9, now()),
        ]);
        let a = score_candidates(
            &task(),
            &m,
            Vec2::ZERO,
            &ReputationTable::default(),
            &OrchestratorConfig::default(),
            now(),
        );
        assert_eq!(
            a[0].addr,
            NodeAddr::new(1),
            "equal scores resolve to lower address"
        );
    }

    #[test]
    fn time_in_range_geometry() {
        let mut m = member(1, 1, 0, 1.0, now());
        m.pos = Vec2::new(100.0, 0.0);
        m.velocity = Vec2::new(50.0, 0.0);
        let t = time_in_range(&m, Vec2::ZERO, Vec2::ZERO, 300.0);
        assert!(
            (t - 4.0).abs() < 1e-9,
            "200 m of headroom at 50 m/s, got {t}"
        );
        // Approaching then receding.
        m.velocity = Vec2::new(-50.0, 0.0);
        let t = time_in_range(&m, Vec2::ZERO, Vec2::ZERO, 300.0);
        assert!((t - 8.0).abs() < 1e-9, "crosses to −300 m, got {t}");
        // Same velocities → relative rest → infinite.
        let t = time_in_range(&m, Vec2::ZERO, Vec2::new(-50.0, 0.0), 300.0);
        assert!(t.is_infinite());
    }
}
