//! Orchestration statistics: what the experiments measure.

use crate::protocol::{FailReason, TaskOutcome};
use airdnd_sim::{OnlineStats, SimTime};
use airdnd_task::TaskId;
use serde::{Deserialize, Serialize};

/// Timeline of one offloaded task (diagnostics and experiment output).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// The task.
    pub task: TaskId,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Terminal time, once finished.
    pub finished_at: Option<SimTime>,
    /// `true` if completed (vs failed).
    pub completed: Option<bool>,
    /// Offers transmitted for this task.
    pub offers_sent: u32,
}

/// Aggregate counters for one orchestrator node.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OrchestratorStats {
    /// Tasks submitted locally.
    pub submitted: u64,
    /// Tasks that completed with a result.
    pub completed: u64,
    /// Tasks that completed with a redundancy-verified result.
    pub verified: u64,
    /// Tasks that failed, by reason.
    pub failed_no_candidates: u64,
    /// Failures: every candidate declined/timed out.
    pub failed_all_declined: u64,
    /// Failures: deadline expired.
    pub failed_deadline: u64,
    /// Failures: redundant results disagreed.
    pub failed_verification: u64,
    /// Completion latency distribution (seconds).
    pub latency: OnlineStats,
    /// Offers sent (requester side).
    pub offers_sent: u64,
    /// Offers accepted (executor side).
    pub offers_accepted: u64,
    /// Offers declined (executor side).
    pub offers_declined: u64,
    /// Results returned (executor side).
    pub results_returned: u64,
}

impl OrchestratorStats {
    /// Total failed tasks.
    pub fn failed(&self) -> u64 {
        self.failed_no_candidates
            + self.failed_all_declined
            + self.failed_deadline
            + self.failed_verification
    }

    /// Completion rate in `[0, 1]` (1.0 when nothing was submitted).
    pub fn completion_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        self.completed as f64 / self.submitted as f64
    }

    /// Records a terminal outcome.
    pub fn record_outcome(&mut self, outcome: &TaskOutcome) {
        match outcome {
            TaskOutcome::Completed {
                latency, verified, ..
            } => {
                self.completed += 1;
                if *verified {
                    self.verified += 1;
                }
                self.latency.push(latency.as_secs_f64());
            }
            TaskOutcome::Failed { reason } => match reason {
                FailReason::NoCandidates => self.failed_no_candidates += 1,
                FailReason::AllDeclined => self.failed_all_declined += 1,
                FailReason::DeadlineExpired => self.failed_deadline += 1,
                FailReason::VerificationFailed => self.failed_verification += 1,
            },
        }
    }

    /// Merges another node's counters (for fleet-wide totals).
    pub fn merge(&mut self, other: &OrchestratorStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.verified += other.verified;
        self.failed_no_candidates += other.failed_no_candidates;
        self.failed_all_declined += other.failed_all_declined;
        self.failed_deadline += other.failed_deadline;
        self.failed_verification += other.failed_verification;
        self.latency.merge(&other.latency);
        self.offers_sent += other.offers_sent;
        self.offers_accepted += other.offers_accepted;
        self.offers_declined += other.offers_declined;
        self.results_returned += other.results_returned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_radio::NodeAddr;
    use airdnd_sim::SimDuration;

    #[test]
    fn outcome_recording() {
        let mut s = OrchestratorStats {
            submitted: 3,
            ..OrchestratorStats::default()
        };
        s.record_outcome(&TaskOutcome::Completed {
            outputs: vec![],
            executors: vec![NodeAddr::new(1)],
            latency: SimDuration::from_millis(100),
            verified: true,
        });
        s.record_outcome(&TaskOutcome::Failed {
            reason: FailReason::DeadlineExpired,
        });
        s.record_outcome(&TaskOutcome::Failed {
            reason: FailReason::AllDeclined,
        });
        assert_eq!(s.completed, 1);
        assert_eq!(s.verified, 1);
        assert_eq!(s.failed(), 2);
        assert!((s.completion_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.latency.count(), 1);
    }

    #[test]
    fn empty_stats_rate_is_one() {
        let s = OrchestratorStats::default();
        assert_eq!(s.completion_rate(), 1.0);
        assert_eq!(s.failed(), 0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = OrchestratorStats {
            submitted: 2,
            completed: 1,
            ..Default::default()
        };
        a.latency.push(0.5);
        let mut b = OrchestratorStats {
            submitted: 3,
            completed: 3,
            ..Default::default()
        };
        b.latency.push(0.1);
        a.merge(&b);
        assert_eq!(a.submitted, 5);
        assert_eq!(a.completed, 4);
        assert_eq!(a.latency.count(), 2);
    }
}
