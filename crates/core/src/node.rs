//! The complete orchestrator node: mesh + selection + protocol + executor.
//!
//! [`OrchestratorNode`] glues the sans-IO pieces into one state machine per
//! node. The driver (simulation or, conceivably, a real stack) feeds it
//! [`NodeEvent`]s and executes the returned [`NodeAction`]s — transmitting
//! frames over whatever medium it owns and scheduling the `SendAt` results
//! for when the simulated execution finishes.
//!
//! Every node is simultaneously:
//! * a **mesh member** (Model 1) — beaconing, joining, dissolving;
//! * a **data owner** (Model 3) — cataloguing local sensor products;
//! * an **executor** (RQ2/RQ3) — admitting, really running, and returning
//!   offloaded TaskVM programs;
//! * a **requester** (RQ1/RQ2) — scoring candidates and driving the
//!   asynchronous offload protocol for its own tasks.

use crate::config::OrchestratorConfig;
use crate::executor::{gather_inputs, DeclineReason, ExecutorSim};
use crate::protocol::{OffloadMsg, RequesterBook, RequesterDirective, TaskOutcome};
use crate::selection::score_candidates;
use crate::stats::OrchestratorStats;
use airdnd_data::{CatalogSummary, DataCatalog, DataType, QualityDescriptor};
use airdnd_geo::Vec2;
use airdnd_mesh::{MeshAction, MeshConfig, MeshDescriptor, MeshMsg, MeshNode, NodeAdvert};
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimRng, SimTime};
use airdnd_task::{TaskId, TaskSpec};
use airdnd_trust::{PrivacyLevel, PrivacyPolicy, ReputationTable};
use std::collections::BTreeMap;

/// Everything that travels between nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Model-1 mesh maintenance traffic.
    Mesh(MeshMsg),
    /// RQ2 offload traffic.
    Offload(OffloadMsg),
}

impl WireMsg {
    /// Approximate on-air payload size.
    pub fn wire_size_bytes(&self) -> u64 {
        match self {
            WireMsg::Mesh(m) => m.wire_size_bytes(),
            WireMsg::Offload(m) => m.wire_size_bytes(),
        }
    }
}

/// Inputs the driver feeds into a node.
#[derive(Clone, Debug)]
pub enum NodeEvent {
    /// Periodic tick (once per mesh beacon interval).
    Tick,
    /// A frame arrived.
    Wire {
        /// The sender.
        from: NodeAddr,
        /// The payload.
        msg: WireMsg,
    },
}

/// Outputs the driver must execute.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeAction {
    /// Broadcast to whoever is in radio range.
    Broadcast(WireMsg),
    /// Unicast now.
    Send {
        /// Destination.
        to: NodeAddr,
        /// Payload.
        msg: WireMsg,
    },
    /// Unicast at a future instant (result delivery after execution).
    SendAt {
        /// Destination.
        to: NodeAddr,
        /// Transmission time.
        at: SimTime,
        /// Payload.
        msg: WireMsg,
    },
    /// A locally submitted task reached a terminal state.
    Outcome {
        /// The task.
        task: TaskId,
        /// Its outcome.
        outcome: TaskOutcome,
    },
    /// A peer joined this node's mesh view.
    MeshJoined(NodeAddr),
    /// A peer left this node's mesh view.
    MeshLeft(NodeAddr),
}

/// One AirDnD node. See the module docs.
#[derive(Debug)]
pub struct OrchestratorNode {
    cfg: OrchestratorConfig,
    mesh: MeshNode,
    executor: ExecutorSim,
    requester: RequesterBook,
    catalog: DataCatalog,
    store: BTreeMap<u64, Vec<i64>>,
    trust: ReputationTable,
    privacy: PrivacyPolicy<DataType>,
    stats: OrchestratorStats,
    velocity: Vec2,
    rng: SimRng,
    /// Output privacy level per in-flight local task.
    task_levels: BTreeMap<TaskId, PrivacyLevel>,
    /// Beacon summary cached against [`DataCatalog::version`]: adverts
    /// refresh every tick, the catalog changes far less often.
    advert_summary: Option<(u64, CatalogSummary)>,
}

impl OrchestratorNode {
    /// Creates a node.
    ///
    /// `rng` should be forked per node for determinism; `gas_rate`/`mem`
    /// size the executor; catalogs hold up to 64 items.
    pub fn new(
        addr: NodeAddr,
        cfg: OrchestratorConfig,
        mesh_cfg: MeshConfig,
        gas_rate: u64,
        mem_bytes: u64,
        rng: SimRng,
    ) -> Self {
        let executor = ExecutorSim::new(gas_rate.max(1), mem_bytes);
        OrchestratorNode {
            cfg,
            mesh: MeshNode::new(addr, mesh_cfg, NodeAdvert::closed()),
            executor,
            requester: RequesterBook::new(),
            catalog: DataCatalog::new(64),
            store: BTreeMap::new(),
            trust: ReputationTable::default(),
            privacy: PrivacyPolicy::new(PrivacyLevel::Derived),
            stats: OrchestratorStats::default(),
            velocity: Vec2::ZERO,
            rng,
            task_levels: BTreeMap::new(),
            advert_summary: None,
        }
    }

    /// This node's address.
    pub fn addr(&self) -> NodeAddr {
        self.mesh.addr()
    }

    /// Read access to the mesh state machine.
    pub fn mesh(&self) -> &MeshNode {
        &self.mesh
    }

    /// Read access to aggregate statistics.
    pub fn stats(&self) -> &OrchestratorStats {
        &self.stats
    }

    /// Read access to the reputation table.
    pub fn trust(&self) -> &ReputationTable {
        &self.trust
    }

    /// Mutable access to the executor (e.g. to make it byzantine or close
    /// admissions).
    pub fn executor_mut(&mut self) -> &mut ExecutorSim {
        &mut self.executor
    }

    /// Read access to the executor.
    pub fn executor(&self) -> &ExecutorSim {
        &self.executor
    }

    /// Replaces the privacy policy.
    pub fn set_privacy(&mut self, policy: PrivacyPolicy<DataType>) {
        self.privacy = policy;
    }

    /// Updates position/velocity (drives beacons and in-range prediction).
    pub fn set_kinematics(&mut self, pos: Vec2, velocity: Vec2) {
        self.velocity = velocity;
        self.mesh.set_kinematics(pos, velocity);
    }

    /// Adds locally produced data (Model 3): catalog entry + payload words.
    pub fn insert_data(
        &mut self,
        data_type: DataType,
        payload: Vec<i64>,
        quality: QualityDescriptor,
    ) -> airdnd_data::DataItemId {
        let size = payload.len() as u64 * 8;
        let id = self.catalog.insert(data_type, size, quality);
        self.store.insert(id.raw(), payload);
        // Bound the store to the catalog: drop payloads of evicted items.
        let live: Vec<u64> = self.catalog.iter().map(|i| i.id.raw()).collect();
        self.store.retain(|k, _| live.contains(k));
        id
    }

    /// The Model-1 snapshot this node would orchestrate over right now.
    pub fn descriptor(&self, now: SimTime) -> MeshDescriptor {
        MeshDescriptor::capture(&self.mesh, now)
    }

    fn refresh_advert(&mut self, now: SimTime) {
        let backlog_from_busy = {
            let eta = self.executor.eta(now, 0);
            let secs = eta.saturating_since(now).as_secs_f64();
            (secs * self.executor.gas_rate() as f64) as u64
        };
        let catalog = match &self.advert_summary {
            Some((version, summary)) if *version == self.catalog.version() => summary.clone(),
            _ => {
                let summary = self.catalog.summarize();
                self.advert_summary = Some((self.catalog.version(), summary.clone()));
                summary
            }
        };
        self.mesh.set_advert(NodeAdvert {
            gas_rate: self.executor.gas_rate(),
            gas_backlog: self.executor.backlog_gas() + backlog_from_busy,
            mem_free_bytes: self.executor.mem_bytes(),
            accepting: self.executor.is_accepting(),
            catalog,
        });
    }

    fn map_mesh_actions(&mut self, actions: Vec<MeshAction>, out: &mut Vec<NodeAction>) {
        for action in actions {
            match action {
                MeshAction::Broadcast(msg) => out.push(NodeAction::Broadcast(WireMsg::Mesh(msg))),
                MeshAction::Unicast(to, msg) => out.push(NodeAction::Send {
                    to,
                    msg: WireMsg::Mesh(msg),
                }),
                MeshAction::Joined(addr) => out.push(NodeAction::MeshJoined(addr)),
                MeshAction::Left(addr) => out.push(NodeAction::MeshLeft(addr)),
            }
        }
    }

    fn map_requester_directives(
        &mut self,
        directives: Vec<RequesterDirective>,
        out: &mut Vec<NodeAction>,
    ) {
        for directive in directives {
            match directive {
                RequesterDirective::SendOffer { to, task } => {
                    let Some(spec) = self.requester.spec(task) else {
                        continue;
                    };
                    let output_level = self
                        .task_levels
                        .get(&task)
                        .copied()
                        .unwrap_or(PrivacyLevel::Derived);
                    self.stats.offers_sent += 1;
                    out.push(NodeAction::Send {
                        to,
                        msg: WireMsg::Offload(OffloadMsg::Offer {
                            task: Box::new(spec.clone()),
                            output_level,
                        }),
                    });
                }
                RequesterDirective::SendCancel { to, task } => {
                    out.push(NodeAction::Send {
                        to,
                        msg: WireMsg::Offload(OffloadMsg::Cancel { task }),
                    });
                }
                RequesterDirective::Finished { task, outcome } => {
                    self.task_levels.remove(&task);
                    self.stats.record_outcome(&outcome);
                    out.push(NodeAction::Outcome { task, outcome });
                }
            }
        }
    }

    /// Submits a locally generated task: RQ1 selection over the current
    /// mesh descriptor, then RQ2 offers.
    pub fn submit_task(
        &mut self,
        now: SimTime,
        spec: TaskSpec,
        output_level: PrivacyLevel,
    ) -> Vec<NodeAction> {
        self.stats.submitted += 1;
        let descriptor = self.descriptor(now);
        let scores = score_candidates(
            &spec,
            &descriptor,
            self.velocity,
            &self.trust,
            &self.cfg,
            now,
        );
        let ranked: Vec<NodeAddr> = scores.iter().map(|s| s.addr).collect();
        self.task_levels.insert(spec.id, output_level);
        // Spot-check escalation (RQ3): occasionally double up execution to
        // audit an executor even when redundancy is 1.
        let mut cfg = self.cfg;
        if cfg.spot_check_probability > 0.0 && self.rng.chance(cfg.spot_check_probability) {
            cfg.redundancy = cfg.redundancy.max(2);
        }
        let directives = self.requester.submit(now, spec, ranked, &cfg);
        let mut out = Vec::new();
        self.map_requester_directives(directives, &mut out);
        out
    }

    /// Gracefully departs the mesh: tells every member goodbye
    /// ([`airdnd_mesh::MeshNode::leave_all`]) and returns the resulting
    /// wire/notification actions. The driver calls this right before
    /// removing the node from the simulation; an abrupt departure skips it
    /// and peers only notice through lease expiry.
    pub fn leave(&mut self, now: SimTime) -> Vec<NodeAction> {
        let actions = self.mesh.leave_all(now);
        let mut out = Vec::new();
        self.map_mesh_actions(actions, &mut out);
        out
    }

    /// Feeds one event into the node.
    pub fn handle(&mut self, now: SimTime, event: NodeEvent) -> Vec<NodeAction> {
        let mut out = Vec::new();
        match event {
            NodeEvent::Tick => {
                self.refresh_advert(now);
                let mesh_actions = self.mesh.on_timer(now);
                self.map_mesh_actions(mesh_actions, &mut out);
                let directives = {
                    let cfg = self.cfg;
                    self.requester.on_tick(now, &cfg, &mut self.trust)
                };
                self.map_requester_directives(directives, &mut out);
            }
            NodeEvent::Wire { from, msg } => match msg {
                WireMsg::Mesh(m) => {
                    let actions = self.mesh.on_message(now, from, m);
                    self.map_mesh_actions(actions, &mut out);
                }
                WireMsg::Offload(m) => self.handle_offload(now, from, m, &mut out),
            },
        }
        out
    }

    fn handle_offload(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        msg: OffloadMsg,
        out: &mut Vec<NodeAction>,
    ) {
        match msg {
            OffloadMsg::Offer { task, output_level } => {
                let admission = self.executor.admit(
                    now,
                    &task,
                    &self.catalog,
                    &self.privacy,
                    output_level,
                    self.cfg.max_backlog_factor,
                );
                match admission {
                    Ok(eta) => {
                        let task_id = task.id;
                        self.executor.reserve(task_id.raw(), task.requirements.gas);
                        let inputs = gather_inputs(&self.catalog, &self.store, &task.inputs, now);
                        let Some(inputs) = inputs else {
                            self.executor.cancel(task_id.raw());
                            self.stats.offers_declined += 1;
                            out.push(NodeAction::Send {
                                to: from,
                                msg: WireMsg::Offload(OffloadMsg::Decline {
                                    task: task_id,
                                    reason: DeclineReason::DataUnavailable,
                                }),
                            });
                            return;
                        };
                        match self.executor.execute(now, task_id.raw(), &task, &inputs) {
                            Ok(result) => {
                                self.stats.offers_accepted += 1;
                                self.stats.results_returned += 1;
                                out.push(NodeAction::Send {
                                    to: from,
                                    msg: WireMsg::Offload(OffloadMsg::Accept {
                                        task: task_id,
                                        eta,
                                    }),
                                });
                                out.push(NodeAction::SendAt {
                                    to: from,
                                    at: result.finish,
                                    msg: WireMsg::Offload(OffloadMsg::Result {
                                        task: task_id,
                                        outputs: result.outputs,
                                        gas_used: result.gas_used,
                                    }),
                                });
                            }
                            Err(_trap) => {
                                self.stats.offers_declined += 1;
                                out.push(NodeAction::Send {
                                    to: from,
                                    msg: WireMsg::Offload(OffloadMsg::Decline {
                                        task: task_id,
                                        reason: DeclineReason::ProgramInvalid,
                                    }),
                                });
                            }
                        }
                    }
                    Err(reason) => {
                        self.stats.offers_declined += 1;
                        out.push(NodeAction::Send {
                            to: from,
                            msg: WireMsg::Offload(OffloadMsg::Decline {
                                task: task.id,
                                reason,
                            }),
                        });
                    }
                }
            }
            OffloadMsg::Accept { task, eta } => {
                let cfg = self.cfg;
                let directives = self.requester.on_accept(now, from, task, eta, &cfg);
                self.map_requester_directives(directives, out);
            }
            OffloadMsg::Decline { task, .. } => {
                let cfg = self.cfg;
                let directives = self.requester.on_decline(now, from, task, &cfg);
                self.map_requester_directives(directives, out);
            }
            OffloadMsg::Result {
                task,
                outputs,
                gas_used,
            } => {
                let directives =
                    self.requester
                        .on_result(now, from, task, outputs, gas_used, &mut self.trust);
                self.map_requester_directives(directives, out);
            }
            OffloadMsg::Cancel { task } => {
                self.executor.cancel(task.raw());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_data::DataQuery;
    use airdnd_sim::SimDuration;
    use airdnd_task::{library, ResourceRequirements};

    fn node(id: u64, gas_rate: u64) -> OrchestratorNode {
        OrchestratorNode::new(
            NodeAddr::new(id),
            OrchestratorConfig::default(),
            MeshConfig::default(),
            gas_rate,
            1 << 30,
            SimRng::seed_from(id),
        )
    }

    fn grid_quality(now: SimTime) -> QualityDescriptor {
        QualityDescriptor::basic(now, 0.9, 2.0)
    }

    fn fuse_task(id: u64) -> TaskSpec {
        TaskSpec::new(TaskId::new(id), "fuse", library::grid_fuse(4).into_inner())
            .with_input(DataQuery::of_type(DataType::OccupancyGrid))
            .with_requirements(ResourceRequirements {
                gas: 100_000,
                memory_bytes: 1 << 20,
                deadline: SimDuration::from_secs(2),
                ..Default::default()
            })
    }

    /// Lossless instantaneous "wire" between a set of nodes: delivers all
    /// Send/Broadcast actions, collecting SendAt separately.
    struct Harness {
        nodes: Vec<OrchestratorNode>,
        delayed: Vec<(usize, NodeAddr, SimTime, WireMsg)>,
        outcomes: Vec<(TaskId, TaskOutcome)>,
    }

    impl Harness {
        fn new(nodes: Vec<OrchestratorNode>) -> Self {
            Harness {
                nodes,
                delayed: Vec::new(),
                outcomes: Vec::new(),
            }
        }

        fn index_of(&self, addr: NodeAddr) -> Option<usize> {
            self.nodes.iter().position(|n| n.addr() == addr)
        }

        fn dispatch(&mut self, now: SimTime, src: usize, actions: Vec<NodeAction>) {
            let mut queue: Vec<(usize, NodeAddr, WireMsg)> = Vec::new();
            let src_addr = self.nodes[src].addr();
            for a in actions {
                match a {
                    NodeAction::Broadcast(msg) => {
                        for i in 0..self.nodes.len() {
                            if i != src {
                                queue.push((i, src_addr, msg.clone()));
                            }
                        }
                    }
                    NodeAction::Send { to, msg } => {
                        if let Some(i) = self.index_of(to) {
                            queue.push((i, src_addr, msg));
                        }
                    }
                    NodeAction::SendAt { to, at, msg } => {
                        self.delayed.push((src, to, at, msg));
                    }
                    NodeAction::Outcome { task, outcome } => self.outcomes.push((task, outcome)),
                    NodeAction::MeshJoined(_) | NodeAction::MeshLeft(_) => {}
                }
            }
            while let Some((dst, from, msg)) = queue.pop() {
                let actions = self.nodes[dst].handle(now, NodeEvent::Wire { from, msg });
                let dst_addr = self.nodes[dst].addr();
                for a in actions {
                    match a {
                        NodeAction::Broadcast(msg) => {
                            for i in 0..self.nodes.len() {
                                if self.nodes[i].addr() != dst_addr {
                                    queue.push((i, dst_addr, msg.clone()));
                                }
                            }
                        }
                        NodeAction::Send { to, msg } => {
                            if let Some(i) = self.index_of(to) {
                                queue.push((i, dst_addr, msg));
                            }
                        }
                        NodeAction::SendAt { to, at, msg } => {
                            let src_idx = self.index_of(dst_addr).expect("self");
                            self.delayed.push((src_idx, to, at, msg));
                        }
                        NodeAction::Outcome { task, outcome } => {
                            self.outcomes.push((task, outcome))
                        }
                        NodeAction::MeshJoined(_) | NodeAction::MeshLeft(_) => {}
                    }
                }
            }
        }

        fn tick_all(&mut self, now: SimTime) {
            for i in 0..self.nodes.len() {
                let actions = self.nodes[i].handle(now, NodeEvent::Tick);
                self.dispatch(now, i, actions);
            }
            // Deliver matured delayed messages.
            let matured: Vec<(usize, NodeAddr, SimTime, WireMsg)> = {
                let (m, rest): (Vec<_>, Vec<_>) =
                    self.delayed.drain(..).partition(|(_, _, at, _)| *at <= now);
                self.delayed = rest;
                m
            };
            for (src, to, _, msg) in matured {
                if let Some(dst) = self.index_of(to) {
                    let from = self.nodes[src].addr();
                    let actions = self.nodes[dst].handle(now, NodeEvent::Wire { from, msg });
                    self.dispatch(now, dst, actions);
                }
            }
        }
    }

    /// Bring up a two-node mesh and offload one fusion task end to end.
    #[test]
    fn end_to_end_offload_over_ideal_wire() {
        let requester = node(1, 1_000_000);
        let mut helper = node(2, 2_000_000);
        let t0 = SimTime::ZERO;
        helper.insert_data(
            DataType::OccupancyGrid,
            vec![1, 0, 5, 0, 0, 2, 3, 9],
            grid_quality(t0),
        );
        let mut h = Harness::new(vec![requester, helper]);

        // Mesh formation.
        for tick in 0..8u64 {
            h.tick_all(SimTime::from_millis(tick * 100));
        }
        assert!(h.nodes[0].mesh().is_member(NodeAddr::new(2)), "mesh formed");

        // Submit; harness routes offer → accept/result.
        let now = SimTime::from_millis(800);
        let actions = h.nodes[0].submit_task(now, fuse_task(1), PrivacyLevel::Derived);
        h.dispatch(now, 0, actions);
        // Advance ticks so the delayed Result is delivered.
        for tick in 9..25u64 {
            h.tick_all(SimTime::from_millis(tick * 100));
            if !h.outcomes.is_empty() {
                break;
            }
        }
        assert_eq!(h.outcomes.len(), 1, "task must terminate");
        match &h.outcomes[0].1 {
            TaskOutcome::Completed {
                outputs,
                executors,
                verified,
                ..
            } => {
                // grid_fuse(4) over the helper's single 8-word item (two
                // concatenated grids).
                assert_eq!(outputs, &vec![1, 2, 5, 9]);
                assert_eq!(executors, &vec![NodeAddr::new(2)]);
                assert!(!verified);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        let s = h.nodes[0].stats();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.offers_sent, 1);
        let helper_stats = h.nodes[1].stats();
        assert_eq!(helper_stats.offers_accepted, 1);
        assert_eq!(helper_stats.results_returned, 1);
    }

    #[test]
    fn no_mesh_members_fails_fast() {
        let mut lone = node(1, 1_000_000);
        let actions = lone.submit_task(SimTime::ZERO, fuse_task(1), PrivacyLevel::Derived);
        assert!(actions.iter().any(|a| matches!(
            a,
            NodeAction::Outcome {
                outcome: TaskOutcome::Failed { .. },
                ..
            }
        )));
        assert_eq!(lone.stats().failed_no_candidates, 1);
    }

    #[test]
    fn executor_without_data_declines_and_requester_fails_over() {
        let requester = node(1, 1_000_000);
        let empty_helper = node(2, 2_000_000); // no data inserted
        let mut stocked_helper = node(3, 500_000);
        stocked_helper.insert_data(
            DataType::OccupancyGrid,
            vec![1, 0, 5, 0, 0, 2, 3, 9],
            grid_quality(SimTime::ZERO),
        );
        let mut h = Harness::new(vec![requester, empty_helper, stocked_helper]);
        for tick in 0..8u64 {
            h.tick_all(SimTime::from_millis(tick * 100));
        }
        let now = SimTime::from_millis(800);
        let actions = h.nodes[0].submit_task(now, fuse_task(1), PrivacyLevel::Derived);
        h.dispatch(now, 0, actions);
        for tick in 9..30u64 {
            h.tick_all(SimTime::from_millis(tick * 100));
            if !h.outcomes.is_empty() {
                break;
            }
        }
        // Selection already gates on the advertised catalog, so node 2 is
        // never offered; node 3 completes it.
        match &h.outcomes[0].1 {
            TaskOutcome::Completed { executors, .. } => {
                assert_eq!(executors, &vec![NodeAddr::new(3)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn byzantine_helper_is_outvoted_with_redundancy() {
        let mut requester = node(1, 1_000_000);
        requester.cfg.redundancy = 3;
        requester.cfg.max_candidates = 4;
        let data = vec![1, 0, 5, 0, 0, 2, 3, 9];
        let mut helpers: Vec<OrchestratorNode> = (2..=4).map(|i| node(i, 2_000_000)).collect();
        for helper in &mut helpers {
            helper.insert_data(
                DataType::OccupancyGrid,
                data.clone(),
                grid_quality(SimTime::ZERO),
            );
        }
        helpers[2].executor_mut().set_byzantine(true);
        let mut nodes = vec![requester];
        nodes.extend(helpers);
        let mut h = Harness::new(nodes);
        for tick in 0..8u64 {
            h.tick_all(SimTime::from_millis(tick * 100));
        }
        let now = SimTime::from_millis(800);
        let actions = h.nodes[0].submit_task(now, fuse_task(1), PrivacyLevel::Derived);
        h.dispatch(now, 0, actions);
        for tick in 9..30u64 {
            h.tick_all(SimTime::from_millis(tick * 100));
            if !h.outcomes.is_empty() {
                break;
            }
        }
        match &h.outcomes[0].1 {
            TaskOutcome::Completed {
                outputs,
                verified,
                executors,
                ..
            } => {
                assert_eq!(outputs, &vec![1, 2, 5, 9], "honest majority wins");
                assert!(verified);
                assert_eq!(executors.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        // The byzantine node's reputation took the hit.
        assert!(h.nodes[0].trust().score(4) < 0.5);
    }

    #[test]
    fn data_insertion_feeds_catalog_and_advert() {
        let mut n = node(1, 1_000_000);
        n.insert_data(
            DataType::OccupancyGrid,
            vec![0; 16],
            grid_quality(SimTime::ZERO),
        );
        let actions = n.handle(SimTime::from_millis(100), NodeEvent::Tick);
        let beacon = actions.iter().find_map(|a| match a {
            NodeAction::Broadcast(WireMsg::Mesh(MeshMsg::Beacon(b))) => Some(b),
            _ => None,
        });
        let beacon = beacon.expect("tick emits a beacon");
        assert!(beacon
            .advert
            .catalog
            .digest(DataType::OccupancyGrid)
            .is_some());
        assert!(beacon.advert.accepting);
        assert_eq!(beacon.advert.gas_rate, 1_000_000);
    }
}
