//! The executor side of offloading: admission control and metered
//! execution (RQ2's receiving end, RQ3's feasibility checks).
//!
//! An executor *re-verifies everything locally* before accepting: the
//! program must pass the TaskVM verifier, the declared resources must fit,
//! the requested data must actually be present at adequate quality, the
//! privacy policy must allow the derived output, and the backlog must
//! leave a chance of meeting the deadline. Accepted tasks really execute —
//! bytecode against local data words — and their *measured* gas (not the
//! declaration) advances the executor's busy horizon.

use airdnd_data::{DataCatalog, DataQuery, DataType};
use airdnd_sim::{SimDuration, SimTime};
use airdnd_task::vm::{execute, verify, ExecLimits, Trap};
use airdnd_task::TaskSpec;
use airdnd_trust::{PrivacyLevel, PrivacyPolicy};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why an executor declined an offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeclineReason {
    /// Not accepting work at all.
    NotAccepting,
    /// The program failed static verification.
    ProgramInvalid,
    /// Declared memory exceeds what this node offers.
    InsufficientMemory,
    /// A data query has no adequate local match.
    DataUnavailable,
    /// Backlog too deep to make the deadline plausible.
    Overloaded,
    /// The local privacy policy forbids the derived output.
    PrivacyViolation,
}

impl fmt::Display for DeclineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeclineReason::NotAccepting => "not accepting work",
            DeclineReason::ProgramInvalid => "program failed verification",
            DeclineReason::InsufficientMemory => "insufficient memory",
            DeclineReason::DataUnavailable => "requested data unavailable",
            DeclineReason::Overloaded => "backlog too deep",
            DeclineReason::PrivacyViolation => "privacy policy violation",
        };
        f.write_str(s)
    }
}

/// Result of a completed local execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionResult {
    /// When the result is ready to transmit.
    pub finish: SimTime,
    /// The program's outputs (possibly corrupted if this node is
    /// byzantine).
    pub outputs: Vec<i64>,
    /// Gas actually consumed.
    pub gas_used: u64,
}

/// Simulated execution engine of one node.
#[derive(Clone, Debug)]
pub struct ExecutorSim {
    gas_rate: u64,
    mem_bytes: u64,
    accepting: bool,
    byzantine: bool,
    busy_until: SimTime,
    queued_gas: u64,
    running: BTreeMap<u64, u64>, // task id → reserved gas
    total_gas_executed: u64,
    tasks_executed: u64,
}

impl ExecutorSim {
    /// Creates an executor with the given speed (gas/s) and memory.
    ///
    /// # Panics
    ///
    /// Panics if `gas_rate` is zero — a node that cannot execute should
    /// simply not accept work.
    pub fn new(gas_rate: u64, mem_bytes: u64) -> Self {
        assert!(gas_rate > 0, "executor needs a positive gas rate");
        ExecutorSim {
            gas_rate,
            mem_bytes,
            accepting: true,
            byzantine: false,
            busy_until: SimTime::ZERO,
            queued_gas: 0,
            running: BTreeMap::new(),
            total_gas_executed: 0,
            tasks_executed: 0,
        }
    }

    /// Execution speed, gas per second.
    pub fn gas_rate(&self) -> u64 {
        self.gas_rate
    }

    /// Memory offered to tasks, bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Enables/disables accepting new work.
    pub fn set_accepting(&mut self, accepting: bool) {
        self.accepting = accepting;
    }

    /// Whether the node accepts new work.
    pub fn is_accepting(&self) -> bool {
        self.accepting
    }

    /// Makes this executor return corrupted results (for RQ3 experiments).
    pub fn set_byzantine(&mut self, byzantine: bool) {
        self.byzantine = byzantine;
    }

    /// Whether this executor corrupts results.
    pub fn is_byzantine(&self) -> bool {
        self.byzantine
    }

    /// Gas reserved by admitted-but-unfinished tasks.
    pub fn backlog_gas(&self) -> u64 {
        self.queued_gas
    }

    /// Lifetime totals: `(tasks_executed, gas_executed)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.tasks_executed, self.total_gas_executed)
    }

    /// Estimated completion time if a task of `gas` were admitted at `now`.
    pub fn eta(&self, now: SimTime, gas: u64) -> SimTime {
        let start = self.busy_until.max(now);
        start + SimDuration::from_secs_f64(gas as f64 / self.gas_rate as f64)
    }

    /// Admission control: all the RQ3 feasibility checks.
    ///
    /// # Errors
    ///
    /// Returns the first failing [`DeclineReason`].
    pub fn admit(
        &self,
        now: SimTime,
        task: &TaskSpec,
        catalog: &DataCatalog,
        privacy: &PrivacyPolicy<DataType>,
        output_level: PrivacyLevel,
        max_backlog_factor: f64,
    ) -> Result<SimTime, DeclineReason> {
        if !self.accepting {
            return Err(DeclineReason::NotAccepting);
        }
        if task.requirements.memory_bytes > self.mem_bytes {
            return Err(DeclineReason::InsufficientMemory);
        }
        if verify(task.program.clone()).is_err() {
            return Err(DeclineReason::ProgramInvalid);
        }
        for query in &task.inputs {
            if !privacy.allows(&query.data_type, output_level) {
                return Err(DeclineReason::PrivacyViolation);
            }
        }
        if airdnd_data::match_score(catalog, &task.inputs, now) <= 0.0 {
            return Err(DeclineReason::DataUnavailable);
        }
        let backlog_secs = self.queued_gas as f64 / self.gas_rate as f64;
        if backlog_secs > task.requirements.deadline.as_secs_f64() * max_backlog_factor {
            return Err(DeclineReason::Overloaded);
        }
        Ok(self.eta(now, task.requirements.gas))
    }

    /// Reserves backlog for an admitted task (call right after a
    /// successful [`ExecutorSim::admit`]).
    pub fn reserve(&mut self, task_id: u64, gas: u64) {
        self.queued_gas += gas;
        self.running.insert(task_id, gas);
    }

    /// Runs the task's program against `inputs`, advancing the busy
    /// horizon by the *measured* gas. Releases the reservation.
    ///
    /// # Errors
    ///
    /// Returns the VM [`Trap`] if the program faults; the reservation is
    /// still released and time is charged for the gas burned up to the
    /// trap's limit.
    pub fn execute(
        &mut self,
        now: SimTime,
        task_id: u64,
        task: &TaskSpec,
        inputs: &[i64],
    ) -> Result<ExecutionResult, Trap> {
        let reserved = self.running.remove(&task_id).unwrap_or(0);
        self.queued_gas = self.queued_gas.saturating_sub(reserved);
        let verified = verify(task.program.clone()).map_err(|_| Trap::OutOfGas { limit: 0 })?;
        let limits = ExecLimits {
            max_gas: task.requirements.gas,
            max_outputs: 65_536,
        };
        let start = self.busy_until.max(now);
        match execute(&verified, inputs, limits) {
            Ok(exec) => {
                let finish =
                    start + SimDuration::from_secs_f64(exec.gas_used as f64 / self.gas_rate as f64);
                self.busy_until = finish;
                self.total_gas_executed += exec.gas_used;
                self.tasks_executed += 1;
                let mut outputs = exec.outputs;
                if self.byzantine {
                    // Corrupt deterministically: flip the low bits.
                    for w in &mut outputs {
                        *w ^= 0x0BAD;
                    }
                    if outputs.is_empty() {
                        outputs.push(0x0BAD);
                    }
                }
                Ok(ExecutionResult {
                    finish,
                    outputs,
                    gas_used: exec.gas_used,
                })
            }
            Err(trap) => {
                // Charge the declared budget: a trapping task still burned time.
                let burned = task.requirements.gas;
                self.busy_until =
                    start + SimDuration::from_secs_f64(burned as f64 / self.gas_rate as f64);
                Err(trap)
            }
        }
    }

    /// Cancels a reservation without executing (requester cancelled).
    pub fn cancel(&mut self, task_id: u64) {
        if let Some(gas) = self.running.remove(&task_id) {
            self.queued_gas = self.queued_gas.saturating_sub(gas);
        }
    }
}

/// Builds the VM input words for a task from the best catalog matches:
/// the payloads of the chosen items, concatenated in query order.
///
/// Returns `None` if any query has no adequate match (admission should
/// have caught this; races between admit and execute can still surface
/// it).
pub fn gather_inputs(
    catalog: &DataCatalog,
    store: &BTreeMap<u64, Vec<i64>>,
    queries: &[DataQuery],
    now: SimTime,
) -> Option<Vec<i64>> {
    let mut words = Vec::new();
    for query in queries {
        let (item, _) = airdnd_data::best_match(catalog, query, now)?;
        let payload = store.get(&item.id.raw())?;
        words.extend_from_slice(payload);
    }
    Some(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_data::{DataQuery, QualityDescriptor};
    use airdnd_task::{library, Program, ResourceRequirements, TaskId};

    fn task_with_gas(gas: u64) -> TaskSpec {
        TaskSpec::new(TaskId::new(1), "sum", library::sum_inputs().into_inner()).with_requirements(
            ResourceRequirements {
                gas,
                memory_bytes: 1 << 20,
                deadline: SimDuration::from_secs(2),
                ..Default::default()
            },
        )
    }

    fn stocked_catalog(now: SimTime) -> (DataCatalog, BTreeMap<u64, Vec<i64>>) {
        let mut catalog = DataCatalog::new(8);
        let id = catalog.insert(
            DataType::OccupancyGrid,
            32,
            QualityDescriptor::basic(now, 0.9, 2.0),
        );
        let mut store = BTreeMap::new();
        store.insert(id.raw(), vec![1, 2, 3, 4]);
        (catalog, store)
    }

    fn permissive_privacy() -> PrivacyPolicy<DataType> {
        PrivacyPolicy::new(PrivacyLevel::Raw)
    }

    #[test]
    fn admit_happy_path_gives_eta() {
        let exec = ExecutorSim::new(1_000_000, 1 << 30);
        let now = SimTime::from_secs(1);
        let (catalog, _) = stocked_catalog(now);
        let task = task_with_gas(500_000).with_input(DataQuery::of_type(DataType::OccupancyGrid));
        let eta = exec
            .admit(
                now,
                &task,
                &catalog,
                &permissive_privacy(),
                PrivacyLevel::Derived,
                2.0,
            )
            .unwrap();
        assert_eq!(eta, now + SimDuration::from_millis(500));
    }

    #[test]
    fn admission_gates() {
        let now = SimTime::from_secs(1);
        let (catalog, _) = stocked_catalog(now);
        let privacy = permissive_privacy();
        let base = task_with_gas(1000).with_input(DataQuery::of_type(DataType::OccupancyGrid));

        let mut closed = ExecutorSim::new(1_000_000, 1 << 30);
        closed.set_accepting(false);
        assert_eq!(
            closed.admit(now, &base, &catalog, &privacy, PrivacyLevel::Derived, 2.0),
            Err(DeclineReason::NotAccepting)
        );

        let small = ExecutorSim::new(1_000_000, 1 << 10);
        assert_eq!(
            small.admit(now, &base, &catalog, &privacy, PrivacyLevel::Derived, 2.0),
            Err(DeclineReason::InsufficientMemory)
        );

        let exec = ExecutorSim::new(1_000_000, 1 << 30);
        let mut bad_program = base.clone();
        bad_program.program = Program::new(vec![airdnd_task::Instr::Pop], 0);
        assert_eq!(
            exec.admit(
                now,
                &bad_program,
                &catalog,
                &privacy,
                PrivacyLevel::Derived,
                2.0
            ),
            Err(DeclineReason::ProgramInvalid)
        );

        let mut wrong_data = base.clone();
        wrong_data.inputs[0].data_type = DataType::TrackList;
        assert_eq!(
            exec.admit(
                now,
                &wrong_data,
                &catalog,
                &privacy,
                PrivacyLevel::Derived,
                2.0
            ),
            Err(DeclineReason::DataUnavailable)
        );

        let strict = PrivacyPolicy::new(PrivacyLevel::Aggregate);
        assert_eq!(
            exec.admit(now, &base, &catalog, &strict, PrivacyLevel::Derived, 2.0),
            Err(DeclineReason::PrivacyViolation)
        );
    }

    #[test]
    fn overload_gate_uses_backlog() {
        let mut exec = ExecutorSim::new(1_000_000, 1 << 30);
        let now = SimTime::from_secs(1);
        let (catalog, _) = stocked_catalog(now);
        let task = task_with_gas(1000).with_input(DataQuery::of_type(DataType::OccupancyGrid));
        // 5 s of backlog vs 2 s deadline × factor 2 = 4 s bound → overload.
        exec.reserve(99, 5_000_000);
        assert_eq!(
            exec.admit(
                now,
                &task,
                &catalog,
                &permissive_privacy(),
                PrivacyLevel::Derived,
                2.0
            ),
            Err(DeclineReason::Overloaded)
        );
        exec.cancel(99);
        assert!(exec
            .admit(
                now,
                &task,
                &catalog,
                &permissive_privacy(),
                PrivacyLevel::Derived,
                2.0
            )
            .is_ok());
    }

    #[test]
    fn execute_runs_real_bytecode() {
        let mut exec = ExecutorSim::new(1_000_000, 1 << 30);
        let now = SimTime::from_secs(1);
        let task = task_with_gas(1_000_000);
        exec.reserve(1, 1_000_000);
        let result = exec.execute(now, 1, &task, &[10, 20, 30]).unwrap();
        assert_eq!(result.outputs, vec![60]);
        assert!(result.gas_used > 0);
        assert!(result.finish > now);
        assert_eq!(exec.backlog_gas(), 0, "reservation released");
        assert_eq!(exec.totals().0, 1);
    }

    #[test]
    fn sequential_tasks_queue_on_busy_horizon() {
        let mut exec = ExecutorSim::new(1_000, 1 << 30); // slow: 1k gas/s
        let now = SimTime::ZERO;
        let task = task_with_gas(1_000_000);
        let r1 = exec.execute(now, 1, &task, &[1]).unwrap();
        let r2 = exec.execute(now, 2, &task, &[1]).unwrap();
        assert!(r2.finish > r1.finish, "second task starts after the first");
        let gap = r2.finish.saturating_since(r1.finish);
        assert!((gap.as_secs_f64() - r1.gas_used as f64 / 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn byzantine_executor_corrupts_outputs() {
        let mut honest = ExecutorSim::new(1_000_000, 1 << 30);
        let mut byz = ExecutorSim::new(1_000_000, 1 << 30);
        byz.set_byzantine(true);
        let task = task_with_gas(1_000_000);
        let h = honest.execute(SimTime::ZERO, 1, &task, &[5, 5]).unwrap();
        let b = byz.execute(SimTime::ZERO, 1, &task, &[5, 5]).unwrap();
        assert_ne!(h.outputs, b.outputs);
        assert_eq!(h.outputs, vec![10]);
    }

    #[test]
    fn trapping_task_charges_time() {
        let mut exec = ExecutorSim::new(1_000, 1 << 30);
        // Divide by zero traps immediately.
        let mut task = task_with_gas(5_000);
        task.program = Program::new(
            vec![
                airdnd_task::Instr::Push(1),
                airdnd_task::Instr::Push(0),
                airdnd_task::Instr::Div,
            ],
            0,
        );
        let before = exec.eta(SimTime::ZERO, 0);
        let err = exec.execute(SimTime::ZERO, 1, &task, &[]).unwrap_err();
        assert!(matches!(err, Trap::DivByZero { .. }));
        let after = exec.eta(SimTime::ZERO, 0);
        assert!(after > before, "trap still burned the declared budget");
    }

    #[test]
    fn gather_inputs_concatenates_in_query_order() {
        let now = SimTime::from_secs(1);
        let (mut catalog, mut store) = stocked_catalog(now);
        let id2 = catalog.insert(
            DataType::TrackList,
            16,
            QualityDescriptor::basic(now, 0.9, 2.0),
        );
        store.insert(id2.raw(), vec![9, 9]);
        let queries = [
            DataQuery::of_type(DataType::TrackList),
            DataQuery::of_type(DataType::OccupancyGrid),
        ];
        let words = gather_inputs(&catalog, &store, &queries, now).unwrap();
        assert_eq!(words, vec![9, 9, 1, 2, 3, 4]);
        // A query with no match yields None.
        let missing = [DataQuery::of_type(DataType::DetectionList)];
        assert!(gather_inputs(&catalog, &store, &missing, now).is_none());
    }
}
