//! # airdnd-core — the AirDnD orchestrator
//!
//! This crate is the paper's primary contribution: **A**synchronous,
//! **I**n-**R**ange, **D**ynamic a**n**d **D**istributed orchestration of
//! compute tasks across a spontaneous vehicle/edge mesh. Every node runs
//! the same [`OrchestratorNode`]; there is no coordinator. The flow for one
//! task:
//!
//! 1. **Describe** — the application submits a [`TaskSpec`]
//!    (Model 2) whose inputs are Model-3 [`DataQuery`]s; the data itself
//!    never moves.
//! 2. **Select** (RQ1, [`selection`]) — mesh members from the Model-1
//!    [`MeshDescriptor`] are scored on compute headroom, link quality, data
//!    quality, trust and predicted in-range time; weights are pluggable
//!    (ablated in experiment T5).
//! 3. **Offload** (RQ2, [`protocol`]) — an asynchronous offer → accept →
//!    result exchange with leases, timeouts and retry-on-next-candidate.
//!    Nothing ever waits on a global round (ablated in F12).
//! 4. **Execute & verify** (RQ3, [`executor`]) — the receiving node
//!    *actually runs* the TaskVM program against its local data, metered by
//!    gas; requesters optionally offload redundantly and vote on result
//!    digests, feeding a reputation table.
//!
//! [`TaskSpec`]: airdnd_task::TaskSpec
//! [`DataQuery`]: airdnd_data::DataQuery
//! [`MeshDescriptor`]: airdnd_mesh::MeshDescriptor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod executor;
pub mod node;
pub mod protocol;
pub mod selection;
pub mod stats;

pub use config::{OrchestratorConfig, SelectionWeights};
pub use executor::{DeclineReason, ExecutorSim};
pub use node::{NodeAction, NodeEvent, OrchestratorNode, WireMsg};
pub use protocol::{OffloadMsg, TaskOutcome};
pub use selection::{score_candidates, CandidateScore};
pub use stats::{OrchestratorStats, SessionRecord};
