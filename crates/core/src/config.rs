//! Orchestrator configuration: selection weights and protocol timing.

use airdnd_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Weights of the RQ1 node-selection criteria. Each component scores in
/// `[0, 1]`; the total is the weighted mean of the non-zero-weight
/// components. Zeroing a weight removes the criterion — that is exactly
/// what experiment T5 ablates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectionWeights {
    /// Compute headroom vs. the task deadline.
    pub compute: f64,
    /// Radio link quality.
    pub link: f64,
    /// Data-quality match (Model 3).
    pub data: f64,
    /// Reputation score (RQ3).
    pub trust: f64,
    /// Predicted time the candidate stays in range.
    pub in_range: f64,
}

impl Default for SelectionWeights {
    /// The full AirDnD blend.
    fn default() -> Self {
        SelectionWeights {
            compute: 1.0,
            link: 0.8,
            data: 1.0,
            trust: 0.6,
            in_range: 0.8,
        }
    }
}

impl SelectionWeights {
    /// Compute only — the naive "fastest node wins" policy.
    pub fn compute_only() -> Self {
        SelectionWeights {
            compute: 1.0,
            link: 0.0,
            data: 0.0,
            trust: 0.0,
            in_range: 0.0,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.compute + self.link + self.data + self.trust + self.in_range
    }
}

/// Tuning of the orchestrator node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Selection weights (RQ1).
    pub weights: SelectionWeights,
    /// Radio range assumed for in-range prediction, metres.
    pub assumed_range_m: f64,
    /// How long to wait for an offer response before trying the next
    /// candidate.
    pub offer_timeout: SimDuration,
    /// How long past the accepted ETA to wait for a result.
    pub result_grace: SimDuration,
    /// Maximum distinct candidates tried per task.
    pub max_candidates: usize,
    /// Number of executors per task (>1 enables digest voting, RQ3).
    pub redundancy: usize,
    /// Minimum selection score a candidate must reach to be offered work.
    pub min_score: f64,
    /// Maximum backlog an executor may accumulate, as a multiple of the
    /// task deadline, before it declines.
    pub max_backlog_factor: f64,
    /// Probability of spot-checking an accepted result by local
    /// re-execution (0 disables).
    pub spot_check_probability: f64,
    /// Reputation threshold below which candidates are skipped entirely.
    pub trust_floor: f64,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            weights: SelectionWeights::default(),
            assumed_range_m: 300.0,
            offer_timeout: SimDuration::from_millis(200),
            result_grace: SimDuration::from_millis(500),
            max_candidates: 4,
            redundancy: 1,
            min_score: 0.05,
            max_backlog_factor: 2.0,
            spot_check_probability: 0.0,
            trust_floor: 0.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_enable_everything() {
        let w = SelectionWeights::default();
        assert!(
            w.compute > 0.0 && w.link > 0.0 && w.data > 0.0 && w.trust > 0.0 && w.in_range > 0.0
        );
        assert!(w.total() > 0.0);
    }

    #[test]
    fn compute_only_disables_the_rest() {
        let w = SelectionWeights::compute_only();
        assert_eq!(w.total(), 1.0);
        assert_eq!(w.link + w.data + w.trust + w.in_range, 0.0);
    }

    #[test]
    fn default_config_is_consistent() {
        let c = OrchestratorConfig::default();
        assert!(c.redundancy >= 1);
        assert!(c.max_candidates >= c.redundancy);
        assert!(c.offer_timeout > SimDuration::ZERO);
        assert!((0.0..=1.0).contains(&c.spot_check_probability));
    }
}
