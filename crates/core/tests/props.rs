//! Property-based tests for the offload protocol's liveness and
//! bookkeeping: whatever the network does (accepts, declines, results,
//! silence, duplicates, strangers), every submitted task terminates
//! exactly once, and executor accounting never goes negative.

use airdnd_core::protocol::{OffloadMsg, RequesterBook, RequesterDirective};
use airdnd_core::{ExecutorSim, OrchestratorConfig};
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use airdnd_trust::ReputationTable;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum NetEvent {
    Accept { peer: u64, eta_ms: u64 },
    Decline { peer: u64 },
    Result { peer: u64, words: Vec<i64> },
    Silence,
}

fn arb_event() -> impl Strategy<Value = NetEvent> {
    prop_oneof![
        (1u64..8, 0u64..500).prop_map(|(peer, eta_ms)| NetEvent::Accept { peer, eta_ms }),
        (1u64..8).prop_map(|peer| NetEvent::Decline { peer }),
        (1u64..8, proptest::collection::vec(-3i64..3, 0..4))
            .prop_map(|(peer, words)| NetEvent::Result { peer, words }),
        Just(NetEvent::Silence),
    ]
}

fn spec(deadline_ms: u64) -> TaskSpec {
    TaskSpec::new(
        TaskId::new(1),
        "p",
        Program::new(vec![airdnd_task::Instr::Halt], 0),
    )
    .with_requirements(ResourceRequirements {
        deadline: SimDuration::from_millis(deadline_ms),
        ..Default::default()
    })
}

proptest! {
    /// Liveness + uniqueness: under any event sequence, the task finishes
    /// exactly once (by the deadline tick at the latest) and the book
    /// drains.
    #[test]
    fn every_task_terminates_exactly_once(
        events in proptest::collection::vec(arb_event(), 0..40),
        redundancy in 1usize..4,
        deadline_ms in 200u64..2000,
    ) {
        let cfg = OrchestratorConfig {
            redundancy,
            max_candidates: 6,
            ..OrchestratorConfig::default()
        };
        let mut trust = ReputationTable::default();
        let mut book = RequesterBook::new();
        let candidates: Vec<NodeAddr> = (1..=7u64).map(NodeAddr::new).collect();
        let mut finished = 0usize;
        let count_finished = |directives: &[RequesterDirective]| {
            directives
                .iter()
                .filter(|d| matches!(d, RequesterDirective::Finished { .. }))
                .count()
        };
        let d = book.submit(SimTime::ZERO, spec(deadline_ms), candidates, &cfg);
        finished += count_finished(&d);

        let mut now_ms = 0u64;
        for event in events {
            now_ms += 37;
            let now = SimTime::from_millis(now_ms);
            let task = TaskId::new(1);
            let d = match event {
                NetEvent::Accept { peer, eta_ms } => book.on_accept(
                    now,
                    NodeAddr::new(peer),
                    task,
                    now + SimDuration::from_millis(eta_ms),
                    &cfg,
                ),
                NetEvent::Decline { peer } => book.on_decline(now, NodeAddr::new(peer), task, &cfg),
                NetEvent::Result { peer, words } => {
                    book.on_result(now, NodeAddr::new(peer), task, words, 10, &mut trust)
                }
                NetEvent::Silence => book.on_tick(now, &cfg, &mut trust),
            };
            finished += count_finished(&d);
            prop_assert!(finished <= 1, "a task may finish at most once");
        }
        // Drive time well past the deadline: the book must drain.
        for _ in 0..3 {
            now_ms += deadline_ms + 1000;
            let d = book.on_tick(SimTime::from_millis(now_ms), &cfg, &mut trust);
            finished += count_finished(&d);
        }
        prop_assert_eq!(finished, 1, "exactly one terminal outcome");
        prop_assert!(book.is_empty(), "no dangling state");
    }

    /// Executor accounting: reservations and cancellations balance; the
    /// backlog is always the sum of live reservations.
    #[test]
    fn executor_backlog_accounting(ops in proptest::collection::vec((0u64..16, any::<bool>(), 1u64..1_000_000), 0..64)) {
        let mut exec = ExecutorSim::new(1_000_000, 1 << 30);
        let mut live: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (id, reserve, gas) in ops {
            if reserve {
                // Reserving an id twice overwrites in `running`; mirror that
                // by cancelling first (the protocol never double-reserves,
                // but accounting must stay sane anyway).
                if live.contains_key(&id) {
                    exec.cancel(id);
                    live.remove(&id);
                }
                exec.reserve(id, gas);
                live.insert(id, gas);
            } else {
                exec.cancel(id);
                live.remove(&id);
            }
            prop_assert_eq!(exec.backlog_gas(), live.values().sum::<u64>());
        }
    }

    /// ETA is monotone in requested gas and never before `now`.
    #[test]
    fn eta_monotone(gas1 in 0u64..10_000_000, gas2 in 0u64..10_000_000, now_ms in 0u64..10_000) {
        let exec = ExecutorSim::new(1_000_000, 1 << 30);
        let now = SimTime::from_millis(now_ms);
        let (lo, hi) = if gas1 <= gas2 { (gas1, gas2) } else { (gas2, gas1) };
        prop_assert!(exec.eta(now, lo) <= exec.eta(now, hi));
        prop_assert!(exec.eta(now, lo) >= now);
    }
}

/// Late accepts after termination are answered with a cancel, repeatedly
/// and harmlessly.
#[test]
fn late_accepts_always_cancelled() {
    let cfg = OrchestratorConfig::default();
    let mut book = RequesterBook::new();
    for i in 0..5u64 {
        let d = book.on_accept(
            SimTime::from_secs(i),
            NodeAddr::new(9),
            TaskId::new(42),
            SimTime::from_secs(i + 1),
            &cfg,
        );
        assert_eq!(
            d,
            vec![RequesterDirective::SendCancel {
                to: NodeAddr::new(9),
                task: TaskId::new(42)
            }]
        );
    }
    // Offer wire sizes remain stable for the cancel path.
    assert_eq!(
        OffloadMsg::Cancel {
            task: TaskId::new(42)
        }
        .wire_size_bytes(),
        16
    );
}
