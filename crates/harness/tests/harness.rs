//! Harness internals: grid expansion, seed derivation, executor
//! determinism, aggregate math, and workload sharding/merging.

use airdnd_harness::{
    derive_seed, parse_shard, render_csv, render_json, render_shard, run_sweep, summarize_cells,
    Aggregate, AnyWorkload, ExperimentResult, FnWorkload, Manifest, RunPlan, Shard, SweepReport,
    SweepSpec, Table,
};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, PartialEq)]
struct Cfg {
    a: usize,
    b: &'static str,
    seed: u64,
}

fn demo_spec() -> SweepSpec<Cfg> {
    SweepSpec::new(Cfg {
        a: 0,
        b: "-",
        seed: 0,
    })
    .axis("a", [1usize, 2, 3], |c, &v| c.a = v)
    .axis("b", ["x", "y"], |c, &v| c.b = v)
    .replicates(2)
    .base_seed(99)
    .seed_with(|c, s| c.seed = s)
}

#[test]
fn expansion_counts_and_order() {
    let m = demo_spec().manifest();
    assert_eq!(m.cell_count, 6);
    assert_eq!(m.replicates, 2);
    assert_eq!(m.len(), 12);
    assert_eq!(m.axis_names, vec!["a".to_string(), "b".to_string()]);
    // First axis slowest, replicates innermost.
    let coords: Vec<(usize, &str, usize)> = m
        .runs
        .iter()
        .map(|r| (r.config.a, r.config.b, r.replicate))
        .collect();
    assert_eq!(
        coords,
        vec![
            (1, "x", 0),
            (1, "x", 1),
            (1, "y", 0),
            (1, "y", 1),
            (2, "x", 0),
            (2, "x", 1),
            (2, "y", 0),
            (2, "y", 1),
            (3, "x", 0),
            (3, "x", 1),
            (3, "y", 0),
            (3, "y", 1),
        ]
    );
    for (i, run) in m.runs.iter().enumerate() {
        assert_eq!(run.run_index, i);
        assert_eq!(run.cell, i / 2);
        assert_eq!(
            run.labels,
            vec![run.config.a.to_string(), run.config.b.to_string()]
        );
        assert_eq!(
            run.seed, run.config.seed,
            "seed_with must install the derived seed"
        );
    }
}

#[test]
fn seed_derivation_is_stable_and_splittable() {
    // Pure function of (base, index): growing or reordering the grid never
    // changes existing runs' seeds.
    for index in [0u64, 1, 17, 1_000_000] {
        assert_eq!(derive_seed(7, index), derive_seed(7, index));
    }
    // Distinct inputs give distinct seeds (no accidental collisions among
    // small indices, the common case).
    let seeds: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
    let mut dedup = seeds.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), seeds.len(), "low-index seeds must not collide");
    // Base seed matters.
    assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    // Pinned values: changing the derivation is a breaking change for every
    // recorded experiment, so it must be deliberate.
    assert_eq!(derive_seed(0, 0), 5161475226727719166);
    assert_eq!(derive_seed(42, 3), 14634866120107170114);
}

#[test]
fn per_replicate_seeds_are_common_across_cells() {
    // Common random numbers: replicate k draws the same seed in every grid
    // cell, so paired strategy comparisons see identical fleets.
    let m = demo_spec()
        .seed_mode(airdnd_harness::SeedMode::PerReplicate)
        .manifest();
    for cell in 1..m.cell_count {
        for rep in 0..m.replicates {
            assert_eq!(
                m.cell_runs(cell)[rep].seed,
                m.cell_runs(0)[rep].seed,
                "cell {cell} replicate {rep} must reuse cell 0's seed"
            );
        }
    }
    // Replicates still differ from each other.
    assert_ne!(m.cell_runs(0)[0].seed, m.cell_runs(0)[1].seed);
    // And the per-run default keeps every run independent.
    let per_run = demo_spec().manifest();
    assert_ne!(per_run.cell_runs(0)[0].seed, per_run.cell_runs(1)[0].seed);
}

#[test]
fn parallel_equals_sequential_byte_for_byte() {
    let manifest = demo_spec().manifest();
    // A runner whose output depends on everything a real scenario would
    // use: config, seed, and some float math.
    let runner = |plan: &airdnd_harness::RunPlan<Cfg>| {
        let x = (plan.seed % 1000) as f64 / 7.0 + plan.config.a as f64;
        (
            plan.run_index,
            format!("{}:{}:{:.9}", plan.config.b, plan.seed, x.sin()),
        )
    };
    let seq = run_sweep(&manifest, 1, runner);
    let par = run_sweep(&manifest, 4, runner);
    assert_eq!(seq.threads, 1);
    assert_eq!(
        seq.results, par.results,
        "manifest-order reassembly must hide parallelism"
    );

    // And the rendered artifacts are byte-identical too.
    let report = |outcome: &airdnd_harness::SweepOutcome<(usize, String)>| {
        let cells = summarize_cells(&manifest, &outcome.results, |(i, s)| {
            vec![("i", *i as f64), ("len", s.len() as f64)]
        });
        SweepReport {
            name: "demo".into(),
            title: "demo sweep".into(),
            axis_names: manifest.axis_names.clone(),
            replicates: manifest.replicates,
            base_seed: 99,
            cells,
        }
    };
    assert_eq!(render_json(&report(&seq)), render_json(&report(&par)));
    assert_eq!(render_csv(&report(&seq)), render_csv(&report(&par)));
}

#[test]
fn executor_handles_empty_and_oversubscribed_pools() {
    let empty = SweepSpec::new(Cfg {
        a: 0,
        b: "-",
        seed: 0,
    })
    .axis("a", std::iter::empty::<usize>(), |c, &v| c.a = v)
    .manifest();
    assert!(empty.is_empty());
    let outcome = run_sweep(&empty, 8, |_| 1u32);
    assert!(outcome.results.is_empty());

    // More threads than runs: clamped, still complete and ordered.
    let tiny = SweepSpec::new(Cfg {
        a: 0,
        b: "-",
        seed: 0,
    })
    .axis("a", [5usize], |c, &v| c.a = v)
    .manifest();
    let outcome = run_sweep(&tiny, 64, |p| p.config.a);
    assert_eq!(outcome.results, vec![5]);
    assert_eq!(outcome.threads, 1);
}

#[test]
fn aggregate_math_on_fixed_sample() {
    let a = Aggregate::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
    assert_eq!(a.n, 8);
    assert!((a.mean - 5.0).abs() < 1e-12);
    // Sample stddev with n−1: ss = 32, 32/7 → sqrt ≈ 2.13809.
    assert!((a.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    assert!((a.p50 - 4.5).abs() < 1e-12, "p50 {}", a.p50);
    // p95 over 8 samples: rank 6.65 → 7 + 0.65·(9−7) = 8.3.
    assert!((a.p95 - 8.3).abs() < 1e-12, "p95 {}", a.p95);
    // CI95 with df = 7: t = 2.365.
    let expect_ci = 2.365 * (32.0f64 / 7.0).sqrt() / (8.0f64).sqrt();
    assert!((a.ci95 - expect_ci).abs() < 1e-12, "ci95 {}", a.ci95);

    let single = Aggregate::from_samples(&[3.25]);
    assert_eq!(single.n, 1);
    assert_eq!(single.mean, 3.25);
    assert_eq!(single.stddev, 0.0);
    assert_eq!(single.ci95, 0.0);
    assert_eq!(single.p50, 3.25);
    assert_eq!(single.p95, 3.25);

    let none = Aggregate::from_samples(&[]);
    assert_eq!(none.n, 0);
    assert_eq!(none.mean, 0.0);
}

// --- Workload API + sharding -------------------------------------------

#[derive(Clone, Copy, Debug, Serialize)]
struct ToyConfig {
    size: usize,
    seed: u64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct ToyReport {
    score: f64,
    echo: String,
}

/// A small deterministic workload exercising the full generic path:
/// typed config, typed report, metrics, tabulation.
fn toy_workload() -> FnWorkload<ToyConfig, ToyReport> {
    FnWorkload {
        name: "toy",
        title: "toy workload",
        spec: |quick| {
            let points: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3, 4, 5] };
            SweepSpec::new(ToyConfig { size: 0, seed: 0 })
                .axis("size", points.to_vec(), |c, &n| c.size = n)
                .replicates(3)
                .base_seed(11)
                .seed_with(|c, s| c.seed = s)
        },
        run: |plan| ToyReport {
            // Irrational float math: any seed or ordering slip shows up.
            score: ((plan.config.seed % 997) as f64 / 7.0 + plan.config.size as f64).sin(),
            echo: format!("{}:{}", plan.config.size, plan.config.seed),
        },
        metrics: |r| vec![("score", r.score), ("echo_len", r.echo.len() as f64)],
        tabulate: |manifest: &Manifest<ToyConfig>, results: &[ToyReport]| {
            let mut table = Table::new("TOY", "toy", &["size", "score", "echo"]);
            for (plan, r) in manifest.runs.iter().zip(results) {
                table.row(vec![
                    plan.config.size.to_string(),
                    format!("{:.12}", r.score),
                    r.echo.clone(),
                ]);
            }
            ExperimentResult::table_only(table)
        },
        trace: None,
        observe: None,
    }
}

#[test]
fn shard_ranges_partition_the_manifest() {
    let manifest = (toy_workload().spec)(false).manifest();
    let len = manifest.len();
    for count in 1..=len + 2 {
        let mut covered = Vec::new();
        for index in 0..count {
            let range = manifest.shard_range(Shard::new(index, count));
            covered.extend(range.clone());
            // Balanced: no shard more than one run larger than another.
            assert!(range.len() <= len / count + 1);
        }
        assert_eq!(covered, (0..len).collect::<Vec<_>>(), "count {count}");
    }
}

#[test]
fn shard_spec_parses_and_rejects() {
    assert_eq!("0/2".parse::<Shard>().unwrap(), Shard::new(0, 2));
    assert_eq!("3/8".parse::<Shard>().unwrap(), Shard::new(3, 8));
    for bad in ["", "1", "2/2", "5/2", "a/2", "1/0", "1/b"] {
        assert!(bad.parse::<Shard>().is_err(), "{bad:?} must not parse");
    }
}

#[test]
fn sharded_merge_is_byte_identical_to_unsharded() {
    let workload = toy_workload();
    let unsharded = workload.execute(false, 4, &mut |_| {});

    for count in [2usize, 3, 7] {
        let mut artifacts = Vec::new();
        for index in 0..count {
            let artifact = workload.execute_shard(false, 2, Shard::new(index, count), &mut |_| {});
            // Cross a "process boundary": JSON text out, JSON text in.
            artifacts.push(parse_shard(&render_shard(&artifact)).expect("round-trips"));
        }
        // Merging must not care about arrival order.
        artifacts.reverse();
        let merged = workload.merge_shards(false, &artifacts).expect("merges");
        assert_eq!(
            unsharded.result.table.render(),
            merged.result.table.render(),
            "{count} shards: table"
        );
        assert_eq!(
            render_json(&unsharded.aggregate),
            render_json(&merged.aggregate),
            "{count} shards: JSON artifact"
        );
        assert_eq!(
            render_csv(&unsharded.aggregate),
            render_csv(&merged.aggregate),
            "{count} shards: CSV artifact"
        );
    }
}

#[test]
fn merge_rejects_incomplete_or_inconsistent_shards() {
    let workload = toy_workload();
    let s0 = workload.execute_shard(true, 1, Shard::new(0, 2), &mut |_| {});
    let s1 = workload.execute_shard(true, 1, Shard::new(1, 2), &mut |_| {});

    // Missing shard.
    let err = workload
        .merge_shards(true, std::slice::from_ref(&s0))
        .unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");

    // Duplicate shard.
    let err = workload
        .merge_shards(true, &[s0.clone(), s0.clone(), s1.clone()])
        .unwrap_err();
    assert!(err.to_string().contains("two shards"), "{err}");

    // Quick/full mismatch (different manifest size).
    let err = workload.merge_shards(false, &[s0.clone(), s1]).unwrap_err();
    assert!(err.to_string().contains("manifest"), "{err}");

    // Foreign artifact.
    let mut foreign = s0;
    foreign.workload = "other".to_owned();
    let err = workload.merge_shards(true, &[foreign]).unwrap_err();
    assert!(err.to_string().contains("belongs"), "{err}");
}

/// Shard artifacts are stamped with the manifest fingerprint; a merge must
/// reject artifacts cut from a grid that has since changed, even when the
/// run count happens to match — the driver's resume path leans on this.
#[test]
fn merge_rejects_stale_fingerprints() {
    let workload = toy_workload();
    let fresh = workload.fingerprint(true);
    assert_eq!(fresh, workload.fingerprint(true), "fingerprint is stable");
    assert_ne!(
        fresh,
        workload.fingerprint(false),
        "quick and full grids must fingerprint differently"
    );

    let s0 = workload.execute_shard(true, 1, Shard::new(0, 2), &mut |_| {});
    let s1 = workload.execute_shard(true, 1, Shard::new(1, 2), &mut |_| {});
    assert_eq!(s0.fingerprint, airdnd_harness::fingerprint_hex(fresh));

    let mut stale = s0;
    stale.fingerprint = "00000000deadbeef".to_owned();
    let err = workload.merge_shards(true, &[stale, s1]).unwrap_err();
    assert!(err.to_string().contains("stale"), "{err}");
}

#[test]
fn reports_survive_the_artifact_round_trip_bitwise() {
    let workload = toy_workload();
    let artifact = workload.execute_shard(false, 1, Shard::new(0, 1), &mut |_| {});
    let text = render_shard(&artifact);
    let back = parse_shard(&text).expect("parses");
    assert_eq!(render_shard(&back), text, "render∘parse must be identity");
    // And the typed reports decode to bit-identical floats.
    let direct = workload.execute(false, 1, &mut |_| {});
    let merged = workload.merge_shards(false, &[back]).expect("merges");
    assert_eq!(
        render_json(&direct.aggregate),
        render_json(&merged.aggregate)
    );
}

/// The shard split itself must never change seeds: a run's seed is a pure
/// function of `(base_seed, run_index)`, not of the shard that ran it.
#[test]
fn shard_slices_preserve_global_run_identity() {
    let manifest = (toy_workload().spec)(false).manifest();
    let shard = Shard::new(1, 3);
    let range = manifest.shard_range(shard);
    for (offset, plan) in manifest.shard_runs(shard).iter().enumerate() {
        let global: &RunPlan<ToyConfig> = &manifest.runs[range.start + offset];
        assert_eq!(plan.run_index, global.run_index);
        assert_eq!(plan.seed, global.seed);
    }
}

#[test]
fn progress_streams_every_completion() {
    let manifest = demo_spec().manifest();
    let mut seen = Vec::new();
    let outcome = airdnd_harness::run_sweep_with_progress(
        &manifest,
        3,
        |plan| plan.run_index,
        |p| seen.push((p.done, p.total)),
    );
    assert_eq!(outcome.results, (0..12).collect::<Vec<_>>());
    assert_eq!(seen.len(), 12);
    assert_eq!(seen.last(), Some(&(12, 12)));
    assert!(
        seen.windows(2).all(|w| w[0].0 + 1 == w[1].0),
        "done must increase by one"
    );
}
