//! Driver-level tests: resume, retry, permanent failure, atomic writes,
//! and the deterministic drive-state manifest — exercised with stub shard
//! "processes" (`sh -c` scripts) so the shard lifecycle is tested without
//! dragging in a real workload.

use airdnd_harness::{
    drive, write_atomic, CommandSpec, DriveOptions, DriveState, DriveTuning, Shard, ShardStatus,
    Validation,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("airdnd-driver-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

fn opts(dir: &Path, count: usize, retries: usize) -> DriveOptions {
    DriveOptions {
        shard_count: count,
        jobs: 2,
        retries,
        state_path: dir.join("drive-state.json"),
        workloads: vec!["stub".to_owned()],
        fingerprints: vec!["00000000deadbeef".to_owned()],
        quick: true,
        tuning: DriveTuning::default(),
    }
}

/// A stub shard process: touches `shard<i>.ok` in `dir` and exits 0.
fn touch_command(dir: &Path, shard: Shard) -> CommandSpec {
    CommandSpec::new("sh")
        .arg("-c")
        .arg(format!("touch {}/shard{}.ok", dir.display(), shard.index))
}

/// A stub shard process that just exits with `code`.
fn exit_command(code: i32) -> CommandSpec {
    CommandSpec::new("sh").arg("-c").arg(format!("exit {code}"))
}

fn marker_validate(dir: &Path) -> impl FnMut(Shard) -> Validation + '_ {
    move |shard: Shard| {
        let path = dir.join(format!("shard{}.ok", shard.index));
        if path.exists() {
            Validation::Valid
        } else {
            Validation::Missing(format!("marker {} missing", path.display()))
        }
    }
}

#[test]
fn drive_runs_every_shard_and_records_done() {
    let dir = temp_dir("basic");
    let report = drive(
        &opts(&dir, 3, 0),
        |ctx| touch_command(&dir, ctx.shard),
        marker_validate(&dir),
        |_| {},
    )
    .expect("drive succeeds");
    assert_eq!(report.shards.len(), 3);
    assert!(report.shards.iter().all(|s| s.attempts == 1));
    assert_eq!(report.resumed(), 0);
    assert_eq!(report.launches(), 3);

    let state = DriveState::parse(
        &std::fs::read_to_string(dir.join("drive-state.json")).expect("state exists"),
    )
    .expect("state parses");
    assert_eq!(state.shard_count, 3);
    assert_eq!(state.workloads, vec!["stub".to_owned()]);
    assert!(state
        .shards
        .iter()
        .all(|s| s.status == ShardStatus::Done { attempts: 1 }));
    // One implicit local host, never lost; every launch assigned to it.
    assert_eq!(state.hosts.len(), 1);
    assert!(!state.hosts[0].lost);
    assert!(state.shards.iter().all(|s| s.assignments == vec![0]));
    assert!(state.events.is_empty(), "no events on a fault-free drive");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drive_resumes_shards_whose_artifacts_are_already_valid() {
    let dir = temp_dir("resume");
    // Shard 1's marker already exists: the driver must not launch it.
    std::fs::write(dir.join("shard1.ok"), b"").expect("can seed marker");
    let report = drive(
        &opts(&dir, 3, 0),
        |ctx| {
            assert_ne!(ctx.shard.index, 1, "completed shard must be skipped");
            touch_command(&dir, ctx.shard)
        },
        marker_validate(&dir),
        |_| {},
    )
    .expect("drive succeeds");
    assert_eq!(report.resumed(), 1);
    assert_eq!(report.launches(), 2);
    assert_eq!(report.shards[1].attempts, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drive_retries_a_failing_shard_until_it_succeeds() {
    let dir = temp_dir("retry");
    let report = drive(
        &opts(&dir, 3, 2),
        |ctx| {
            // Shard 2 dies on its first attempt, succeeds on the second.
            if ctx.shard.index == 2 && ctx.attempt == 0 {
                exit_command(7)
            } else {
                touch_command(&dir, ctx.shard)
            }
        },
        marker_validate(&dir),
        |_| {},
    )
    .expect("drive recovers");
    assert_eq!(report.shards[2].attempts, 2, "one failure, one retry");
    assert_eq!(report.shards[0].attempts, 1);
    assert_eq!(report.launches(), 4);

    let state = DriveState::parse(
        &std::fs::read_to_string(dir.join("drive-state.json")).expect("state exists"),
    )
    .expect("state parses");
    assert_eq!(state.shards[2].status, ShardStatus::Done { attempts: 2 });
    assert_eq!(state.shards[2].assignments, vec![0, 0]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drive_gives_up_after_the_retry_budget_and_reports_the_shard() {
    let dir = temp_dir("give-up");
    let err = drive(
        &opts(&dir, 2, 1),
        |ctx| {
            if ctx.shard.index == 0 {
                exit_command(9)
            } else {
                touch_command(&dir, ctx.shard)
            }
        },
        marker_validate(&dir),
        |_| {},
    )
    .expect_err("shard 0 must fail permanently");
    assert_eq!(err.failed.len(), 1);
    assert_eq!(err.failed[0].0, 0);

    let state = DriveState::parse(
        &std::fs::read_to_string(dir.join("drive-state.json")).expect("state exists"),
    )
    .expect("state parses");
    // 1 initial attempt + 1 retry, exit code preserved; shard 1 unaffected.
    assert_eq!(
        state.shards[0].status,
        ShardStatus::Failed {
            attempts: 2,
            exit_code: Some(9)
        }
    );
    assert_eq!(state.shards[1].status, ShardStatus::Done { attempts: 1 });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_exit_with_missing_artifact_still_counts_as_failure() {
    let dir = temp_dir("lying-exit");
    // Every process exits 0 but never writes its marker: the driver must
    // trust the validator, not the exit code — an absent artifact fails
    // exactly like an invalid one.
    let err = drive(
        &opts(&dir, 1, 0),
        |_ctx| exit_command(0),
        marker_validate(&dir),
        |_| {},
    )
    .expect_err("no artifact, no success");
    assert_eq!(err.failed.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_exit_with_invalid_artifact_fails_identically_to_missing() {
    let dir = temp_dir("invalid-artifact");
    // The validator reports Invalid (artifact present but torn): the
    // unified outcome means the shard fails exactly as if it were absent.
    let err = drive(
        &opts(&dir, 1, 0),
        |_ctx| exit_command(0),
        |_shard| Validation::Invalid("artifact torn".to_owned()),
        |_| {},
    )
    .expect_err("invalid artifact, no success");
    assert_eq!(err.failed.len(), 1);
    assert!(err.failed[0].1.contains("artifact torn"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn write_atomic_replaces_content_and_leaves_no_tmp_behind() {
    let dir = temp_dir("atomic");
    let path = dir.join("artifact.json");
    write_atomic(&path, "first").expect("writes");
    assert_eq!(std::fs::read_to_string(&path).expect("reads"), "first");
    write_atomic(&path, "second").expect("overwrites");
    assert_eq!(std::fs::read_to_string(&path).expect("reads"), "second");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("lists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp files must be renamed away");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drive_state_round_trips_and_is_deterministic() {
    let dir = temp_dir("state-rt");
    let run = || {
        // Start each drive from the same blank slate.
        for index in 0..2 {
            let _ = std::fs::remove_file(dir.join(format!("shard{index}.ok")));
        }
        drive(
            &opts(&dir, 2, 0),
            |ctx| touch_command(&dir, ctx.shard),
            marker_validate(&dir),
            |_| {},
        )
        .expect("succeeds")
    };
    // Two identical drives must leave byte-identical final state files.
    run();
    let first = std::fs::read_to_string(dir.join("drive-state.json")).expect("state");
    run();
    let second = std::fs::read_to_string(dir.join("drive-state.json")).expect("state");
    assert_eq!(first, second, "final drive state must be deterministic");
    let parsed = DriveState::parse(&first).expect("parses");
    assert_eq!(parsed.render(), first, "render∘parse must be identity");
    let _ = std::fs::remove_dir_all(&dir);
}
