//! Property-based tests for the multi-host drive scheduler over the
//! simulated transport: for arbitrary shard counts, host counts, and
//! seed-derived failure schedules (host loss, death-at-spawn, healing
//! partitions), every shard's artifacts are fetched exactly once, no
//! shard ever runs concurrently on two hosts (asserted inside the sim's
//! `spawn`), and the whole drive — state file, fetch order, backoff
//! schedule — is deterministic under a fixed seed.

use airdnd_harness::{
    backoff_rounds, derive_seed, drive_with, CommandSpec, DriveOptions, DriveTuning, LoopbackPipe,
    SimFaults, SimHostTransport, SimJob, SshTransport, Transport, Validation,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("airdnd-tprops-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

/// Derives a deterministic failure schedule from `seed`, always leaving
/// at least one host (the survivor) out of every fatal fault so the
/// drive can complete.
fn faults_for(seed: u64, hosts: usize) -> SimFaults {
    let survivor = derive_seed(seed, 0) as usize % hosts;
    let mut lost_hosts = Vec::new();
    let mut dead_at_spawn = Vec::new();
    for host in 0..hosts {
        if host == survivor {
            continue;
        }
        match derive_seed(seed, 1 + host as u64) % 4 {
            0 => lost_hosts.push(host),
            1 => dead_at_spawn.push(host),
            _ => {}
        }
    }
    let mut partitions = Vec::new();
    if hosts >= 2 && derive_seed(seed, 99).is_multiple_of(2) {
        let a = derive_seed(seed, 100) as usize % hosts;
        let b = derive_seed(seed, 101) as usize % hosts;
        if a != b {
            partitions.push((a, b));
        }
    }
    SimFaults {
        lost_hosts,
        dead_at_spawn,
        partitions,
        ..SimFaults::default()
    }
}

fn artifact_name(shard_index: usize, shard_count: usize) -> String {
    format!("stub.shard{shard_index}of{shard_count}.json")
}

/// The simulated shard job: writes one artifact file into staging.
fn stub_runner(job: SimJob<'_>) -> bool {
    let name = artifact_name(job.shard.index, job.shard.count);
    std::fs::write(
        job.staging.join(name),
        format!("{{\"shard\":{}}}\n", job.shard.index),
    )
    .is_ok()
}

fn drive_opts(dir: &Path, shards: usize) -> DriveOptions {
    DriveOptions {
        shard_count: shards,
        jobs: 2,
        retries: 1,
        state_path: dir.join("drive-state.json"),
        workloads: vec!["stub".to_owned()],
        fingerprints: vec!["00000000deadbeef".to_owned()],
        quick: true,
        tuning: DriveTuning::default(),
    }
}

fn validator(out: &Path) -> impl FnMut(airdnd_harness::Shard) -> Validation + '_ {
    move |shard| {
        if out.join(artifact_name(shard.index, shard.count)).exists() {
            Validation::Valid
        } else {
            Validation::Missing("artifact absent".to_owned())
        }
    }
}

/// Runs one faulted multi-host drive to completion; returns the final
/// state file text and the fetched shard indices in fetch order.
fn run_drive(dir: &Path, shards: usize, hosts: usize, faults: &SimFaults) -> (String, Vec<usize>) {
    let out = dir.join("out");
    std::fs::create_dir_all(&out).expect("can create out dir");
    let mut sim = SimHostTransport::new(
        hosts,
        shards,
        out.clone(),
        dir.join("staging"),
        faults.clone(),
        stub_runner,
    );
    let report = drive_with(
        &mut sim,
        &drive_opts(dir, shards),
        |ctx| CommandSpec::new("sim-stub").arg(format!("--shard={}", ctx.shard)),
        validator(&out),
        |_| {},
    )
    .expect("a drive with one surviving host completes");
    assert_eq!(report.shards.len(), shards);
    for shard_index in 0..shards {
        assert!(
            out.join(artifact_name(shard_index, shards)).exists(),
            "shard {shard_index} artifact must reach the out dir"
        );
    }
    let state = std::fs::read_to_string(dir.join("drive-state.json")).expect("state exists");
    let fetched = sim.fetch_log().iter().map(|f| f.shard_index).collect();
    (state, fetched)
}

proptest! {
    /// Under any derived failure schedule, every shard's artifacts are
    /// fetched exactly once — the exactly-once merge guarantee. (The
    /// companion invariant, "no shard live on two hosts at once", is an
    /// assertion inside the sim's `spawn`; any violation fails the drive.)
    #[test]
    fn every_shard_fetched_exactly_once_under_faults(
        shards in 1usize..7,
        hosts in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let dir = temp_dir("once");
        let faults = faults_for(seed, hosts);
        let (_state, mut fetched) = run_drive(&dir, shards, hosts, &faults);
        fetched.sort_unstable();
        prop_assert_eq!(
            fetched,
            (0..shards).collect::<Vec<_>>(),
            "each shard delivered exactly once (faults: {:?})",
            faults
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two identical drives — same shards, hosts, faults, seed — leave a
    /// byte-identical state file and an identical fetch order: the whole
    /// schedule, backoff included, is a pure function of its inputs.
    #[test]
    fn faulted_drives_are_deterministic(
        shards in 1usize..6,
        hosts in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let faults = faults_for(seed, hosts);
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        let (state_a, fetched_a) = run_drive(&dir_a, shards, hosts, &faults);
        let (state_b, fetched_b) = run_drive(&dir_b, shards, hosts, &faults);
        prop_assert_eq!(state_a, state_b, "drive state must be deterministic");
        prop_assert_eq!(fetched_a, fetched_b, "fetch order must be deterministic");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// The backoff schedule is a pure function of (seed, shard, failure):
    /// reproducible, zero before the first retry, and capped.
    #[test]
    fn backoff_is_deterministic_zero_first_and_capped(
        seed in 0u64..1_000_000,
        shard in 0usize..64,
        failure in 0usize..40,
    ) {
        let tuning = DriveTuning::default();
        let a = backoff_rounds(seed, shard, failure, &tuning);
        let b = backoff_rounds(seed, shard, failure, &tuning);
        prop_assert_eq!(a, b, "same inputs, same backoff");
        if failure == 0 {
            prop_assert_eq!(a, 0, "first retry is immediate");
        } else {
            prop_assert!(a <= tuning.backoff_cap, "backoff {} over cap", a);
        }
    }
}

/// The SSH stub's wire protocol loses nothing: a faulted drive through
/// `SshTransport<LoopbackPipe<SimHostTransport>>` leaves a byte-identical
/// state file, artifact set, and fetch log to the same drive run against
/// the sim directly.
#[test]
fn ssh_loopback_drive_matches_direct_sim_drive() {
    let shards = 5usize;
    let hosts = 3usize;
    let faults = SimFaults {
        lost_hosts: vec![1],
        partitions: vec![(0, 2)],
        ..SimFaults::default()
    };

    let dir_direct = temp_dir("ssh-direct");
    let (state_direct, fetched_direct) = run_drive(&dir_direct, shards, hosts, &faults);

    let dir_wire = temp_dir("ssh-wire");
    let out = dir_wire.join("out");
    std::fs::create_dir_all(&out).expect("can create out dir");
    let sim = SimHostTransport::new(
        hosts,
        shards,
        out.clone(),
        dir_wire.join("staging"),
        faults,
        stub_runner,
    );
    let mut ssh = SshTransport::new(LoopbackPipe::new(sim));
    assert_eq!(ssh.host_count(), hosts, "host count survives the wire");
    drive_with(
        &mut ssh,
        &drive_opts(&dir_wire, shards),
        |ctx| CommandSpec::new("sim-stub").arg(format!("--shard={}", ctx.shard)),
        validator(&out),
        |_| {},
    )
    .expect("the wire drive completes");
    let state_wire =
        std::fs::read_to_string(dir_wire.join("drive-state.json")).expect("state exists");
    assert_eq!(state_direct, state_wire, "wire drive state matches direct");

    for shard_index in 0..shards {
        let name = artifact_name(shard_index, shards);
        let direct = std::fs::read(dir_direct.join("out").join(&name)).expect("direct artifact");
        let wire = std::fs::read(out.join(&name)).expect("wire artifact");
        assert_eq!(direct, wire, "artifact {name} must match across transports");
    }
    // Recover the sim behind the pipe: the fetch evidence must match too.
    let sim = ssh.into_pipe().into_inner();
    let fetched_wire: Vec<usize> = sim.fetch_log().iter().map(|f| f.shard_index).collect();
    assert_eq!(
        fetched_direct, fetched_wire,
        "fetch log matches across transports"
    );

    let _ = std::fs::remove_dir_all(&dir_direct);
    let _ = std::fs::remove_dir_all(&dir_wire);
}
