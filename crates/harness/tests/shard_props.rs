//! Property-based tests for the shard partition: for *any* manifest size
//! and shard count, the `shard_range` pieces must be contiguous, balanced
//! within one run, non-overlapping, and cover every `run_index` exactly
//! once — the invariants the distributed driver's resume/merge correctness
//! rests on.

use airdnd_harness::{shard_bounds, Manifest, Shard, SweepSpec};
use proptest::prelude::*;

/// A manifest with exactly `cells × replicates` runs.
fn manifest_of(cells: usize, replicates: usize) -> Manifest<u64> {
    SweepSpec::new(0u64)
        .axis("cell", 0..cells.max(1) as u64, |cfg, &v| *cfg = v)
        .replicates(replicates.max(1))
        .base_seed(7)
        .manifest()
}

proptest! {
    /// The pure split: shards partition `0..total` into contiguous,
    /// in-order, balanced pieces.
    #[test]
    fn shard_bounds_partition_any_total(
        total in 0usize..500,
        count in 1usize..16,
    ) {
        let mut covered = Vec::new();
        let mut sizes = Vec::new();
        for index in 0..count {
            let range = shard_bounds(total, Shard::new(index, count));
            // Contiguous and in order: each range starts where the
            // previous one ended.
            prop_assert_eq!(range.start, covered.len());
            sizes.push(range.len());
            covered.extend(range);
        }
        // Every index exactly once, in order.
        prop_assert_eq!(covered, (0..total).collect::<Vec<_>>());
        // Balanced: sizes within one run of each other, larger shards first.
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "unbalanced split: {:?}", sizes);
        prop_assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "extra runs must go to the leading shards: {:?}",
            sizes
        );
    }

    /// The same invariants through a real expanded manifest: every run
    /// (and its seed and run_index) lands in exactly one shard, unchanged.
    #[test]
    fn manifest_shards_cover_every_run_exactly_once(
        cells in 1usize..20,
        replicates in 1usize..5,
        count in 1usize..12,
    ) {
        let manifest = manifest_of(cells, replicates);
        let mut seen = vec![0usize; manifest.len()];
        for index in 0..count {
            let shard = Shard::new(index, count);
            prop_assert_eq!(
                manifest.shard_range(shard),
                shard_bounds(manifest.len(), shard)
            );
            for (offset, plan) in manifest.shard_runs(shard).iter().enumerate() {
                let global = manifest.shard_range(shard).start + offset;
                // Slicing preserves global identity: index and seed.
                prop_assert_eq!(plan.run_index, global);
                prop_assert_eq!(plan.seed, manifest.runs[global].seed);
                seen[global] += 1;
            }
        }
        prop_assert!(
            seen.iter().all(|&n| n == 1),
            "every run exactly once, got {:?}",
            seen
        );
    }

    /// Fingerprints are stable under re-expansion and change whenever the
    /// grid meaningfully changes (size, base seed) — the property the
    /// driver's stale-artifact detection depends on.
    #[test]
    fn fingerprints_track_the_grid(
        cells in 1usize..20,
        replicates in 1usize..5,
    ) {
        let manifest = manifest_of(cells, replicates);
        prop_assert_eq!(
            manifest.fingerprint(),
            manifest_of(cells, replicates).fingerprint(),
            "same grid, same fingerprint"
        );
        let grown = manifest_of(cells + 1, replicates);
        prop_assert_ne!(manifest.fingerprint(), grown.fingerprint());
        let reseeded = SweepSpec::new(0u64)
            .axis("cell", 0..cells as u64, |cfg, &v| *cfg = v)
            .replicates(replicates)
            .base_seed(8)
            .manifest();
        prop_assert_ne!(manifest.fingerprint(), reseeded.fingerprint());
    }
}
