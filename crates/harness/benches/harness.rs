//! Harness overhead: dispatching N no-op runs through the worker pool.
//!
//! This measures pure orchestration cost (manifest walk, channel traffic,
//! ordered reassembly) — the per-run work is a single integer copy — so it
//! bounds how much the harness can ever add on top of real scenarios.

use airdnd_harness::{run_sweep, SweepSpec};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn manifest_of(runs: usize) -> airdnd_harness::Manifest<u64> {
    SweepSpec::new(0u64)
        .axis("run", 0..runs as u64, |cfg, &v| *cfg = v)
        .seed_with(|cfg, seed| *cfg = cfg.wrapping_add(seed & 1))
        .manifest()
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    for &runs in &[16usize, 256, 1024] {
        let manifest = manifest_of(runs);
        group.bench_with_input(
            BenchmarkId::new("dispatch_noop_seq", runs),
            &manifest,
            |b, m| {
                b.iter(|| black_box(run_sweep(m, 1, |plan| plan.config)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dispatch_noop_pool", runs),
            &manifest,
            |b, m| {
                b.iter(|| black_box(run_sweep(m, 0, |plan| plan.config)));
            },
        );
    }
    let manifest = manifest_of(4096);
    group.bench_with_input(
        BenchmarkId::new("expand_manifest", 4096usize),
        &4096usize,
        |b, &n| {
            b.iter(|| black_box(manifest_of(n).len()));
        },
    );
    drop(manifest);
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
