//! The flat, ordered run manifest a sweep expands into, and the splittable
//! per-run seed derivation.

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(GOLDEN);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed for one run from `(base_seed, run_index)`.
///
/// A splittable hash, not a sequential stream: run *k*'s seed depends only
/// on the pair, so manifests can be expanded, filtered or executed in any
/// order — and grids can grow — without perturbing existing runs' seeds.
/// Two SplitMix64 rounds whiten the low-entropy index.
pub fn derive_seed(base_seed: u64, run_index: u64) -> u64 {
    let mut x = base_seed
        ^ run_index
            .wrapping_add(1)
            .wrapping_mul(GOLDEN)
            .rotate_left(27);
    splitmix64(&mut x);
    splitmix64(&mut x)
}

/// One planned run: a fully materialized configuration plus its grid
/// coordinates.
#[derive(Clone, Debug)]
pub struct RunPlan<C> {
    /// Position in the flat manifest. Under `SeedMode::PerRun` this is
    /// also the seed-derivation index.
    pub run_index: usize,
    /// Grid-cell index (row-major, first axis slowest).
    pub cell: usize,
    /// Replicate number within the cell.
    pub replicate: usize,
    /// Seed: `derive_seed(base_seed, run_index)` under
    /// `SeedMode::PerRun`, `derive_seed(base_seed, replicate)` under
    /// `SeedMode::PerReplicate` (common random numbers across cells).
    pub seed: u64,
    /// One label per axis identifying the cell, in axis order.
    pub labels: Vec<String>,
    /// The ready-to-run configuration.
    pub config: C,
}

/// A fully expanded sweep: every run, in deterministic order.
#[derive(Clone, Debug)]
pub struct Manifest<C> {
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// The base seed every run's seed was derived from.
    pub base_seed: u64,
    /// Number of grid cells.
    pub cell_count: usize,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// All runs: `cell * replicates + replicate` indexing.
    pub runs: Vec<RunPlan<C>>,
}

impl<C> Manifest<C> {
    /// Total number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when the manifest contains no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The runs of one grid cell, in replicate order.
    pub fn cell_runs(&self, cell: usize) -> &[RunPlan<C>] {
        let lo = cell * self.replicates;
        let hi = (lo + self.replicates).min(self.runs.len());
        &self.runs[lo..hi]
    }

    /// The slice of `results` belonging to one grid cell, given a result
    /// vector in manifest order (as produced by the executor). Keeps the
    /// `cell * replicates + replicate` indexing in one place.
    pub fn cell_results<'r, R>(&self, results: &'r [R], cell: usize) -> &'r [R] {
        let lo = cell * self.replicates;
        let hi = (lo + self.cell_runs(cell).len()).min(results.len());
        &results[lo..hi]
    }
}
