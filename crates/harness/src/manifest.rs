//! The flat, ordered run manifest a sweep expands into, the splittable
//! per-run seed derivation, and [`Shard`] slicing for multi-process sweeps.

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(GOLDEN);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed for one run from `(base_seed, run_index)`.
///
/// A splittable hash, not a sequential stream: run *k*'s seed depends only
/// on the pair, so manifests can be expanded, filtered or executed in any
/// order — and grids can grow — without perturbing existing runs' seeds.
/// Two SplitMix64 rounds whiten the low-entropy index.
pub fn derive_seed(base_seed: u64, run_index: u64) -> u64 {
    let mut x = base_seed
        ^ run_index
            .wrapping_add(1)
            .wrapping_mul(GOLDEN)
            .rotate_left(27);
    splitmix64(&mut x);
    splitmix64(&mut x)
}

/// One planned run: a fully materialized configuration plus its grid
/// coordinates.
#[derive(Clone, Debug)]
pub struct RunPlan<C> {
    /// Position in the flat manifest. Under `SeedMode::PerRun` this is
    /// also the seed-derivation index.
    pub run_index: usize,
    /// Grid-cell index (row-major, first axis slowest).
    pub cell: usize,
    /// Replicate number within the cell.
    pub replicate: usize,
    /// Seed: `derive_seed(base_seed, run_index)` under
    /// `SeedMode::PerRun`, `derive_seed(base_seed, replicate)` under
    /// `SeedMode::PerReplicate` (common random numbers across cells).
    pub seed: u64,
    /// One label per axis identifying the cell, in axis order.
    pub labels: Vec<String>,
    /// The ready-to-run configuration.
    pub config: C,
}

/// A fully expanded sweep: every run, in deterministic order.
#[derive(Clone, Debug)]
pub struct Manifest<C> {
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// The base seed every run's seed was derived from.
    pub base_seed: u64,
    /// Number of grid cells.
    pub cell_count: usize,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// All runs: `cell * replicates + replicate` indexing.
    pub runs: Vec<RunPlan<C>>,
}

impl<C> Manifest<C> {
    /// Total number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when the manifest contains no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The runs of one grid cell, in replicate order.
    pub fn cell_runs(&self, cell: usize) -> &[RunPlan<C>] {
        let lo = cell * self.replicates;
        let hi = (lo + self.replicates).min(self.runs.len());
        &self.runs[lo..hi]
    }

    /// The slice of `results` belonging to one grid cell, given a result
    /// vector in manifest order (as produced by the executor). Keeps the
    /// `cell * replicates + replicate` indexing in one place.
    pub fn cell_results<'r, R>(&self, results: &'r [R], cell: usize) -> &'r [R] {
        let lo = cell * self.replicates;
        let hi = (lo + self.cell_runs(cell).len()).min(results.len());
        &results[lo..hi]
    }

    /// The contiguous `run_index` range owned by one shard.
    ///
    /// Runs are split into `shard.count` contiguous, balanced ranges: the
    /// first `len % count` shards hold one extra run. Because every run's
    /// seed is a pure function of `(base_seed, index)` — never of which
    /// process executes it — the union of all shards' results, ordered by
    /// `run_index`, is byte-identical to a single-process sweep.
    pub fn shard_range(&self, shard: Shard) -> Range<usize> {
        let len = self.runs.len();
        let (index, count) = (shard.index, shard.count);
        let base = len / count;
        let extra = len % count;
        let lo = index * base + index.min(extra);
        let hi = lo + base + usize::from(index < extra);
        lo..hi
    }

    /// The runs owned by one shard, in manifest order.
    pub fn shard_runs(&self, shard: Shard) -> &[RunPlan<C>] {
        &self.runs[self.shard_range(shard)]
    }
}

/// One slice of a sharded sweep: shard `index` of `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Creates a shard slice, panicking on `index >= count` or `count == 0`.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!(count > 0, "a sweep needs at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Shard { index, count }
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = String;

    /// Parses the CLI spelling `i/n` (e.g. `0/2`), zero-based.
    fn from_str(s: &str) -> Result<Shard, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` must look like `i/n`"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in `{s}`"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in `{s}`"))?;
        if count == 0 {
            return Err(format!("shard count must be positive in `{s}`"));
        }
        if index >= count {
            return Err(format!("shard index {index} not below count {count}"));
        }
        Ok(Shard { index, count })
    }
}
