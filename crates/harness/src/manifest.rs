//! The flat, ordered run manifest a sweep expands into, the splittable
//! per-run seed derivation, [`Shard`] slicing for multi-process sweeps, and
//! the manifest fingerprint that stamps shard artifacts.

use serde::Serialize;
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(GOLDEN);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed for one run from `(base_seed, run_index)`.
///
/// A splittable hash, not a sequential stream: run *k*'s seed depends only
/// on the pair, so manifests can be expanded, filtered or executed in any
/// order — and grids can grow — without perturbing existing runs' seeds.
/// Two SplitMix64 rounds whiten the low-entropy index.
pub fn derive_seed(base_seed: u64, run_index: u64) -> u64 {
    let mut x = base_seed
        ^ run_index
            .wrapping_add(1)
            .wrapping_mul(GOLDEN)
            .rotate_left(27);
    splitmix64(&mut x);
    splitmix64(&mut x)
}

/// One planned run: a fully materialized configuration plus its grid
/// coordinates.
#[derive(Clone, Debug)]
pub struct RunPlan<C> {
    /// Position in the flat manifest. Under `SeedMode::PerRun` this is
    /// also the seed-derivation index.
    pub run_index: usize,
    /// Grid-cell index (row-major, first axis slowest).
    pub cell: usize,
    /// Replicate number within the cell.
    pub replicate: usize,
    /// Seed: `derive_seed(base_seed, run_index)` under
    /// `SeedMode::PerRun`, `derive_seed(base_seed, replicate)` under
    /// `SeedMode::PerReplicate` (common random numbers across cells).
    pub seed: u64,
    /// One label per axis identifying the cell, in axis order.
    pub labels: Vec<String>,
    /// The ready-to-run configuration.
    pub config: C,
}

/// A fully expanded sweep: every run, in deterministic order.
#[derive(Clone, Debug)]
pub struct Manifest<C> {
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// The base seed every run's seed was derived from.
    pub base_seed: u64,
    /// Number of grid cells.
    pub cell_count: usize,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// All runs: `cell * replicates + replicate` indexing.
    pub runs: Vec<RunPlan<C>>,
}

impl<C> Manifest<C> {
    /// Total number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when the manifest contains no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The runs of one grid cell, in replicate order.
    pub fn cell_runs(&self, cell: usize) -> &[RunPlan<C>] {
        let lo = cell * self.replicates;
        let hi = (lo + self.replicates).min(self.runs.len());
        &self.runs[lo..hi]
    }

    /// The slice of `results` belonging to one grid cell, given a result
    /// vector in manifest order (as produced by the executor). Keeps the
    /// `cell * replicates + replicate` indexing in one place.
    pub fn cell_results<'r, R>(&self, results: &'r [R], cell: usize) -> &'r [R] {
        let lo = cell * self.replicates;
        let hi = (lo + self.cell_runs(cell).len()).min(results.len());
        &results[lo..hi]
    }

    /// The contiguous `run_index` range owned by one shard.
    ///
    /// Runs are split into `shard.count` contiguous, balanced ranges: the
    /// first `len % count` shards hold one extra run. Because every run's
    /// seed is a pure function of `(base_seed, index)` — never of which
    /// process executes it — the union of all shards' results, ordered by
    /// `run_index`, is byte-identical to a single-process sweep.
    pub fn shard_range(&self, shard: Shard) -> Range<usize> {
        shard_bounds(self.runs.len(), shard)
    }

    /// The runs owned by one shard, in manifest order.
    pub fn shard_runs(&self, shard: Shard) -> &[RunPlan<C>] {
        &self.runs[self.shard_range(shard)]
    }
}

impl<C: Serialize> Manifest<C> {
    /// A stable 64-bit fingerprint of the expanded grid: axis names, base
    /// seed, replicate count, and every run's `(run_index, seed, labels,
    /// serialized config)`.
    ///
    /// Shard artifacts are stamped with it so a driver resuming a sweep can
    /// tell a valid completed shard from a stale one — any change to the
    /// grid (an added axis value, a different base seed, a config-shape
    /// edit, quick vs full mode) changes the fingerprint and invalidates
    /// old artifacts. The hash (FNV-1a over the canonical serialization) is
    /// a pure function of the manifest, identical across processes and
    /// hosts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for name in &self.axis_names {
            h.write_str(name);
        }
        h.write_u64(self.base_seed);
        h.write_u64(self.cell_count as u64);
        h.write_u64(self.replicates as u64);
        h.write_u64(self.runs.len() as u64);
        for run in &self.runs {
            h.write_u64(run.run_index as u64);
            h.write_u64(run.seed);
            for label in &run.labels {
                h.write_str(label);
            }
            let config = serde_json::to_string(&run.config).expect("config serializes");
            h.write_str(&config);
        }
        h.finish()
    }
}

/// Renders a fingerprint in its canonical artifact spelling (zero-padded
/// lowercase hex), the form stored in shard artifacts and drive state.
pub fn fingerprint_hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

/// The contiguous index range shard `shard` owns out of `total_runs` items:
/// `count` contiguous, balanced pieces (the first `total_runs % count`
/// shards hold one extra item), covering `0..total_runs` exactly once.
pub fn shard_bounds(total_runs: usize, shard: Shard) -> Range<usize> {
    let (index, count) = (shard.index, shard.count);
    let base = total_runs / count;
    let extra = total_runs % count;
    let lo = index * base + index.min(extra);
    let hi = lo + base + usize::from(index < extra);
    lo..hi
}

/// FNV-1a, 64-bit: a tiny stable hasher for manifest fingerprints. The
/// std `DefaultHasher` is deliberately avoided — its output may change
/// between releases and is randomized per `RandomState`, while fingerprints
/// must agree across processes, hosts and toolchain updates.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xCBF29CE484222325;
    const PRIME: u64 = 0x100000001B3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        // Length-delimit so ("ab","c") and ("a","bc") hash differently.
        self.write_bytes(&(s.len() as u64).to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One slice of a sharded sweep: shard `index` of `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Creates a shard slice, panicking on `index >= count` or `count == 0`.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!(count > 0, "a sweep needs at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Shard { index, count }
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = String;

    /// Parses the CLI spelling `i/n` (e.g. `0/2`), zero-based.
    fn from_str(s: &str) -> Result<Shard, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` must look like `i/n`"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in `{s}`"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in `{s}`"))?;
        if count == 0 {
            return Err(format!("shard count must be positive in `{s}`"));
        }
        if index >= count {
            return Err(format!("shard index {index} not below count {count}"));
        }
        Ok(Shard { index, count })
    }
}
