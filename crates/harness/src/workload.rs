//! The generic `Workload` API: one typed experiment shape for every figure.
//!
//! A [`Workload`] is any pure `Config → Report` function with a declarative
//! grid: the config type carries the axes (numeric sweeps, strategy enums,
//! `SelectionWeights` variants, market-mechanism choices — anything
//! expressible as a [`SweepSpec`] axis), the report type carries the
//! measurements, and the workload supplies the metric extraction and table
//! rendering. Everything else — manifest expansion, splittable seeds, the
//! worker pool, per-cell aggregation, JSON/CSV artifacts, and `--shard i/n`
//! slicing — is workload-polymorphic and lives here, once.
//!
//! [`AnyWorkload`] is the object-safe erasure of the trait, so experiments
//! with different `Config`/`Report` types (scenario sweeps, market
//! simulations, NFV churn, selection micro-benchmarks) share a single
//! registry and a single execution path.
//!
//! ## Sharding
//!
//! [`AnyWorkload::execute_shard`] runs one contiguous slice of the
//! manifest and returns a [`ShardArtifact`]: the slice's reports,
//! serialized, keyed by global `run_index`. Artifacts can cross process or
//! host boundaries as JSON ([`render_shard`] / [`parse_shard`]);
//! [`AnyWorkload::merge_shards`] reassembles them in manifest order and
//! produces output **byte-identical** to an unsharded run — seeds derive
//! from `(base_seed, run_index)`, never from which process ran the run,
//! and the report writers are environment-free.

use crate::agg::summarize_cells;
use crate::exec::{run_shard_with_progress, run_sweep_with_progress, Progress};
use crate::manifest::{Manifest, RunPlan, Shard};
use crate::report::{ExperimentResult, SweepReport};
use crate::spec::SweepSpec;
use airdnd_telemetry::{RunTelemetry, TelemetryOptions};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed experiment: a pure `Config → Report` function plus its grid,
/// metrics and table rendering.
///
/// `run` must be a pure function of the [`RunPlan`] (the config carries its
/// own derived seed) — that purity is what lets the harness parallelize,
/// shard and replay workloads without changing a byte of output.
pub trait Workload: Send + Sync {
    /// The sweep-expanded configuration: one fully materialized run.
    type Config: Clone + Send + Sync + Serialize + 'static;
    /// The measurements one run produces. `DeserializeOwned` lets shard
    /// artifacts round-trip through JSON across processes.
    type Report: Send + Serialize + DeserializeOwned + 'static;

    /// Registry id (`"f2"`), used for filtering and artifact file stems.
    fn name(&self) -> &'static str;

    /// Human title for tables and aggregate reports.
    fn title(&self) -> &'static str;

    /// The declarative grid (`quick` selects the CI-sized version).
    fn spec(&self, quick: bool) -> SweepSpec<Self::Config>;

    /// Executes one run. Must be pure in the config.
    fn run(&self, plan: &RunPlan<Self::Config>) -> Self::Report;

    /// Named scalar metrics aggregated per grid cell in sweep reports.
    /// Every report must yield the same names in the same order.
    fn metrics(&self, report: &Self::Report) -> Vec<(&'static str, f64)>;

    /// Renders the `EXPERIMENTS.md` table (plus optional plot series) from
    /// the ordered results.
    fn tabulate(
        &self,
        manifest: &Manifest<Self::Config>,
        results: &[Self::Report],
    ) -> ExperimentResult;

    /// Debug lens: executes one run with a bounded event trace enabled and
    /// returns the formatted trace, or `None` when the workload has no
    /// trace support (the default). Used by `sweep --trace N`; never part
    /// of the deterministic artifact path.
    fn trace_run(&self, plan: &RunPlan<Self::Config>, capacity: usize) -> Option<String> {
        let _ = (plan, capacity);
        None
    }

    /// Observability lens: executes one run with the given telemetry
    /// options and returns the full [`RunTelemetry`] (typed events,
    /// metrics registry, phase profile), or `None` when the workload has
    /// no telemetry support (the default). Used by `sweep --trace-out` and
    /// `--bench-engine`; never part of the deterministic artifact path.
    fn observe_run(
        &self,
        plan: &RunPlan<Self::Config>,
        opts: TelemetryOptions,
    ) -> Option<RunTelemetry> {
        let _ = (plan, opts);
        None
    }
}

/// A [`Workload`] assembled from plain function pointers — the common
/// case, where an experiment is a grid builder, a runner and a tabulator
/// rather than a stateful type.
pub struct FnWorkload<C, R> {
    /// Registry id (`"f2"`).
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Builds the grid (`quick` selects the CI-sized version).
    pub spec: fn(bool) -> SweepSpec<C>,
    /// Executes one run (pure in the config).
    pub run: fn(&RunPlan<C>) -> R,
    /// Extracts the per-cell aggregate metrics.
    pub metrics: fn(&R) -> Vec<(&'static str, f64)>,
    /// Renders the table and plot series.
    pub tabulate: fn(&Manifest<C>, &[R]) -> ExperimentResult,
    /// Optional debug hook: one traced run (see [`Workload::trace_run`]).
    pub trace: Option<fn(&RunPlan<C>, usize) -> String>,
    /// Optional observability hook: one run with full telemetry (see
    /// [`Workload::observe_run`]).
    pub observe: Option<fn(&RunPlan<C>, TelemetryOptions) -> RunTelemetry>,
}

impl<C, R> Workload for FnWorkload<C, R>
where
    C: Clone + Send + Sync + Serialize + 'static,
    R: Send + Serialize + DeserializeOwned + 'static,
{
    type Config = C;
    type Report = R;

    fn name(&self) -> &'static str {
        self.name
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn spec(&self, quick: bool) -> SweepSpec<C> {
        (self.spec)(quick)
    }

    fn run(&self, plan: &RunPlan<C>) -> R {
        (self.run)(plan)
    }

    fn metrics(&self, report: &R) -> Vec<(&'static str, f64)> {
        (self.metrics)(report)
    }

    fn tabulate(&self, manifest: &Manifest<C>, results: &[R]) -> ExperimentResult {
        (self.tabulate)(manifest, results)
    }

    fn trace_run(&self, plan: &RunPlan<C>, capacity: usize) -> Option<String> {
        self.trace.map(|trace| trace(plan, capacity))
    }

    fn observe_run(&self, plan: &RunPlan<C>, opts: TelemetryOptions) -> Option<RunTelemetry> {
        self.observe.map(|observe| observe(plan, opts))
    }
}

/// Everything executing a workload produces: the rendered table/series
/// plus the per-cell aggregate report (the JSON/CSV payload).
#[derive(Clone, Debug)]
pub struct WorkloadOutput {
    /// Workload id.
    pub name: String,
    /// Workload title.
    pub title: String,
    /// Table + plot series.
    pub result: ExperimentResult,
    /// Per-cell aggregates, ready for [`crate::report::write_report`].
    pub aggregate: SweepReport,
}

/// One run's serialized report inside a [`ShardArtifact`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardResult {
    /// Global manifest index of the run.
    pub run_index: usize,
    /// The run's report, serialized (round-trips bit-for-bit).
    pub report: serde_json::Value,
}

/// The output of one shard of a sweep: a resumable, mergeable slice of
/// results keyed by global `run_index`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardArtifact {
    /// Workload id the artifact belongs to.
    pub workload: String,
    /// Zero-based shard index.
    pub shard_index: usize,
    /// Total number of shards in the split.
    pub shard_count: usize,
    /// Total runs in the *full* manifest (consistency check at merge).
    pub total_runs: usize,
    /// Fingerprint of the manifest the shard was cut from, in canonical
    /// hex ([`crate::manifest::fingerprint_hex`]). A resuming driver (and
    /// [`AnyWorkload::merge_shards`]) rejects artifacts whose fingerprint
    /// no longer matches the current grid — the stale-artifact guard.
    pub fingerprint: String,
    /// This shard's results, in manifest order.
    pub results: Vec<ShardResult>,
}

/// Why a shard merge was rejected.
#[derive(Debug, Clone)]
pub struct MergeError(String);

impl MergeError {
    fn msg(msg: impl Into<String>) -> Self {
        MergeError(msg.into())
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for MergeError {}

/// Object-safe view over any [`Workload`], so heterogeneous experiments
/// share one registry and one CLI. Blanket-implemented for every workload.
pub trait AnyWorkload: Send + Sync {
    /// Registry id (`"f2"`).
    fn name(&self) -> &'static str;

    /// Human title.
    fn title(&self) -> &'static str;

    /// Runs in the full (quick|full) manifest.
    fn total_runs(&self, quick: bool) -> usize;

    /// Fingerprint of the expanded manifest (see
    /// [`crate::manifest::Manifest::fingerprint`]): the stamp shard
    /// artifacts carry so stale ones are detected on resume and merge.
    fn fingerprint(&self, quick: bool) -> u64;

    /// Expands the grid, executes every run across `threads` workers
    /// (`0` = all cores) and renders table + aggregate report.
    fn execute(
        &self,
        quick: bool,
        threads: usize,
        progress: &mut dyn FnMut(Progress),
    ) -> WorkloadOutput;

    /// Executes only `shard`'s contiguous slice of the manifest, returning
    /// a mergeable artifact instead of rendered output.
    fn execute_shard(
        &self,
        quick: bool,
        threads: usize,
        shard: Shard,
        progress: &mut dyn FnMut(Progress),
    ) -> ShardArtifact;

    /// Reassembles shard artifacts (any order) into the same
    /// [`WorkloadOutput`] an unsharded [`AnyWorkload::execute`] produces,
    /// byte for byte. Fails if shards are missing, overlapping, or from a
    /// different workload/grid.
    fn merge_shards(
        &self,
        quick: bool,
        artifacts: &[ShardArtifact],
    ) -> Result<WorkloadOutput, MergeError>;

    /// Executes the manifest's first run with a bounded event trace and
    /// returns the formatted entries, or `None` when the workload has no
    /// trace support (see [`Workload::trace_run`]).
    fn trace_first_run(&self, quick: bool, capacity: usize) -> Option<String>;

    /// Executes the manifest's first run with full telemetry and returns
    /// the [`RunTelemetry`], or `None` when the workload has no telemetry
    /// support (see [`Workload::observe_run`]).
    fn observe_first_run(&self, quick: bool, opts: TelemetryOptions) -> Option<RunTelemetry>;
}

impl<W: Workload> AnyWorkload for W {
    fn name(&self) -> &'static str {
        Workload::name(self)
    }

    fn title(&self) -> &'static str {
        Workload::title(self)
    }

    fn total_runs(&self, quick: bool) -> usize {
        self.spec(quick).manifest().len()
    }

    fn fingerprint(&self, quick: bool) -> u64 {
        self.spec(quick).manifest().fingerprint()
    }

    fn execute(
        &self,
        quick: bool,
        threads: usize,
        progress: &mut dyn FnMut(Progress),
    ) -> WorkloadOutput {
        let manifest = self.spec(quick).manifest();
        let outcome = run_sweep_with_progress(&manifest, threads, |plan| self.run(plan), progress);
        finish(self, &manifest, &outcome.results)
    }

    fn execute_shard(
        &self,
        quick: bool,
        threads: usize,
        shard: Shard,
        progress: &mut dyn FnMut(Progress),
    ) -> ShardArtifact {
        let manifest = self.spec(quick).manifest();
        let outcome =
            run_shard_with_progress(&manifest, shard, threads, |plan| self.run(plan), progress);
        let indices = manifest.shard_range(shard);
        ShardArtifact {
            workload: Workload::name(self).to_owned(),
            shard_index: shard.index,
            shard_count: shard.count,
            total_runs: manifest.len(),
            fingerprint: crate::manifest::fingerprint_hex(manifest.fingerprint()),
            results: indices
                .zip(&outcome.results)
                .map(|(run_index, report)| ShardResult {
                    run_index,
                    report: serde_json::to_value(report),
                })
                .collect(),
        }
    }

    fn merge_shards(
        &self,
        quick: bool,
        artifacts: &[ShardArtifact],
    ) -> Result<WorkloadOutput, MergeError> {
        let manifest = self.spec(quick).manifest();
        let total = manifest.len();
        let fingerprint = crate::manifest::fingerprint_hex(manifest.fingerprint());
        let mut slots: Vec<Option<W::Report>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        let counts: Vec<usize> = artifacts.iter().map(|a| a.shard_count).collect();
        for artifact in artifacts {
            if artifact.workload != Workload::name(self) {
                return Err(MergeError::msg(format!(
                    "artifact belongs to `{}`, not `{}`",
                    artifact.workload,
                    Workload::name(self)
                )));
            }
            if artifact.total_runs != total {
                return Err(MergeError::msg(format!(
                    "artifact was sharded from a {}-run manifest, expected {total} \
                     (quick/full mismatch?)",
                    artifact.total_runs
                )));
            }
            if artifact.fingerprint != fingerprint {
                return Err(MergeError::msg(format!(
                    "artifact is stale: fingerprint {} does not match the \
                     current grid's {fingerprint} (the sweep changed since \
                     the shard ran)",
                    artifact.fingerprint
                )));
            }
            if counts.iter().any(|&c| c != artifact.shard_count) {
                return Err(MergeError::msg("artifacts disagree on shard count"));
            }
            for entry in &artifact.results {
                if entry.run_index >= total {
                    return Err(MergeError::msg(format!(
                        "run index {} out of range ({total} runs)",
                        entry.run_index
                    )));
                }
                let slot = &mut slots[entry.run_index];
                if slot.is_some() {
                    return Err(MergeError::msg(format!(
                        "run {} reported by two shards",
                        entry.run_index
                    )));
                }
                let report = serde_json::from_value::<W::Report>(entry.report.clone())
                    .map_err(|e| MergeError::msg(format!("run {}: {e}", entry.run_index)))?;
                *slot = Some(report);
            }
        }
        let mut results = Vec::with_capacity(total);
        for (index, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(report) => results.push(report),
                None => {
                    return Err(MergeError::msg(format!(
                        "run {index} missing — not covered by any shard"
                    )))
                }
            }
        }
        Ok(finish(self, &manifest, &results))
    }

    fn trace_first_run(&self, quick: bool, capacity: usize) -> Option<String> {
        let manifest = self.spec(quick).manifest();
        let plan = manifest.runs.first()?;
        self.trace_run(plan, capacity)
    }

    fn observe_first_run(&self, quick: bool, opts: TelemetryOptions) -> Option<RunTelemetry> {
        let manifest = self.spec(quick).manifest();
        let plan = manifest.runs.first()?;
        self.observe_run(plan, opts)
    }
}

/// The shared tail of every execution path: tabulate + aggregate. Keeping
/// it in one place is what makes `merge_shards` byte-identical to
/// `execute`.
fn finish<W: Workload>(
    workload: &W,
    manifest: &Manifest<W::Config>,
    results: &[W::Report],
) -> WorkloadOutput {
    let result = workload.tabulate(manifest, results);
    let aggregate = SweepReport {
        name: Workload::name(workload).to_owned(),
        title: Workload::title(workload).to_owned(),
        axis_names: manifest.axis_names.clone(),
        replicates: manifest.replicates,
        base_seed: manifest.base_seed,
        cells: summarize_cells(manifest, results, |r| workload.metrics(r)),
    };
    WorkloadOutput {
        name: Workload::name(workload).to_owned(),
        title: Workload::title(workload).to_owned(),
        result,
        aggregate,
    }
}

/// The canonical shard-artifact file name: `<name>.shard<i>of<n>.json`.
pub fn shard_artifact_name(workload: &str, shard: Shard) -> String {
    format!("{workload}.shard{}of{}.json", shard.index, shard.count)
}

/// Renders a shard artifact as pretty JSON (trailing newline).
pub fn render_shard(artifact: &ShardArtifact) -> String {
    let mut out = serde_json::to_string_pretty(artifact).expect("artifact serializes");
    out.push('\n');
    out
}

/// Parses a shard artifact back from JSON text.
pub fn parse_shard(text: &str) -> Result<ShardArtifact, MergeError> {
    serde_json::from_str(text).map_err(|e| MergeError::msg(format!("bad shard artifact: {e}")))
}
