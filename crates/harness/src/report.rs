//! Deterministic JSON and CSV sweep reports.
//!
//! Report payloads deliberately contain **no timing, thread count, host
//! name or other environment-dependent data**: the same sweep must produce
//! byte-identical artifacts whether it ran on one worker or sixteen.

use crate::agg::CellSummary;
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// A complete, serializable sweep report.
#[derive(Clone, Debug, Serialize)]
pub struct SweepReport {
    /// Sweep name (used as the artifact file stem).
    pub name: String,
    /// Human description of what the sweep varies.
    pub title: String,
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// Base seed the per-run seeds derive from.
    pub base_seed: u64,
    /// Per-cell aggregates.
    pub cells: Vec<CellSummary>,
}

/// Renders the report as pretty JSON.
pub fn render_json(report: &SweepReport) -> String {
    let mut out = serde_json::to_string_pretty(report).expect("report serializes");
    out.push('\n');
    out
}

/// Renders the report as CSV: one row per `(cell, metric)` with the axis
/// labels as leading columns.
pub fn render_csv(report: &SweepReport) -> String {
    let mut out = String::new();
    for name in &report.axis_names {
        out.push_str(&csv_field(name));
        out.push(',');
    }
    out.push_str("metric,n,mean,stddev,p50,p95,ci95\n");
    for cell in &report.cells {
        for metric in &cell.metrics {
            for label in &cell.labels {
                out.push_str(&csv_field(label));
                out.push(',');
            }
            let a = &metric.agg;
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                csv_field(&metric.name),
                a.n,
                a.mean,
                a.stddev,
                a.p50,
                a.p95,
                a.ci95
            ));
        }
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Writes `<dir>/<name>.json` and `<dir>/<name>.csv`, creating `dir` if
/// needed; returns both paths.
pub fn write_report(dir: &Path, report: &SweepReport) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{}.json", report.name));
    let csv_path = dir.join(format!("{}.csv", report.name));
    std::fs::write(&json_path, render_json(report))?;
    std::fs::write(&csv_path, render_csv(report))?;
    Ok((json_path, csv_path))
}
