//! Deterministic JSON and CSV sweep reports.
//!
//! Report payloads deliberately contain **no timing, thread count, host
//! name or other environment-dependent data**: the same sweep must produce
//! byte-identical artifacts whether it ran on one worker or sixteen.

use crate::agg::CellSummary;
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// A complete, serializable sweep report.
#[derive(Clone, Debug, Serialize)]
pub struct SweepReport {
    /// Sweep name (used as the artifact file stem).
    pub name: String,
    /// Human description of what the sweep varies.
    pub title: String,
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// Base seed the per-run seeds derive from.
    pub base_seed: u64,
    /// Per-cell aggregates.
    pub cells: Vec<CellSummary>,
}

/// Renders the report as pretty JSON.
pub fn render_json(report: &SweepReport) -> String {
    let mut out = serde_json::to_string_pretty(report).expect("report serializes");
    out.push('\n');
    out
}

/// Renders the report as CSV: one row per `(cell, metric)` with the axis
/// labels as leading columns.
pub fn render_csv(report: &SweepReport) -> String {
    let mut out = String::new();
    for name in &report.axis_names {
        out.push_str(&csv_field(name));
        out.push(',');
    }
    out.push_str("metric,n,mean,stddev,p50,p95,ci95\n");
    for cell in &report.cells {
        for metric in &cell.metrics {
            for label in &cell.labels {
                out.push_str(&csv_field(label));
                out.push(',');
            }
            let a = &metric.agg;
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                csv_field(&metric.name),
                a.n,
                a.mean,
                a.stddev,
                a.p50,
                a.p95,
                a.ci95
            ));
        }
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Writes `<dir>/<name>.json` and `<dir>/<name>.csv`, creating `dir` if
/// needed; returns both paths. Writes are atomic (tmp + rename), so a
/// concurrent reader — or a resumed drive — never sees a torn report.
pub fn write_report(dir: &Path, report: &SweepReport) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{}.json", report.name));
    let csv_path = dir.join(format!("{}.csv", report.name));
    crate::driver::write_atomic(&json_path, render_json(report))?;
    crate::driver::write_atomic(&csv_path, render_csv(report))?;
    Ok((json_path, csv_path))
}

/// A printable, serializable experiment table — the `EXPERIMENTS.md`
/// rendering every workload's tabulator produces.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `"F2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }
}

/// A finished experiment: its table plus any raw series for plotting.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentResult {
    /// The rendered table.
    pub table: Table,
    /// Named raw series (e.g. CDF points) for plotting.
    pub series: serde_json::Value,
}

impl ExperimentResult {
    /// A result with no extra series.
    pub fn table_only(table: Table) -> Self {
        ExperimentResult {
            table,
            series: serde_json::Value::Null,
        }
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats an optional float (`-` when absent).
pub fn fmt_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_owned(), fmt_f)
}

/// Formats a `±` confidence half-width column: `-` when the cell had a
/// single replicate (no interval), the plain magnitude otherwise.
pub fn fmt_ci(agg: &crate::agg::Aggregate) -> String {
    if agg.n < 2 {
        "-".to_owned()
    } else {
        fmt_f(agg.ci95)
    }
}
