//! The transport-generic drive scheduler: per-host job slots, heartbeat
//! deadlines, deterministic backoff, fencing, and shard reassignment.
//!
//! [`drive_with`] is the loop [`drive`](crate::driver::drive) (and the
//! multi-host `sweep drive`) runs on. Time is counted in *poll rounds* —
//! one [`Transport::tick`] per loop iteration — never in wall-clock, so a
//! drive over a deterministic transport (the in-process
//! [`SimHostTransport`](crate::transport::SimHostTransport)) is a
//! deterministic state machine end to end: same faults, same schedule,
//! same final [`DriveState`], byte for byte.
//!
//! The failure taxonomy the scheduler enforces:
//!
//! * **Shard failures** (nonzero exit, or a zero exit whose artifacts
//!   fail validation — absent and invalid are one outcome, see
//!   [`Validation`]) consume the per-shard `--retries` budget, with a
//!   [deterministically seeded](backoff_rounds) capped exponential
//!   backoff between attempts.
//! * **Host failures** (a dead host, a heartbeat past the deadline, a
//!   fetch that cannot complete) are not the shard's fault: the
//!   execution is **fenced** — the transport guarantees its artifacts
//!   can never be delivered — and the shard is reassigned to a surviving
//!   host without consuming the retry budget. A bounded host-failure
//!   budget (`hosts × 4` reassignments per shard) prevents livelock when
//!   every host keeps dying.
//!
//! Fencing *before* reassignment is what upholds the exactly-once
//! contract: no shard ever has two live executions, so the merged output
//! of a faulted multi-host drive is byte-identical to a single-process
//! run.

use crate::driver::{
    write_atomic, DriveError, DriveOptions, DriveReport, DriveState, DriveTuning, HostEntry,
    ShardEntry, ShardReport, ShardStatus,
};
use crate::manifest::{derive_seed, Shard};
use crate::transport::{CommandSpec, HostHealth, PollStatus, Transport};
use std::path::{Path, PathBuf};

/// Everything a command builder needs to assemble one shard attempt.
pub struct SpawnCtx<'a> {
    /// The shard to run.
    pub shard: Shard,
    /// Zero-based attempt number (first-attempt-only fault hooks key off
    /// this).
    pub attempt: usize,
    /// The host the attempt was scheduled onto.
    pub host: usize,
    /// The host's staging directory when the transport uses one — the
    /// child must write its artifacts there; `None` means write straight
    /// into the coordinator's output directory.
    pub staging: Option<&'a Path>,
}

/// The unified validator outcome: a shard's artifacts are either valid,
/// absent, or present-but-wrong. **Absent and invalid are the same
/// failure** as far as the scheduler is concerned — both mean the attempt
/// did not deliver its contract, whatever the exit code claimed — they
/// differ only in the log line and in whether the validator had anything
/// to delete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Validation {
    /// Artifacts are complete and current: the shard is done.
    Valid,
    /// Artifacts (or their directory) are missing entirely.
    Missing(String),
    /// Artifacts exist but are torn, stale, or incomplete; the validator
    /// has removed them so a re-run starts clean.
    Invalid(String),
}

impl Validation {
    /// The failure reason, or `None` when valid.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Validation::Valid => None,
            Validation::Missing(reason) | Validation::Invalid(reason) => Some(reason),
        }
    }
}

/// Rounds a shard waits before retry `failure + 1` (zero-based `failure`
/// counts prior shard-fault failures): an exponential schedule
/// `base·2^(failure−1)` capped at `cap`, plus a deterministic jitter
/// derived from `(seed, shard_index, failure)` — a pure function, so two
/// drives with the same seed produce identical backoff schedules, with no
/// wall-clock anywhere. The first retry is immediate (matching the
/// historical driver).
pub fn backoff_rounds(
    seed: u64,
    shard_index: usize,
    failure: usize,
    tuning: &DriveTuning,
) -> usize {
    if failure == 0 {
        return 0;
    }
    let base = tuning.backoff_base.max(1);
    let exp = base
        .saturating_mul(1usize << (failure - 1).min(16))
        .min(tuning.backoff_cap);
    let jitter = derive_seed(seed, ((shard_index as u64) << 32) | failure as u64) as usize % base;
    (exp + jitter).min(tuning.backoff_cap)
}

struct RunningExec {
    exec: crate::transport::ExecId,
    host: usize,
    /// Consecutive rounds the host has been unreachable.
    unreachable: usize,
    /// Consecutive rounds a completed execution's fetch has failed.
    fetch_stalls: usize,
    /// The process exited zero; we are trying to fetch its artifacts.
    exited: bool,
}

struct Slot {
    status: ShardStatus,
    attempts: usize,
    assignments: Vec<usize>,
    reason: Option<String>,
    run: Option<RunningExec>,
    /// For pending shards: the earliest round a spawn may happen.
    ready_round: usize,
    /// Shard-fault failures so far (drives the backoff schedule).
    failures: usize,
    /// Host-fault reassignments so far (bounded separately).
    host_failures: usize,
}

impl Slot {
    fn pending(&self) -> bool {
        self.status == ShardStatus::Pending && self.run.is_none()
    }

    fn settled(&self) -> bool {
        matches!(
            self.status,
            ShardStatus::Done { .. } | ShardStatus::Failed { .. }
        )
    }
}

struct HostBook {
    used: usize,
    dead: bool,
    /// Currently observed unreachable (logged once per episode).
    suspect: bool,
}

/// What Phase A decided to do with one running execution.
enum Action {
    Nothing,
    /// Host-fault: fence the exec, free the slot, reassign the shard.
    HostFault {
        reason: String,
    },
    /// Shard-fault: the attempt failed on its own merits.
    AttemptFailed {
        exit_code: Option<i32>,
        reason: String,
    },
    /// The shard completed and validated.
    Done,
}

/// Orchestrates a sharded sweep over any [`Transport`]; see the
/// [module docs](self) for the scheduling and failure model.
///
/// * `command(ctx)` builds the [`CommandSpec`] for one attempt.
/// * `validate(shard)` classifies the shard's artifacts *in the
///   coordinator's output directory* (after fetch): it runs before any
///   spawn (resume) and after every fetched attempt.
/// * `log(message)` receives human-readable progress lines.
pub fn drive_with(
    transport: &mut dyn Transport,
    opts: &DriveOptions,
    mut command: impl FnMut(&SpawnCtx<'_>) -> CommandSpec,
    mut validate: impl FnMut(Shard) -> Validation,
    mut log: impl FnMut(&str),
) -> Result<DriveReport, DriveError> {
    assert!(opts.shard_count > 0, "a drive needs at least one shard");
    assert!(opts.jobs > 0, "a drive needs at least one job slot");
    let count = opts.shard_count;
    let tuning = &opts.tuning;
    let host_count = transport.host_count();
    let max_host_failures = host_count * 4;

    let mut slots: Vec<Slot> = (0..count)
        .map(|_| Slot {
            status: ShardStatus::Pending,
            attempts: 0,
            assignments: Vec::new(),
            reason: None,
            run: None,
            ready_round: 0,
            failures: 0,
            host_failures: 0,
        })
        .collect();
    let mut hosts: Vec<HostBook> = (0..host_count)
        .map(|_| HostBook {
            used: 0,
            dead: false,
            suspect: false,
        })
        .collect();
    let mut events: Vec<String> = Vec::new();
    let staging: Vec<Option<PathBuf>> = (0..host_count).map(|h| transport.staging_dir(h)).collect();

    // Resume pass: skip every shard whose artifacts are already valid.
    for (index, slot) in slots.iter_mut().enumerate() {
        let shard = Shard::new(index, count);
        match validate(shard) {
            Validation::Valid => {
                slot.status = ShardStatus::Done { attempts: 0 };
                log(&format!("shard {shard}: resumed (artifacts valid)"));
            }
            Validation::Missing(reason) | Validation::Invalid(reason) => {
                log(&format!("shard {shard}: will run ({reason})"));
            }
        }
    }
    write_state(opts, &hosts, &slots, &events);

    let mut round = 0usize;
    loop {
        let mut dirty = false;
        let mut progressed = false;

        // --- Phase A: service running executions -------------------------
        #[allow(clippy::needless_range_loop)] // &mut slots[index] + &mut hosts at once
        for index in 0..count {
            let (exec, host) = match &slots[index].run {
                Some(r) => (r.exec, r.host),
                None => continue,
            };
            let shard = Shard::new(index, count);
            let action = match transport.health(host) {
                HostHealth::Dead => {
                    mark_host_dead(&mut hosts[host], host, "lost", &mut events, &mut log);
                    Action::HostFault {
                        reason: format!("host {host} died mid-run"),
                    }
                }
                HostHealth::Unreachable => {
                    if !hosts[host].suspect {
                        hosts[host].suspect = true;
                        events.push(format!("host {host} unreachable"));
                        log(&format!("host {host}: unreachable"));
                    }
                    let run = slots[index].run.as_mut().expect("checked above");
                    run.unreachable += 1;
                    if run.unreachable > tuning.heartbeat_deadline {
                        Action::HostFault {
                            reason: format!(
                                "host {host} unreachable past the {}-round deadline",
                                tuning.heartbeat_deadline
                            ),
                        }
                    } else {
                        Action::Nothing
                    }
                }
                HostHealth::Reachable => {
                    if hosts[host].suspect {
                        hosts[host].suspect = false;
                        events.push(format!("host {host} reachable again"));
                        log(&format!("host {host}: reachable again"));
                    }
                    slots[index]
                        .run
                        .as_mut()
                        .expect("checked above")
                        .unreachable = 0;
                    let exited = slots[index].run.as_ref().expect("checked above").exited;
                    let now_exited = if exited {
                        true
                    } else {
                        match transport.poll(exec) {
                            PollStatus::Running => false,
                            PollStatus::Lost => {
                                mark_host_dead(
                                    &mut hosts[host],
                                    host,
                                    "lost",
                                    &mut events,
                                    &mut log,
                                );
                                slots[index].run = None; // freed below via action
                                slots[index].run = Some(RunningExec {
                                    exec,
                                    host,
                                    unreachable: 0,
                                    fetch_stalls: 0,
                                    exited: false,
                                });
                                // fall through to the host-fault action
                                hosts[host].suspect = false;
                                let reason = format!("execution lost with host {host}");
                                apply_action(
                                    transport,
                                    &mut slots[index],
                                    &mut hosts,
                                    shard,
                                    round,
                                    opts,
                                    max_host_failures,
                                    Action::HostFault { reason },
                                    &mut validate,
                                    &mut events,
                                    &mut log,
                                );
                                dirty = true;
                                progressed = true;
                                continue;
                            }
                            PollStatus::Exited {
                                success: false,
                                exit_code,
                            } => {
                                apply_action(
                                    transport,
                                    &mut slots[index],
                                    &mut hosts,
                                    shard,
                                    round,
                                    opts,
                                    max_host_failures,
                                    Action::AttemptFailed {
                                        exit_code,
                                        reason: format!(
                                            "process exited with {}",
                                            exit_code.map_or_else(
                                                || "a signal".to_owned(),
                                                |c| format!("code {c}")
                                            )
                                        ),
                                    },
                                    &mut validate,
                                    &mut events,
                                    &mut log,
                                );
                                dirty = true;
                                progressed = true;
                                continue;
                            }
                            PollStatus::Exited { success: true, .. } => {
                                slots[index].run.as_mut().expect("checked above").exited = true;
                                true
                            }
                        }
                    };
                    if now_exited {
                        match transport.fetch_artifacts(exec) {
                            Ok(()) => Action::Done,
                            Err(reason) => {
                                let run = slots[index].run.as_mut().expect("checked above");
                                run.fetch_stalls += 1;
                                if run.fetch_stalls > tuning.heartbeat_deadline {
                                    Action::HostFault {
                                        reason: format!("artifact fetch kept failing: {reason}"),
                                    }
                                } else {
                                    Action::Nothing
                                }
                            }
                        }
                    } else {
                        Action::Nothing
                    }
                }
            };
            if !matches!(action, Action::Nothing) {
                apply_action(
                    transport,
                    &mut slots[index],
                    &mut hosts,
                    shard,
                    round,
                    opts,
                    max_host_failures,
                    action,
                    &mut validate,
                    &mut events,
                    &mut log,
                );
                dirty = true;
                progressed = true;
            }
        }

        // --- Phase B: spawn ready pending shards --------------------------
        #[allow(clippy::needless_range_loop)] // &mut slots[index] + &mut hosts at once
        for index in 0..count {
            if !slots[index].pending() || slots[index].ready_round > round {
                continue;
            }
            let shard = Shard::new(index, count);
            // Least-loaded live, reachable host; ties to the lowest index.
            let target = (0..host_count)
                .filter(|&h| !hosts[h].dead && hosts[h].used < opts.jobs)
                .filter(|&h| transport.health(h) == HostHealth::Reachable)
                .min_by_key(|&h| (hosts[h].used, h));
            let Some(host) = target else {
                continue; // all hosts busy, partitioned, or dead — wait
            };
            let attempt = slots[index].attempts;
            let ctx = SpawnCtx {
                shard,
                attempt,
                host,
                staging: staging[host].as_deref(),
            };
            let spec = command(&ctx);
            match transport.spawn(host, shard, &spec) {
                Ok(exec) => {
                    slots[index].attempts += 1;
                    slots[index].assignments.push(host);
                    slots[index].status = ShardStatus::Running;
                    slots[index].run = Some(RunningExec {
                        exec,
                        host,
                        unreachable: 0,
                        fetch_stalls: 0,
                        exited: false,
                    });
                    hosts[host].used += 1;
                    if host_count > 1 {
                        events.push(format!(
                            "shard {index} -> host {host} (attempt {})",
                            attempt + 1
                        ));
                    }
                    log(&format!(
                        "shard {shard}: attempt {} started on host {host}",
                        attempt + 1
                    ));
                }
                Err(reason) => {
                    // A spawn refusal is a host failure: mark the host
                    // dead and reassign, unless no host remains.
                    mark_host_dead(
                        &mut hosts[host],
                        host,
                        &format!("refused spawn: {reason}"),
                        &mut events,
                        &mut log,
                    );
                    requeue_host_failure(
                        &mut slots[index],
                        shard,
                        round,
                        max_host_failures,
                        &format!("cannot spawn shard process: {reason}"),
                        &mut events,
                        &mut log,
                    );
                }
            }
            dirty = true;
            progressed = true;
        }

        // --- Phase C: termination ----------------------------------------
        if slots.iter().all(Slot::settled) {
            write_state(opts, &hosts, &slots, &events);
            break;
        }
        if hosts.iter().all(|h| h.dead) {
            // Nothing can ever run again: fail every unsettled shard.
            for (index, slot) in slots.iter_mut().enumerate() {
                if !slot.settled() {
                    if let Some(run) = slot.run.take() {
                        transport.fence(run.exec);
                    }
                    slot.status = ShardStatus::Failed {
                        attempts: slot.attempts,
                        exit_code: None,
                    };
                    slot.reason
                        .get_or_insert_with(|| "no live hosts remain".to_owned());
                    log(&format!("shard {index}: giving up — no live hosts remain"));
                }
            }
            write_state(opts, &hosts, &slots, &events);
            break;
        }
        if dirty {
            write_state(opts, &hosts, &slots, &events);
        }

        // --- Phase D: advance time ---------------------------------------
        transport.tick(!progressed);
        round += 1;
    }

    let failed: Vec<(usize, String)> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.status, ShardStatus::Failed { .. }))
        .map(|(i, s)| {
            let reason = s.reason.clone().unwrap_or_else(|| "unknown".to_owned());
            (i, reason)
        })
        .collect();
    if !failed.is_empty() {
        return Err(DriveError { failed });
    }
    Ok(DriveReport {
        shards: slots
            .iter()
            .enumerate()
            .map(|(index, s)| ShardReport {
                shard: Shard::new(index, count),
                attempts: s.attempts,
            })
            .collect(),
    })
}

/// Records a host's permanent death (once) in events and the log.
fn mark_host_dead(
    host: &mut HostBook,
    index: usize,
    what: &str,
    events: &mut Vec<String>,
    log: &mut impl FnMut(&str),
) {
    if !host.dead {
        host.dead = true;
        events.push(format!("host {index} {what}"));
        log(&format!("host {index}: {what}"));
    }
}

/// Applies one Phase-A decision: frees the job slot, fences when the
/// fault was the host's, and routes the shard to done / retry / failed.
#[allow(clippy::too_many_arguments)]
fn apply_action(
    transport: &mut dyn Transport,
    slot: &mut Slot,
    hosts: &mut [HostBook],
    shard: Shard,
    round: usize,
    opts: &DriveOptions,
    max_host_failures: usize,
    action: Action,
    validate: &mut impl FnMut(Shard) -> Validation,
    events: &mut Vec<String>,
    log: &mut impl FnMut(&str),
) {
    let Some(run) = slot.run.take() else { return };
    hosts[run.host].used = hosts[run.host].used.saturating_sub(1);
    match action {
        Action::Nothing => slot.run = Some(run),
        Action::HostFault { reason } => {
            transport.fence(run.exec);
            requeue_host_failure(slot, shard, round, max_host_failures, &reason, events, log);
        }
        Action::AttemptFailed { exit_code, reason } => {
            attempt_failed(slot, shard, round, opts, exit_code, reason, log);
        }
        Action::Done => match validate(shard) {
            Validation::Valid => {
                let attempts = slot.attempts;
                slot.status = ShardStatus::Done { attempts };
                log(&format!("shard {shard}: done (attempt {attempts})"));
            }
            // The zero-exit-but-no-artifact case: exit codes are claims,
            // artifacts are facts — absent and invalid fail identically.
            Validation::Missing(reason) | Validation::Invalid(reason) => {
                attempt_failed(slot, shard, round, opts, None, reason, log);
            }
        },
    }
}

/// A shard-fault failure: consume the retry budget or settle as `Failed`.
fn attempt_failed(
    slot: &mut Slot,
    shard: Shard,
    round: usize,
    opts: &DriveOptions,
    exit_code: Option<i32>,
    reason: String,
    log: &mut impl FnMut(&str),
) {
    if slot.attempts <= opts.retries {
        slot.failures += 1;
        let wait = backoff_rounds(
            opts.tuning.seed,
            shard.index,
            slot.failures - 1,
            &opts.tuning,
        );
        slot.ready_round = round + wait;
        slot.status = ShardStatus::Pending;
        log(&format!(
            "shard {shard}: retrying after {wait} round(s) — {reason}"
        ));
    } else {
        slot.status = ShardStatus::Failed {
            attempts: slot.attempts,
            exit_code,
        };
        slot.reason = Some(reason.clone());
        log(&format!("shard {shard}: giving up — {reason}"));
    }
}

/// A host-fault failure: reassign without consuming the retry budget,
/// bounded by the host-failure budget.
fn requeue_host_failure(
    slot: &mut Slot,
    shard: Shard,
    round: usize,
    max_host_failures: usize,
    reason: &str,
    events: &mut Vec<String>,
    log: &mut impl FnMut(&str),
) {
    slot.host_failures += 1;
    if slot.host_failures > max_host_failures {
        slot.status = ShardStatus::Failed {
            attempts: slot.attempts,
            exit_code: None,
        };
        slot.reason = Some(format!("host-failure budget exhausted: {reason}"));
        log(&format!(
            "shard {shard}: giving up — host-failure budget exhausted ({reason})"
        ));
        return;
    }
    slot.status = ShardStatus::Pending;
    slot.ready_round = round + 1;
    events.push(format!("shard {} reassigned: {reason}", shard.index));
    log(&format!("shard {shard}: reassigning — {reason}"));
}

/// Writes the current state manifest atomically.
fn write_state(opts: &DriveOptions, hosts: &[HostBook], slots: &[Slot], events: &[String]) {
    let state = DriveState {
        shard_count: opts.shard_count,
        workloads: opts.workloads.clone(),
        fingerprints: opts.fingerprints.clone(),
        quick: opts.quick,
        hosts: hosts
            .iter()
            .enumerate()
            .map(|(index, h)| HostEntry {
                index,
                lost: h.dead,
            })
            .collect(),
        shards: slots
            .iter()
            .enumerate()
            .map(|(index, s)| ShardEntry {
                index,
                status: s.status.clone(),
                assignments: s.assignments.clone(),
            })
            .collect(),
        events: events.to_vec(),
    };
    if let Some(dir) = opts.state_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    write_atomic(&opts.state_path, state.render()).expect("can write drive state");
}
