//! The declarative sweep builder: a base configuration plus named axes.

use crate::manifest::{derive_seed, Manifest, RunPlan};
use std::fmt::Display;
use std::sync::Arc;

type Apply<C> = Arc<dyn Fn(&mut C) + Send + Sync>;
type SeedSetter<C> = Arc<dyn Fn(&mut C, u64) + Send + Sync>;

/// How per-run seeds derive from the base seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// `derive_seed(base, run_index)` — every run independent. Right for
    /// pure Monte-Carlo sampling where cells are never compared pairwise.
    #[default]
    PerRun,
    /// `derive_seed(base, replicate)` — replicate *k* uses the same seed in
    /// every grid cell (common random numbers). Right when cells are
    /// compared against each other (strategy A vs B on the *same* fleet),
    /// which is how the paper-style figures read.
    PerReplicate,
}

/// One grid dimension: a name plus labelled configuration mutations.
pub struct Axis<C> {
    pub(crate) name: String,
    pub(crate) points: Vec<AxisPoint<C>>,
}

pub(crate) struct AxisPoint<C> {
    pub(crate) label: String,
    pub(crate) apply: Apply<C>,
}

impl<C> Axis<C> {
    /// Number of points on this axis.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the axis has no points (its sweep would be empty).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A declarative sweep: base configuration, axes, seed policy, replicates.
///
/// Axes expand cartesian, first axis slowest (row-major), replicates
/// innermost — the natural order of the nested `for` loops this replaces.
pub struct SweepSpec<C> {
    base: C,
    axes: Vec<Axis<C>>,
    replicates: usize,
    base_seed: u64,
    seed_mode: SeedMode,
    seed_setter: Option<SeedSetter<C>>,
}

impl<C: Clone> SweepSpec<C> {
    /// Starts a sweep from a base configuration.
    pub fn new(base: C) -> Self {
        SweepSpec {
            base,
            axes: Vec::new(),
            replicates: 1,
            base_seed: 0,
            seed_mode: SeedMode::default(),
            seed_setter: None,
        }
    }

    /// Adds an axis whose labels come from the values' `Display`.
    pub fn axis<V, I, F>(self, name: &str, values: I, apply: F) -> Self
    where
        V: Display + Send + Sync + 'static,
        I: IntoIterator<Item = V>,
        F: Fn(&mut C, &V) + Send + Sync + 'static,
    {
        self.axis_labeled(name, values, |v| v.to_string(), apply)
    }

    /// Adds an axis with an explicit label function (for values without a
    /// useful `Display`, e.g. strategy enums).
    pub fn axis_labeled<V, I, L, F>(mut self, name: &str, values: I, label: L, apply: F) -> Self
    where
        V: Send + Sync + 'static,
        I: IntoIterator<Item = V>,
        L: Fn(&V) -> String,
        F: Fn(&mut C, &V) + Send + Sync + 'static,
    {
        let apply = Arc::new(apply);
        let points = values
            .into_iter()
            .map(|v| {
                let apply = Arc::clone(&apply);
                AxisPoint {
                    label: label(&v),
                    apply: Arc::new(move |cfg: &mut C| apply(cfg, &v)) as Apply<C>,
                }
            })
            .collect();
        self.axes.push(Axis {
            name: name.to_owned(),
            points,
        });
        self
    }

    /// Sets the number of seed replicates per grid cell (default 1).
    pub fn replicates(mut self, n: usize) -> Self {
        assert!(n > 0, "a sweep needs at least one replicate per cell");
        self.replicates = n;
        self
    }

    /// Sets the base seed every per-run seed derives from (default 0).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the seed-derivation mode (default [`SeedMode::PerRun`]).
    /// [`SeedMode::PerReplicate`] gives common random numbers across grid
    /// cells, the right choice for paired strategy comparisons.
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Installs the hook writing each run's derived seed into its
    /// configuration. Without it, configurations keep the base's own seed
    /// field untouched (all replicates then collapse to one sample).
    pub fn seed_with<F>(mut self, setter: F) -> Self
    where
        F: Fn(&mut C, u64) + Send + Sync + 'static,
    {
        self.seed_setter = Some(Arc::new(setter));
        self
    }

    /// Number of grid cells (product of axis lengths; 1 with no axes).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Expands the cartesian grid into a flat, ordered run manifest.
    pub fn manifest(&self) -> Manifest<C> {
        let cell_count = self.cell_count();
        let mut runs = Vec::with_capacity(cell_count * self.replicates);
        for cell in 0..cell_count {
            // Decode the cell index into per-axis positions, first axis
            // slowest: cell = ((a0 * len1) + a1) * len2 + a2 ...
            let mut positions = vec![0usize; self.axes.len()];
            let mut rest = cell;
            for (k, axis) in self.axes.iter().enumerate().rev() {
                positions[k] = rest % axis.len();
                rest /= axis.len();
            }
            let mut config = self.base.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &pos) in self.axes.iter().zip(&positions) {
                let point = &axis.points[pos];
                (point.apply)(&mut config);
                labels.push(point.label.clone());
            }
            for replicate in 0..self.replicates {
                let run_index = cell * self.replicates + replicate;
                let seed_index = match self.seed_mode {
                    SeedMode::PerRun => run_index,
                    SeedMode::PerReplicate => replicate,
                };
                let seed = derive_seed(self.base_seed, seed_index as u64);
                let mut config = config.clone();
                if let Some(setter) = &self.seed_setter {
                    setter(&mut config, seed);
                }
                runs.push(RunPlan {
                    run_index,
                    cell,
                    replicate,
                    seed,
                    labels: labels.clone(),
                    config,
                });
            }
        }
        Manifest {
            axis_names: self.axes.iter().map(|a| a.name.clone()).collect(),
            base_seed: self.base_seed,
            cell_count,
            replicates: self.replicates,
            runs,
        }
    }
}
