//! The worker-pool executor: parallelism *between* deterministic runs,
//! never inside one, with results reassembled in manifest order.

use crate::manifest::{Manifest, Shard};
use crate::RunPlan;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Progress snapshot streamed to the caller as results land.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Runs completed so far.
    pub done: usize,
    /// Total runs in the manifest.
    pub total: usize,
}

/// A finished sweep execution.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// One result per manifest run, **in manifest order** — independent of
    /// which worker finished when.
    pub results: Vec<R>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time of the whole sweep (not part of any report payload;
    /// reports must stay byte-identical across thread counts).
    pub wall: Duration,
}

fn resolve_threads(requested: usize, total_runs: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if requested == 0 { hw } else { requested };
    threads.clamp(1, total_runs.max(1))
}

/// Runs every manifest entry through `runner` across a thread pool.
///
/// `runner` must be a pure function of the [`RunPlan`] (the configuration
/// carries its own derived seed), which is what makes the output
/// byte-identical regardless of `threads`. `threads = 0` means "one worker
/// per available core".
pub fn run_sweep<C, R, F>(manifest: &Manifest<C>, threads: usize, runner: F) -> SweepOutcome<R>
where
    C: Sync,
    R: Send,
    F: Fn(&RunPlan<C>) -> R + Sync,
{
    run_sweep_with_progress(manifest, threads, runner, |_| {})
}

/// [`run_sweep`] with a progress callback invoked on the calling thread
/// each time a result lands (in completion order, not manifest order).
pub fn run_sweep_with_progress<C, R, F, P>(
    manifest: &Manifest<C>,
    threads: usize,
    runner: F,
    progress: P,
) -> SweepOutcome<R>
where
    C: Sync,
    R: Send,
    F: Fn(&RunPlan<C>) -> R + Sync,
    P: FnMut(Progress),
{
    run_slice_with_progress(&manifest.runs, threads, runner, progress)
}

/// Runs one shard's slice of the manifest through the pool. Results come
/// back in manifest order *within the shard*; merging shards back into a
/// full result vector is the job of [`crate::workload::AnyWorkload::merge_shards`].
pub fn run_shard_with_progress<C, R, F, P>(
    manifest: &Manifest<C>,
    shard: Shard,
    threads: usize,
    runner: F,
    progress: P,
) -> SweepOutcome<R>
where
    C: Sync,
    R: Send,
    F: Fn(&RunPlan<C>) -> R + Sync,
    P: FnMut(Progress),
{
    run_slice_with_progress(manifest.shard_runs(shard), threads, runner, progress)
}

/// The pool itself, over any ordered slice of runs: parallelism *between*
/// deterministic runs, results reassembled in slice order.
fn run_slice_with_progress<C, R, F, P>(
    runs: &[RunPlan<C>],
    threads: usize,
    runner: F,
    mut progress: P,
) -> SweepOutcome<R>
where
    C: Sync,
    R: Send,
    F: Fn(&RunPlan<C>) -> R + Sync,
    P: FnMut(Progress),
{
    let total = runs.len();
    let threads = resolve_threads(threads, total);
    let start = Instant::now();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);

    if total > 0 {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let runner = &runner;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let result = runner(&runs[index]);
                    if tx.send((index, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut done = 0usize;
            while let Ok((index, result)) = rx.recv() {
                debug_assert!(slots[index].is_none(), "run {index} reported twice");
                slots[index] = Some(result);
                done += 1;
                progress(Progress { done, total });
            }
            assert_eq!(done, total, "a worker died before finishing its runs");
        });
    }

    SweepOutcome {
        results: slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect(),
        threads,
        wall: start.elapsed(),
    }
}
