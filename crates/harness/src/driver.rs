//! The distributed sweep driver: shard orchestration with bounded
//! parallelism, retries, resume, and a deterministic state manifest.
//!
//! [`drive`] turns the "a human could distribute this" sharding story into
//! one the harness executes itself. Given a shard count, it:
//!
//! 1. **Resumes** — validates each shard's existing artifacts first (the
//!    caller's validator checks existence, parseability, and the manifest
//!    [fingerprint](crate::manifest::Manifest::fingerprint)); valid shards
//!    are skipped, torn or stale ones are discarded and re-run.
//! 2. **Spawns** — launches up to `jobs` shard executions per host at a
//!    time (the caller builds each [`CommandSpec`], typically re-invoking
//!    the current executable with `--shard i/n`).
//! 3. **Retries** — a shard whose process exits nonzero, dies mid-run, or
//!    leaves an absent/invalid artifact behind is re-queued up to
//!    `retries` times, with deterministically seeded capped exponential
//!    backoff; a shard stranded by a *host* failure is fenced and
//!    reassigned to a surviving host without consuming the retry budget.
//! 4. **Records** — per-shard status, host assignment history, and host
//!    health events land in a [`DriveState`] manifest
//!    (`drive-state.json`), written atomically after every transition.
//!    The final file is a pure function of what happened, never of
//!    wall-clock: no timestamps, shards always in index order.
//!
//! The driver is workload-agnostic: it never parses artifacts itself. The
//! caller supplies the command builder and the validator, which is what
//! lets `sweep drive` reuse it for every registered workload at once.
//!
//! Since the transport split, [`drive`] is a thin wrapper: it constructs a
//! [`LocalTransport`] (one implicit
//! host, `std::process::Command` execution, artifacts written in place)
//! and delegates to [`drive_with`], the
//! transport-generic scheduler. Multi-host callers build a different
//! [`Transport`](crate::transport::Transport) and call `drive_with`
//! directly.
//!
//! [`write_atomic`] is the shared tmp-file + rename primitive: a reader
//! (or a resumed driver) can never observe a half-written artifact from a
//! writer that died mid-`write` — it sees either the old file, no file, or
//! the complete new one.
//!
//! [`CommandSpec`]: crate::transport::CommandSpec

use crate::manifest::Shard;
use crate::scheduler::{drive_with, SpawnCtx, Validation};
use crate::transport::{CommandSpec, LocalTransport};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: the content lands in
/// `<path>.tmp` first and is renamed into place only once fully written,
/// so concurrent readers (and resumed drivers) never see a torn file.
pub fn write_atomic(path: &Path, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, bytes.as_ref())?;
    std::fs::rename(&tmp, path)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| "out".into(), |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// The lifecycle of one shard as the driver sees it.
///
/// `attempts` counts executions launched: a shard resumed from a valid
/// artifact finishes with `attempts: 0`, a clean first run with `1`, one
/// retry with `2`, and so on. Reassignments after host failures count as
/// attempts in this tally (each is a launch) but do not consume the retry
/// budget.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStatus {
    /// Not yet started (only ever observed in mid-run state files).
    Pending,
    /// An execution is currently running this shard.
    Running,
    /// The shard's artifacts are complete and valid.
    Done {
        /// Executions this drive launched for the shard (0 = resumed).
        attempts: usize,
    },
    /// The shard failed its final permitted attempt.
    Failed {
        /// Executions consumed.
        attempts: usize,
        /// Exit code of the last attempt (absent when killed by a signal
        /// or lost with its host).
        exit_code: Option<i32>,
    },
}

/// One shard's row in the [`DriveState`] manifest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Zero-based shard index.
    pub index: usize,
    /// Current lifecycle state.
    pub status: ShardStatus,
    /// Host index of every execution launched for this shard, in launch
    /// order — the shard's assignment history. A reassigned shard shows
    /// more than one entry; a resumed shard shows none.
    pub assignments: Vec<usize>,
}

/// One host's row in the [`DriveState`] manifest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostEntry {
    /// Zero-based host index.
    pub index: usize,
    /// Whether the drive declared this host permanently lost (died
    /// mid-run, refused a spawn, or stayed unreachable past the
    /// heartbeat deadline).
    pub lost: bool,
}

/// The `drive-state.json` manifest: what a drive was asked to do and where
/// every shard stands. Deterministic by construction — shards and hosts in
/// index order, events in occurrence order on virtual (round) time, no
/// timestamps, no scheduling-dependent fields on the single-host path —
/// so two identical drives leave byte-identical final state files.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriveState {
    /// Total shards in the split.
    pub shard_count: usize,
    /// Workload ids the drive covers, in registry order.
    pub workloads: Vec<String>,
    /// Per-workload manifest fingerprints (canonical hex), aligned with
    /// `workloads`. Artifacts stamped differently are stale.
    pub fingerprints: Vec<String>,
    /// Whether the drive ran the quick (CI-sized) grids.
    pub quick: bool,
    /// One entry per host, in index order.
    pub hosts: Vec<HostEntry>,
    /// One entry per shard, in index order.
    pub shards: Vec<ShardEntry>,
    /// Host-health and reassignment history, in occurrence order. Empty
    /// on a fault-free single-host drive.
    pub events: Vec<String>,
}

impl DriveState {
    /// Renders the state as pretty JSON (trailing newline).
    pub fn render(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("state serializes");
        out.push('\n');
        out
    }

    /// Parses a state file back from JSON text.
    pub fn parse(text: &str) -> Result<DriveState, String> {
        serde_json::from_str(text).map_err(|e| format!("bad drive state: {e}"))
    }
}

/// Scheduler knobs: deadlines and backoff, all in poll rounds (virtual
/// time), never wall-clock. The defaults suit both the real
/// [`LocalTransport`] (where a round is
/// ~15 ms of sleep when idle) and the simulated multi-host transport
/// (where a round is one deterministic step).
#[derive(Clone, Debug)]
pub struct DriveTuning {
    /// Consecutive unreachable (or fetch-failing) rounds before an
    /// execution's host is declared lost and the shard is reassigned.
    pub heartbeat_deadline: usize,
    /// Base of the capped exponential backoff schedule, in rounds.
    pub backoff_base: usize,
    /// Upper bound on any single backoff wait, in rounds.
    pub backoff_cap: usize,
    /// Seed for the deterministic backoff jitter
    /// (see [`backoff_rounds`](crate::scheduler::backoff_rounds)).
    pub seed: u64,
}

impl Default for DriveTuning {
    fn default() -> Self {
        DriveTuning {
            heartbeat_deadline: 4,
            backoff_base: 2,
            backoff_cap: 16,
            seed: 0xD21E_5EED,
        }
    }
}

/// What a drive was asked to do: the split, the parallelism bound, the
/// retry budget, and where the state manifest lives.
pub struct DriveOptions {
    /// Number of shards to split each sweep into.
    pub shard_count: usize,
    /// Maximum shard executions running at once *per host*.
    pub jobs: usize,
    /// Re-launches permitted per shard after its first attempt fails.
    /// Host failures (fence + reassign) do not count against this.
    pub retries: usize,
    /// Path of the `drive-state.json` manifest.
    pub state_path: PathBuf,
    /// Workload ids, recorded in the state manifest.
    pub workloads: Vec<String>,
    /// Per-workload manifest fingerprints (canonical hex).
    pub fingerprints: Vec<String>,
    /// Quick vs full mode, recorded in the state manifest.
    pub quick: bool,
    /// Scheduler deadlines and backoff.
    pub tuning: DriveTuning,
}

/// How one shard reached `Done`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard.
    pub shard: Shard,
    /// Executions launched (0 = resumed from a valid artifact).
    pub attempts: usize,
}

/// A successful drive: every shard done, with its attempt count.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Per-shard outcomes, in index order.
    pub shards: Vec<ShardReport>,
}

impl DriveReport {
    /// Shards that were skipped because their artifacts were already valid.
    pub fn resumed(&self) -> usize {
        self.shards.iter().filter(|s| s.attempts == 0).count()
    }

    /// Total executions launched across all shards.
    pub fn launches(&self) -> usize {
        self.shards.iter().map(|s| s.attempts).sum()
    }
}

/// A drive that could not complete: some shard exhausted its retry budget,
/// its host-failure budget, or ran out of live hosts.
#[derive(Debug)]
pub struct DriveError {
    /// `(shard index, reason)` for every permanently failed shard.
    pub failed: Vec<(usize, String)>,
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shard(s) failed permanently:", self.failed.len())?;
        for (index, reason) in &self.failed {
            write!(f, "\n  shard {index}: {reason}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DriveError {}

/// Orchestrates a multi-process sharded sweep on the local machine; see
/// the [module docs](self).
///
/// This is [`drive_with`] over a [`LocalTransport`]: one implicit host,
/// subprocesses via `std::process::Command`, artifacts written straight
/// into the output directory (fetch is a no-op). Behavior on this path is
/// unchanged from the pre-transport driver: same retry semantics, same
/// log lines, deterministic state file.
///
/// * `command(ctx)` builds the [`CommandSpec`] for one attempt of one
///   shard (`ctx.attempt` starts at 0, letting callers inject
///   first-attempt-only faults for testing; `ctx.staging` is `None` on
///   this transport).
/// * `validate(shard)` classifies the shard's artifacts on disk:
///   [`Validation::Valid`] means complete and current, [`Missing`] means
///   absent, [`Invalid`] means present but torn/stale/incomplete (the
///   validator is expected to have removed them so a re-run starts
///   clean). It runs *before* any spawn (resume: `Valid` skips the shard)
///   and *after* each attempt — a zero exit with a missing **or** invalid
///   artifact is the same failure; the driver itself never touches
///   artifact files.
/// * `log(message)` receives human-readable progress lines.
///
/// [`Missing`]: Validation::Missing
/// [`Invalid`]: Validation::Invalid
pub fn drive(
    opts: &DriveOptions,
    command: impl FnMut(&SpawnCtx<'_>) -> CommandSpec,
    validate: impl FnMut(Shard) -> Validation,
    log: impl FnMut(&str),
) -> Result<DriveReport, DriveError> {
    let mut transport = LocalTransport::new();
    drive_with(&mut transport, opts, command, validate, log)
}
