//! The distributed sweep driver: multi-process shard orchestration with
//! bounded parallelism, retries, resume, and a deterministic state manifest.
//!
//! [`drive`] turns the "a human could distribute this" sharding story into
//! one the harness executes itself. Given a shard count, it:
//!
//! 1. **Resumes** — validates each shard's existing artifacts first (the
//!    caller's validator checks existence, parseability, and the manifest
//!    [fingerprint](crate::manifest::Manifest::fingerprint)); valid shards
//!    are skipped, torn or stale ones are discarded and re-run.
//! 2. **Spawns** — launches up to `jobs` shard subprocesses at a time (the
//!    caller builds each [`Command`], typically re-invoking the current
//!    executable with `--shard i/n`).
//! 3. **Retries** — a shard whose process exits nonzero, dies mid-run, or
//!    leaves an invalid artifact behind is re-queued up to `retries` times.
//! 4. **Records** — per-shard status lands in a [`DriveState`] manifest
//!    (`drive-state.json`), written atomically after every transition. The
//!    final file is a pure function of what happened, never of wall-clock
//!    or scheduling: no timestamps, shards always in index order.
//!
//! The driver is workload-agnostic: it never parses artifacts itself. The
//! caller supplies the command builder and the validator, which is what
//! lets `sweep drive` reuse it for every registered workload at once.
//!
//! [`write_atomic`] is the shared tmp-file + rename primitive: a reader
//! (or a resumed driver) can never observe a half-written artifact from a
//! writer that died mid-`write` — it sees either the old file, no file, or
//! the complete new one.

use crate::manifest::Shard;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::Duration;

/// Writes `bytes` to `path` atomically: the content lands in
/// `<path>.tmp` first and is renamed into place only once fully written,
/// so concurrent readers (and resumed drivers) never see a torn file.
pub fn write_atomic(path: &Path, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, bytes.as_ref())?;
    std::fs::rename(&tmp, path)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| "out".into(), |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// The lifecycle of one shard as the driver sees it.
///
/// `attempts` counts subprocess launches: a shard resumed from a valid
/// artifact finishes with `attempts: 0`, a clean first run with `1`, one
/// retry with `2`, and so on.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStatus {
    /// Not yet started (only ever observed in mid-run state files).
    Pending,
    /// A subprocess is currently running this shard.
    Running,
    /// The shard's artifacts are complete and valid.
    Done {
        /// Subprocess launches this drive needed (0 = resumed).
        attempts: usize,
    },
    /// The shard failed its final permitted attempt.
    Failed {
        /// Subprocess launches consumed.
        attempts: usize,
        /// Exit code of the last attempt (absent when killed by a signal).
        exit_code: Option<i32>,
    },
}

/// One shard's row in the [`DriveState`] manifest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Zero-based shard index.
    pub index: usize,
    /// Current lifecycle state.
    pub status: ShardStatus,
}

/// The `drive-state.json` manifest: what a drive was asked to do and where
/// every shard stands. Deterministic by construction — shards in index
/// order, no timestamps, no host- or scheduling-dependent fields — so two
/// identical drives leave byte-identical final state files.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriveState {
    /// Total shards in the split.
    pub shard_count: usize,
    /// Workload ids the drive covers, in registry order.
    pub workloads: Vec<String>,
    /// Per-workload manifest fingerprints (canonical hex), aligned with
    /// `workloads`. Artifacts stamped differently are stale.
    pub fingerprints: Vec<String>,
    /// Whether the drive ran the quick (CI-sized) grids.
    pub quick: bool,
    /// One entry per shard, in index order.
    pub shards: Vec<ShardEntry>,
}

impl DriveState {
    /// Renders the state as pretty JSON (trailing newline).
    pub fn render(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("state serializes");
        out.push('\n');
        out
    }

    /// Parses a state file back from JSON text.
    pub fn parse(text: &str) -> Result<DriveState, String> {
        serde_json::from_str(text).map_err(|e| format!("bad drive state: {e}"))
    }
}

/// What a drive was asked to do: the split, the parallelism bound, the
/// retry budget, and where the state manifest lives.
pub struct DriveOptions {
    /// Number of shards to split each sweep into.
    pub shard_count: usize,
    /// Maximum shard subprocesses running at once.
    pub jobs: usize,
    /// Re-launches permitted per shard after its first attempt fails.
    pub retries: usize,
    /// Path of the `drive-state.json` manifest.
    pub state_path: PathBuf,
    /// Workload ids, recorded in the state manifest.
    pub workloads: Vec<String>,
    /// Per-workload manifest fingerprints (canonical hex).
    pub fingerprints: Vec<String>,
    /// Quick vs full mode, recorded in the state manifest.
    pub quick: bool,
}

/// How one shard reached `Done`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard.
    pub shard: Shard,
    /// Subprocess launches used (0 = resumed from a valid artifact).
    pub attempts: usize,
}

/// A successful drive: every shard done, with its attempt count.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Per-shard outcomes, in index order.
    pub shards: Vec<ShardReport>,
}

impl DriveReport {
    /// Shards that were skipped because their artifacts were already valid.
    pub fn resumed(&self) -> usize {
        self.shards.iter().filter(|s| s.attempts == 0).count()
    }

    /// Total subprocess launches across all shards.
    pub fn launches(&self) -> usize {
        self.shards.iter().map(|s| s.attempts).sum()
    }
}

/// A drive that could not complete: some shard exhausted its retry budget
/// (or a subprocess could not even be spawned).
#[derive(Debug)]
pub struct DriveError {
    /// `(shard index, reason)` for every permanently failed shard.
    pub failed: Vec<(usize, String)>,
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shard(s) failed permanently:", self.failed.len())?;
        for (index, reason) in &self.failed {
            write!(f, "\n  shard {index}: {reason}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DriveError {}

/// Internal per-shard bookkeeping.
struct Slot {
    status: ShardStatus,
    attempts: usize,
    reason: Option<String>,
}

/// Orchestrates a multi-process sharded sweep; see the [module docs](self).
///
/// * `command(shard, attempt)` builds the subprocess for one attempt of
///   one shard (attempt numbering starts at 0, letting callers inject
///   first-attempt-only faults for testing).
/// * `validate(shard)` decides whether the shard's artifacts on disk are
///   complete and current. It runs *before* any spawn (resume: `Ok` skips
///   the shard) and *after* each attempt (a zero exit with a bad artifact
///   is still a failure). On `Err` the validator is expected to have
///   removed whatever invalid artifacts it found, so a re-run starts
///   clean; the driver itself never touches artifact files.
/// * `log(message)` receives human-readable progress lines.
pub fn drive(
    opts: &DriveOptions,
    mut command: impl FnMut(Shard, usize) -> Command,
    mut validate: impl FnMut(Shard) -> Result<(), String>,
    mut log: impl FnMut(&str),
) -> Result<DriveReport, DriveError> {
    assert!(opts.shard_count > 0, "a drive needs at least one shard");
    assert!(opts.jobs > 0, "a drive needs at least one job slot");
    let count = opts.shard_count;

    let mut slots: Vec<Slot> = (0..count)
        .map(|_| Slot {
            status: ShardStatus::Pending,
            attempts: 0,
            reason: None,
        })
        .collect();
    let mut queue: VecDeque<usize> = VecDeque::new();

    // Resume pass: skip every shard whose artifacts are already valid.
    for (index, slot) in slots.iter_mut().enumerate() {
        let shard = Shard::new(index, count);
        match validate(shard) {
            Ok(()) => {
                slot.status = ShardStatus::Done { attempts: 0 };
                log(&format!("shard {shard}: resumed (artifacts valid)"));
            }
            Err(reason) => {
                log(&format!("shard {shard}: will run ({reason})"));
                queue.push_back(index);
            }
        }
    }
    write_state(opts, &slots);

    let mut running: Vec<(usize, Child)> = Vec::new();
    while !queue.is_empty() || !running.is_empty() {
        // Fill free job slots.
        while running.len() < opts.jobs {
            let Some(index) = queue.pop_front() else {
                break;
            };
            let shard = Shard::new(index, count);
            let attempt = slots[index].attempts;
            match command(shard, attempt).spawn() {
                Ok(child) => {
                    slots[index].status = ShardStatus::Running;
                    slots[index].attempts += 1;
                    log(&format!("shard {shard}: attempt {} started", attempt + 1));
                    running.push((index, child));
                }
                Err(e) => {
                    // Spawn failure is environmental, not a flaky shard:
                    // retrying the other shards can't fix a missing binary.
                    slots[index].status = ShardStatus::Failed {
                        attempts: slots[index].attempts,
                        exit_code: None,
                    };
                    slots[index].reason = Some(format!("cannot spawn shard process: {e}"));
                }
            }
            write_state(opts, &slots);
        }
        if running.is_empty() {
            break;
        }

        // Reap any finished child; sleep briefly when none is done yet.
        let mut reaped = false;
        let mut still_running = Vec::with_capacity(running.len());
        for (index, mut child) in running {
            match child.try_wait() {
                Ok(Some(exit)) => {
                    reaped = true;
                    let shard = Shard::new(index, count);
                    let outcome = if exit.success() {
                        validate(shard)
                    } else {
                        Err(format!("process exited with {exit}"))
                    };
                    match outcome {
                        Ok(()) => {
                            let attempts = slots[index].attempts;
                            slots[index].status = ShardStatus::Done { attempts };
                            log(&format!("shard {shard}: done (attempt {attempts})"));
                        }
                        Err(reason) if slots[index].attempts <= opts.retries => {
                            log(&format!("shard {shard}: retrying — {reason}"));
                            slots[index].status = ShardStatus::Pending;
                            queue.push_back(index);
                        }
                        Err(reason) => {
                            log(&format!("shard {shard}: giving up — {reason}"));
                            slots[index].status = ShardStatus::Failed {
                                attempts: slots[index].attempts,
                                exit_code: exit.code(),
                            };
                            slots[index].reason = Some(reason);
                        }
                    }
                    write_state(opts, &slots);
                }
                Ok(None) => still_running.push((index, child)),
                Err(e) => {
                    reaped = true;
                    slots[index].status = ShardStatus::Failed {
                        attempts: slots[index].attempts,
                        exit_code: None,
                    };
                    slots[index].reason = Some(format!("cannot wait on shard process: {e}"));
                    write_state(opts, &slots);
                }
            }
        }
        running = still_running;
        if !reaped && !running.is_empty() {
            std::thread::sleep(Duration::from_millis(15));
        }
    }

    let failed: Vec<(usize, String)> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.status, ShardStatus::Failed { .. }))
        .map(|(i, s)| {
            let reason = s.reason.clone().unwrap_or_else(|| "unknown".to_owned());
            (i, reason)
        })
        .collect();
    if !failed.is_empty() {
        return Err(DriveError { failed });
    }
    Ok(DriveReport {
        shards: slots
            .iter()
            .enumerate()
            .map(|(index, s)| ShardReport {
                shard: Shard::new(index, count),
                attempts: s.attempts,
            })
            .collect(),
    })
}

/// Writes the current state manifest atomically.
fn write_state(opts: &DriveOptions, slots: &[Slot]) {
    let state = DriveState {
        shard_count: opts.shard_count,
        workloads: opts.workloads.clone(),
        fingerprints: opts.fingerprints.clone(),
        quick: opts.quick,
        shards: slots
            .iter()
            .enumerate()
            .map(|(index, s)| ShardEntry {
                index,
                status: s.status.clone(),
            })
            .collect(),
    };
    if let Some(dir) = opts.state_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    write_atomic(&opts.state_path, state.render()).expect("can write drive state");
}
