//! Host transports for the distributed sweep driver: how shard processes
//! are launched, watched, and harvested across machines.
//!
//! The [`drive`](crate::scheduler::drive_with) scheduler never touches a
//! process or a socket itself — it speaks the [`Transport`] trait:
//!
//! * [`spawn`](Transport::spawn) launches one shard attempt on one host
//!   from a serializable [`CommandSpec`];
//! * [`poll`](Transport::poll) observes the execution (running / exited /
//!   lost with its host);
//! * [`health`](Transport::health) is the heartbeat: reachable,
//!   unreachable (partitioned), or dead;
//! * [`fetch_artifacts`](Transport::fetch_artifacts) moves a completed
//!   shard's artifacts from the host into the coordinator's output
//!   directory — the only way results ever reach the merge;
//! * [`fence`](Transport::fence) guarantees a given-up execution can
//!   never deliver artifacts, so a reassigned shard merges exactly once.
//!
//! Three implementations:
//!
//! * [`LocalTransport`] — today's `std::process::Command` path behind the
//!   trait: one host, always reachable, artifacts written in place (fetch
//!   is a no-op). Byte-for-byte the historical `drive` behavior.
//! * [`SimHostTransport`] — an in-process "remote host" pool running on
//!   virtual time (scheduler poll rounds, never wall-clock) with
//!   injectable launch latency, mid-run host death, coordinator
//!   partitions that heal, and per-host artifact staging so fetch loss is
//!   real. The fault-injection workhorse: a whole multi-host drive through
//!   it is a deterministic state machine.
//! * [`SshTransport`] — a stub that serializes the same spawn / poll /
//!   fetch protocol as JSON over a pluggable [`BytePipe`], so a real SSH
//!   (or container) backend is a drop-in: implement the pipe, keep the
//!   driver. [`LoopbackPipe`] serves the wire protocol against any inner
//!   transport and proves the round-trip loses nothing.

use crate::manifest::Shard;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A serializable description of one shard subprocess: program, argument
/// vector, and where its stderr should land. This is what crosses the
/// wire to a remote host — a [`Transport`] turns it into whatever its
/// execution substrate needs (a local `Command`, an `ssh` invocation, an
/// in-process simulated job).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandSpec {
    /// Program to execute.
    pub program: String,
    /// Arguments, in order.
    pub args: Vec<String>,
    /// File to receive the child's stderr (created/truncated); stdout is
    /// always discarded — shard children keep stdout silent by contract.
    pub stderr_log: Option<String>,
}

impl CommandSpec {
    /// Starts a spec for `program`.
    pub fn new(program: impl Into<String>) -> CommandSpec {
        CommandSpec {
            program: program.into(),
            args: Vec::new(),
            stderr_log: None,
        }
    }

    /// Appends one argument.
    pub fn arg(mut self, arg: impl Into<String>) -> CommandSpec {
        self.args.push(arg.into());
        self
    }

    /// Appends several arguments.
    pub fn args<I: IntoIterator<Item = S>, S: Into<String>>(mut self, args: I) -> CommandSpec {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Routes the child's stderr to `path`.
    pub fn stderr_log(mut self, path: impl Into<String>) -> CommandSpec {
        self.stderr_log = Some(path.into());
        self
    }

    /// Materializes the spec as a local [`Command`] (stdout discarded,
    /// stderr to the log file when one is set).
    pub fn to_command(&self) -> std::io::Result<Command> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args).stdout(Stdio::null());
        match &self.stderr_log {
            Some(path) => {
                let file = std::fs::File::create(path)?;
                cmd.stderr(file);
            }
            None => {
                cmd.stderr(Stdio::null());
            }
        }
        Ok(cmd)
    }
}

/// Handle for one spawned shard attempt, unique within a transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExecId(pub u64);

/// What [`Transport::poll`] observed about one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollStatus {
    /// Still running (or unobservable — a partitioned host looks like a
    /// silent one; [`Transport::health`] is how the two are told apart).
    Running,
    /// The process exited.
    Exited {
        /// Whether it exited successfully (code 0).
        success: bool,
        /// Exit code when the platform reports one.
        exit_code: Option<i32>,
    },
    /// The execution is gone with its host: it will never exit, never
    /// deliver artifacts, and must be reassigned.
    Lost,
}

/// The heartbeat view of one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostHealth {
    /// Responding normally.
    Reachable,
    /// Not currently responding (e.g. a network partition). May heal; the
    /// scheduler applies a deadline before giving up on its executions.
    Unreachable,
    /// Permanently gone. Nothing on it will ever complete.
    Dead,
}

/// How shard processes are launched, watched and harvested on a pool of
/// hosts. See the [module docs](self) for the contract each method
/// carries; all time is expressed in scheduler poll rounds via
/// [`tick`](Transport::tick), never wall-clock, so drives stay
/// deterministic wherever the transport itself is deterministic.
pub trait Transport {
    /// Number of hosts in the pool (≥ 1). Host indices are `0..count`.
    fn host_count(&self) -> usize;

    /// The host-private directory shard children must write artifacts
    /// into, or `None` when children write straight into the
    /// coordinator's output directory (the local case). Artifacts in a
    /// staging directory only become visible to the merge via
    /// [`fetch_artifacts`](Transport::fetch_artifacts).
    fn staging_dir(&self, host: usize) -> Option<PathBuf>;

    /// Launches one attempt of `shard` on `host`. `Err` means the host
    /// could not take the job at all (dead, unreachable, no executor) —
    /// the scheduler treats that as a host failure, not a shard failure.
    fn spawn(&mut self, host: usize, shard: Shard, spec: &CommandSpec) -> Result<ExecId, String>;

    /// Observes one execution.
    fn poll(&mut self, exec: ExecId) -> PollStatus;

    /// The heartbeat for one host.
    fn health(&mut self, host: usize) -> HostHealth;

    /// Moves the execution's artifacts from its host into the
    /// coordinator's output directory. `Err` when the host is
    /// unreachable or the artifacts are absent — the scheduler retries
    /// under its deadline, then fences and reassigns.
    fn fetch_artifacts(&mut self, exec: ExecId) -> Result<(), String>;

    /// Permanently abandons an execution: kill it if possible and
    /// guarantee its artifacts can never be fetched, so a reassigned
    /// shard cannot be merged twice. Idempotent.
    fn fence(&mut self, exec: ExecId);

    /// Advances transport time by one scheduler poll round. `idle` is
    /// true when the scheduler made no progress this round (the local
    /// transport naps briefly; simulated transports advance virtual time
    /// regardless).
    fn tick(&mut self, idle: bool);
}

// ---------------------------------------------------------------------------
// LocalTransport
// ---------------------------------------------------------------------------

/// The historical single-machine path behind the [`Transport`] trait: one
/// host (index 0), `std::process::Command` children, artifacts written
/// directly into the coordinator's output directory. Always reachable;
/// fetch is a no-op; `tick(idle)` naps 15 ms exactly like the old driver
/// loop did when nothing had been reaped.
#[derive(Default)]
pub struct LocalTransport {
    children: Vec<LocalExec>,
}

struct LocalExec {
    child: Option<Child>,
    exited: Option<(bool, Option<i32>)>,
}

impl LocalTransport {
    /// Creates the single-host local transport.
    pub fn new() -> LocalTransport {
        LocalTransport::default()
    }
}

impl Transport for LocalTransport {
    fn host_count(&self) -> usize {
        1
    }

    fn staging_dir(&self, _host: usize) -> Option<PathBuf> {
        None
    }

    fn spawn(&mut self, host: usize, _shard: Shard, spec: &CommandSpec) -> Result<ExecId, String> {
        assert_eq!(host, 0, "the local transport has exactly one host");
        let child = spec
            .to_command()
            .and_then(|mut cmd| cmd.spawn())
            .map_err(|e| format!("cannot spawn shard process: {e}"))?;
        self.children.push(LocalExec {
            child: Some(child),
            exited: None,
        });
        Ok(ExecId(self.children.len() as u64 - 1))
    }

    fn poll(&mut self, exec: ExecId) -> PollStatus {
        let slot = &mut self.children[exec.0 as usize];
        if let Some((success, code)) = slot.exited {
            return PollStatus::Exited {
                success,
                exit_code: code,
            };
        }
        let Some(child) = slot.child.as_mut() else {
            return PollStatus::Lost; // fenced
        };
        match child.try_wait() {
            Ok(Some(status)) => {
                slot.exited = Some((status.success(), status.code()));
                slot.child = None;
                PollStatus::Exited {
                    success: status.success(),
                    exit_code: status.code(),
                }
            }
            Ok(None) => PollStatus::Running,
            // A child we cannot wait on is as gone as a lost host.
            Err(_) => PollStatus::Lost,
        }
    }

    fn health(&mut self, _host: usize) -> HostHealth {
        HostHealth::Reachable
    }

    fn fetch_artifacts(&mut self, _exec: ExecId) -> Result<(), String> {
        Ok(()) // children already wrote into the coordinator's out dir
    }

    fn fence(&mut self, exec: ExecId) {
        let slot = &mut self.children[exec.0 as usize];
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
    }

    fn tick(&mut self, idle: bool) {
        if idle {
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}

// ---------------------------------------------------------------------------
// SimHostTransport
// ---------------------------------------------------------------------------

/// One unit of simulated work handed to a [`SimHostTransport`] runner.
pub struct SimJob<'a> {
    /// Host executing the job.
    pub host: usize,
    /// The shard being run.
    pub shard: Shard,
    /// The host's private staging directory; artifacts written here only
    /// reach the coordinator via a successful fetch.
    pub staging: &'a Path,
    /// Zero-based attempt number for this shard *as this transport saw
    /// it* (first-attempt-only fault hooks key off this).
    pub attempt: usize,
}

/// The injectable failure schedule of a [`SimHostTransport`]. All times
/// are virtual poll rounds; everything here is deterministic.
#[derive(Clone, Debug)]
pub struct SimFaults {
    /// Rounds between `spawn` and the job actually starting (launch
    /// latency).
    pub launch_delay: usize,
    /// Rounds a job runs before completing.
    pub run_rounds: usize,
    /// Hosts that die permanently mid-run: `lost_after` rounds into their
    /// first executing job, the host goes [`HostHealth::Dead`] and every
    /// execution on it is lost.
    pub lost_hosts: Vec<usize>,
    /// See [`lost_hosts`](SimFaults::lost_hosts).
    pub lost_after: usize,
    /// Hosts that are already dead when their first spawn arrives — the
    /// "host died between validate and spawn" case. Spawn returns `Err`.
    pub dead_at_spawn: Vec<usize>,
    /// Host pairs partitioned *from the coordinator* together: the moment
    /// the first execution on either host completes (i.e. exactly when
    /// the coordinator would fetch its artifacts), both hosts turn
    /// [`HostHealth::Unreachable`] for
    /// [`partition_rounds`](SimFaults::partition_rounds) rounds, then
    /// heal and rejoin.
    pub partitions: Vec<(usize, usize)>,
    /// How long a partition lasts before healing. Must exceed the
    /// scheduler's heartbeat deadline for the partition to force a
    /// reassignment (the interesting case).
    pub partition_rounds: usize,
}

impl Default for SimFaults {
    fn default() -> SimFaults {
        SimFaults {
            launch_delay: 1,
            run_rounds: 2,
            lost_hosts: Vec::new(),
            lost_after: 1,
            dead_at_spawn: Vec::new(),
            partitions: Vec::new(),
            partition_rounds: 10,
        }
    }
}

/// One recorded fetch, for tests asserting exactly-once delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchRecord {
    /// The fetched execution.
    pub exec: ExecId,
    /// Host it ran on.
    pub host: usize,
    /// Shard index it delivered.
    pub shard_index: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum SimExecState {
    Launching { remaining: usize },
    Running { remaining: usize },
    Exited { success: bool },
}

struct SimExec {
    host: usize,
    shard: Shard,
    state: SimExecState,
    fenced: bool,
    fetched: bool,
}

struct SimHost {
    dead: bool,
    unreachable_until: Option<usize>,
    ran_anything: bool,
    rounds_running: usize,
}

/// An in-process pool of simulated remote hosts running on virtual time.
///
/// Jobs execute via the caller-supplied runner closure (synchronously, at
/// the virtual round their run time elapses) and write artifacts into a
/// per-host staging directory; [`fetch_artifacts`](Transport::fetch_artifacts)
/// copies files matching the shard's `*.shard<i>of<n>.json` suffix into
/// the coordinator's output directory. Faults come from a [`SimFaults`]
/// schedule. Spawn asserts the exactly-once invariant: a shard may never
/// have two live (unfenced, unexited) executions at once.
pub struct SimHostTransport<'r> {
    hosts: Vec<SimHost>,
    execs: Vec<SimExec>,
    faults: SimFaults,
    out_dir: PathBuf,
    staging_root: PathBuf,
    runner: Box<dyn FnMut(SimJob<'_>) -> bool + 'r>,
    spawns_per_shard: Vec<usize>,
    fetch_log: Vec<FetchRecord>,
    round: usize,
    partition_started: Vec<bool>,
}

impl<'r> SimHostTransport<'r> {
    /// Creates a pool of `hosts` simulated hosts. `out_dir` is the
    /// coordinator's artifact directory (fetch target); staging
    /// directories are created under `staging_root` as `host<i>/`.
    /// `runner` executes one job and returns whether it "exited 0".
    pub fn new(
        hosts: usize,
        shard_count: usize,
        out_dir: impl Into<PathBuf>,
        staging_root: impl Into<PathBuf>,
        faults: SimFaults,
        runner: impl FnMut(SimJob<'_>) -> bool + 'r,
    ) -> SimHostTransport<'r> {
        assert!(hosts > 0, "a pool needs at least one host");
        let partition_started = vec![false; faults.partitions.len()];
        SimHostTransport {
            hosts: (0..hosts)
                .map(|_| SimHost {
                    dead: false,
                    unreachable_until: None,
                    ran_anything: false,
                    rounds_running: 0,
                })
                .collect(),
            execs: Vec::new(),
            faults,
            out_dir: out_dir.into(),
            staging_root: staging_root.into(),
            runner: Box::new(runner),
            spawns_per_shard: vec![0; shard_count],
            fetch_log: Vec::new(),
            round: 0,
            partition_started,
        }
    }

    /// The fetches that actually delivered artifacts, in order — the
    /// exactly-once evidence tests assert on.
    pub fn fetch_log(&self) -> &[FetchRecord] {
        &self.fetch_log
    }

    /// Current virtual round (number of `tick` calls).
    pub fn round(&self) -> usize {
        self.round
    }

    fn staging_path(&self, host: usize) -> PathBuf {
        self.staging_root.join(format!("host{host}"))
    }

    fn host_reachable(&self, host: usize) -> bool {
        !self.hosts[host].dead
            && self.hosts[host]
                .unreachable_until
                .is_none_or(|until| self.round >= until)
    }

    /// Artifact files in `dir` belonging to `shard` (suffix match on the
    /// canonical `<name>.shard<i>of<n>.json` spelling).
    fn shard_files(dir: &Path, shard: Shard) -> Vec<PathBuf> {
        let suffix = format!(".shard{}of{}.json", shard.index, shard.count);
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.ends_with(&suffix))
            })
            .collect();
        files.sort();
        files
    }

    /// Runs due state transitions for one virtual round.
    fn advance(&mut self) {
        self.round += 1;
        // Mid-run host death: `lost_after` rounds into a lost host's
        // first executing job, the host dies for good.
        for &lost in &self.faults.lost_hosts {
            let host = &mut self.hosts[lost];
            if host.dead {
                continue;
            }
            if host.ran_anything {
                host.rounds_running += 1;
                if host.rounds_running >= self.faults.lost_after {
                    host.dead = true;
                }
            }
        }
        // Progress executions on live hosts.
        for i in 0..self.execs.len() {
            if self.execs[i].fenced || self.hosts[self.execs[i].host].dead {
                continue;
            }
            match self.execs[i].state {
                SimExecState::Launching { remaining } => {
                    self.execs[i].state = if remaining <= 1 {
                        self.hosts[self.execs[i].host].ran_anything = true;
                        SimExecState::Running {
                            remaining: self.faults.run_rounds,
                        }
                    } else {
                        SimExecState::Launching {
                            remaining: remaining - 1,
                        }
                    };
                }
                SimExecState::Running { remaining } => {
                    if remaining <= 1 {
                        let host = self.execs[i].host;
                        let shard = self.execs[i].shard;
                        let staging = self.staging_path(host);
                        std::fs::create_dir_all(&staging).expect("can create staging dir");
                        let attempt = self.spawns_per_shard[shard.index] - 1;
                        let success = (self.runner)(SimJob {
                            host,
                            shard,
                            staging: &staging,
                            attempt,
                        });
                        self.execs[i].state = SimExecState::Exited { success };
                        self.partition_on_completion(host);
                    } else {
                        self.execs[i].state = SimExecState::Running {
                            remaining: remaining - 1,
                        };
                    }
                }
                SimExecState::Exited { .. } => {}
            }
        }
    }

    /// Activates any not-yet-started partition involving `host`, now that
    /// an execution on it just completed — the coordinator is about to
    /// fetch, and the network goes away under it.
    fn partition_on_completion(&mut self, host: usize) {
        for (p, &(a, b)) in self.faults.partitions.iter().enumerate() {
            if self.partition_started[p] || (host != a && host != b) {
                continue;
            }
            self.partition_started[p] = true;
            let until = self.round + self.faults.partition_rounds;
            for h in [a, b] {
                if !self.hosts[h].dead {
                    self.hosts[h].unreachable_until = Some(until);
                }
            }
        }
    }
}

impl Transport for SimHostTransport<'_> {
    fn host_count(&self) -> usize {
        self.hosts.len()
    }

    fn staging_dir(&self, host: usize) -> Option<PathBuf> {
        Some(self.staging_path(host))
    }

    fn spawn(&mut self, host: usize, shard: Shard, _spec: &CommandSpec) -> Result<ExecId, String> {
        if self.faults.dead_at_spawn.contains(&host) {
            self.hosts[host].dead = true;
        }
        if self.hosts[host].dead {
            return Err(format!("host {host} is dead"));
        }
        if !self.host_reachable(host) {
            return Err(format!("host {host} is unreachable"));
        }
        // The exactly-once invariant the scheduler must uphold: fencing
        // precedes reassignment, so no shard ever has two live
        // executions. A violation here is a scheduler bug.
        assert!(
            !self.execs.iter().any(|e| e.shard == shard
                && !e.fenced
                && !matches!(e.state, SimExecState::Exited { .. })),
            "shard {shard} spawned concurrently on two hosts"
        );
        self.spawns_per_shard[shard.index] += 1;
        self.execs.push(SimExec {
            host,
            shard,
            state: SimExecState::Launching {
                remaining: self.faults.launch_delay.max(1),
            },
            fenced: false,
            fetched: false,
        });
        Ok(ExecId(self.execs.len() as u64 - 1))
    }

    fn poll(&mut self, exec: ExecId) -> PollStatus {
        let e = &self.execs[exec.0 as usize];
        if e.fenced || self.hosts[e.host].dead {
            return PollStatus::Lost;
        }
        if !self.host_reachable(e.host) {
            // A partitioned host is indistinguishable from a silent one.
            return PollStatus::Running;
        }
        match e.state {
            SimExecState::Exited { success } => PollStatus::Exited {
                success,
                exit_code: Some(i32::from(!success)),
            },
            _ => PollStatus::Running,
        }
    }

    fn health(&mut self, host: usize) -> HostHealth {
        if self.hosts[host].dead {
            HostHealth::Dead
        } else if self.host_reachable(host) {
            HostHealth::Reachable
        } else {
            HostHealth::Unreachable
        }
    }

    fn fetch_artifacts(&mut self, exec: ExecId) -> Result<(), String> {
        let (host, shard, fenced) = {
            let e = &self.execs[exec.0 as usize];
            (e.host, e.shard, e.fenced)
        };
        if fenced {
            return Err("execution was fenced".to_owned());
        }
        if self.hosts[host].dead {
            return Err(format!("host {host} is dead"));
        }
        if !self.host_reachable(host) {
            return Err(format!("host {host} is unreachable"));
        }
        let staging = self.staging_path(host);
        let files = Self::shard_files(&staging, shard);
        if files.is_empty() {
            // "Artifact absent" is a failure at the transport layer too —
            // a zero-exit job that wrote nothing (or whose staging
            // directory vanished) must never look fetched.
            return Err(format!(
                "no artifacts for shard {shard} in {}",
                staging.display()
            ));
        }
        std::fs::create_dir_all(&self.out_dir)
            .map_err(|e| format!("cannot create {}: {e}", self.out_dir.display()))?;
        for file in &files {
            let name = file.file_name().expect("listed file has a name");
            let text =
                std::fs::read(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            crate::driver::write_atomic(&self.out_dir.join(name), &text)
                .map_err(|e| format!("cannot write fetched artifact: {e}"))?;
        }
        self.execs[exec.0 as usize].fetched = true;
        self.fetch_log.push(FetchRecord {
            exec,
            host,
            shard_index: shard.index,
        });
        Ok(())
    }

    fn fence(&mut self, exec: ExecId) {
        let (host, shard) = {
            let e = &mut self.execs[exec.0 as usize];
            if e.fenced {
                return;
            }
            e.fenced = true;
            (e.host, e.shard)
        };
        // Kill-and-scrub: whatever the execution wrote can never be
        // fetched, even after a partition heals.
        for file in Self::shard_files(&self.staging_path(host), shard) {
            let _ = std::fs::remove_file(file);
        }
    }

    fn tick(&mut self, _idle: bool) {
        self.advance();
    }
}

// ---------------------------------------------------------------------------
// SshTransport (wire-protocol stub)
// ---------------------------------------------------------------------------

/// A synchronous request/response byte channel to a remote transport
/// endpoint — the seam where a real SSH (or container-exec) backend plugs
/// in. Each call sends one serialized [`WireRequest`] and returns the
/// serialized [`WireResponse`].
pub trait BytePipe {
    /// Sends `request` and returns the peer's response bytes.
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, String>;
}

/// One [`Transport`] operation on the wire. JSON-serialized by
/// [`SshTransport`]; a remote agent decodes it, performs the operation,
/// and answers with a [`WireResponse`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireRequest {
    /// How many hosts does the remote pool expose?
    HostCount,
    /// Where should host `host`'s shard children write artifacts?
    StagingDir {
        /// Host index.
        host: usize,
    },
    /// Launch a shard attempt.
    Spawn {
        /// Host index.
        host: usize,
        /// Shard index.
        shard_index: usize,
        /// Shard count.
        shard_count: usize,
        /// The command to run.
        spec: CommandSpec,
    },
    /// Observe an execution.
    Poll {
        /// Execution id.
        exec: u64,
    },
    /// Heartbeat a host.
    Health {
        /// Host index.
        host: usize,
    },
    /// Deliver an execution's artifacts to the coordinator.
    Fetch {
        /// Execution id.
        exec: u64,
    },
    /// Abandon an execution permanently.
    Fence {
        /// Execution id.
        exec: u64,
    },
    /// Advance one poll round.
    Tick {
        /// Whether the scheduler made no progress this round.
        idle: bool,
    },
}

/// The answer to one [`WireRequest`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireResponse {
    /// Host pool size.
    HostCount {
        /// Number of hosts.
        count: usize,
    },
    /// Staging directory (as a path string), when the remote uses one.
    StagingDir {
        /// The directory, or `None` for write-in-place.
        dir: Option<String>,
    },
    /// Spawn succeeded.
    Spawned {
        /// New execution id.
        exec: u64,
    },
    /// Poll result.
    Polled {
        /// `"running"`, `"exited"` or `"lost"`.
        status: String,
        /// For `"exited"`: whether it succeeded.
        success: bool,
        /// For `"exited"`: the exit code, when reported.
        exit_code: Option<i32>,
    },
    /// Health result: `"reachable"`, `"unreachable"` or `"dead"`.
    Health {
        /// The health word.
        status: String,
    },
    /// Fetch/fence/tick acknowledged.
    Ok,
    /// The operation failed (spawn refused, fetch failed, …).
    Err {
        /// Why.
        reason: String,
    },
}

/// The SSH transport stub: every [`Transport`] call serializes a
/// [`WireRequest`] as JSON, pushes it through the [`BytePipe`], and
/// decodes the [`WireResponse`]. A production backend only has to carry
/// bytes between the driver and a remote agent speaking this protocol —
/// the scheduler, validation, fencing and merge semantics all ride along
/// unchanged.
pub struct SshTransport<P: BytePipe> {
    pipe: P,
    host_count: usize,
    staging: Vec<Option<PathBuf>>,
}

impl<P: BytePipe> SshTransport<P> {
    /// Wraps a byte pipe to a remote transport agent. The host count and
    /// per-host staging directories are fixed per pool, so they are
    /// queried once here and cached for the `&self` trait methods.
    pub fn new(pipe: P) -> SshTransport<P> {
        let mut t = SshTransport {
            pipe,
            host_count: 1,
            staging: Vec::new(),
        };
        if let WireResponse::HostCount { count } = t.call(&WireRequest::HostCount) {
            t.host_count = count.max(1);
        }
        t.staging = (0..t.host_count)
            .map(|host| match t.call(&WireRequest::StagingDir { host }) {
                WireResponse::StagingDir { dir } => dir.map(PathBuf::from),
                _ => None,
            })
            .collect();
        t
    }

    /// Unwraps the pipe (e.g. to recover a loopback's inner transport).
    pub fn into_pipe(self) -> P {
        self.pipe
    }

    fn call(&mut self, request: &WireRequest) -> WireResponse {
        let bytes = serde_json::to_string(request).expect("wire request serializes");
        let reply = match self.pipe.exchange(bytes.as_bytes()) {
            Ok(reply) => reply,
            Err(reason) => return WireResponse::Err { reason },
        };
        let text = match String::from_utf8(reply) {
            Ok(text) => text,
            Err(_) => {
                return WireResponse::Err {
                    reason: "non-UTF-8 wire response".to_owned(),
                }
            }
        };
        match serde_json::from_str(&text) {
            Ok(response) => response,
            Err(e) => WireResponse::Err {
                reason: format!("bad wire response: {e}"),
            },
        }
    }
}

impl<P: BytePipe> Transport for SshTransport<P> {
    fn host_count(&self) -> usize {
        self.host_count
    }

    fn staging_dir(&self, host: usize) -> Option<PathBuf> {
        self.staging.get(host).cloned().flatten()
    }

    fn spawn(&mut self, host: usize, shard: Shard, spec: &CommandSpec) -> Result<ExecId, String> {
        match self.call(&WireRequest::Spawn {
            host,
            shard_index: shard.index,
            shard_count: shard.count,
            spec: spec.clone(),
        }) {
            WireResponse::Spawned { exec } => Ok(ExecId(exec)),
            WireResponse::Err { reason } => Err(reason),
            other => Err(format!("unexpected spawn response: {other:?}")),
        }
    }

    fn poll(&mut self, exec: ExecId) -> PollStatus {
        match self.call(&WireRequest::Poll { exec: exec.0 }) {
            WireResponse::Polled {
                status,
                success,
                exit_code,
            } => match status.as_str() {
                "running" => PollStatus::Running,
                "exited" => PollStatus::Exited { success, exit_code },
                _ => PollStatus::Lost,
            },
            _ => PollStatus::Lost,
        }
    }

    fn health(&mut self, host: usize) -> HostHealth {
        match self.call(&WireRequest::Health { host }) {
            WireResponse::Health { status } => match status.as_str() {
                "reachable" => HostHealth::Reachable,
                "unreachable" => HostHealth::Unreachable,
                _ => HostHealth::Dead,
            },
            _ => HostHealth::Dead,
        }
    }

    fn fetch_artifacts(&mut self, exec: ExecId) -> Result<(), String> {
        match self.call(&WireRequest::Fetch { exec: exec.0 }) {
            WireResponse::Ok => Ok(()),
            WireResponse::Err { reason } => Err(reason),
            other => Err(format!("unexpected fetch response: {other:?}")),
        }
    }

    fn fence(&mut self, exec: ExecId) {
        let _ = self.call(&WireRequest::Fence { exec: exec.0 });
    }

    fn tick(&mut self, idle: bool) {
        let _ = self.call(&WireRequest::Tick { idle });
    }
}

/// A [`BytePipe`] that serves the wire protocol against an in-process
/// inner [`Transport`] — the "remote agent" folded into the same process.
/// `SshTransport<LoopbackPipe<T>>` must behave exactly like `T`, which is
/// what pins the protocol's completeness in tests.
pub struct LoopbackPipe<T: Transport> {
    inner: T,
}

impl<T: Transport> LoopbackPipe<T> {
    /// Wraps an inner transport as the remote endpoint.
    pub fn new(inner: T) -> LoopbackPipe<T> {
        LoopbackPipe { inner }
    }

    /// Unwraps the inner transport (e.g. to inspect a sim's fetch log).
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn serve(&mut self, request: WireRequest) -> WireResponse {
        let inner = &mut self.inner;
        match request {
            WireRequest::HostCount => WireResponse::HostCount {
                count: inner.host_count(),
            },
            WireRequest::StagingDir { host } => WireResponse::StagingDir {
                dir: inner
                    .staging_dir(host)
                    .map(|p| p.to_string_lossy().into_owned()),
            },
            WireRequest::Spawn {
                host,
                shard_index,
                shard_count,
                spec,
            } => match inner.spawn(host, Shard::new(shard_index, shard_count), &spec) {
                Ok(exec) => WireResponse::Spawned { exec: exec.0 },
                Err(reason) => WireResponse::Err { reason },
            },
            WireRequest::Poll { exec } => match inner.poll(ExecId(exec)) {
                PollStatus::Running => WireResponse::Polled {
                    status: "running".to_owned(),
                    success: false,
                    exit_code: None,
                },
                PollStatus::Exited { success, exit_code } => WireResponse::Polled {
                    status: "exited".to_owned(),
                    success,
                    exit_code,
                },
                PollStatus::Lost => WireResponse::Polled {
                    status: "lost".to_owned(),
                    success: false,
                    exit_code: None,
                },
            },
            WireRequest::Health { host } => WireResponse::Health {
                status: match inner.health(host) {
                    HostHealth::Reachable => "reachable",
                    HostHealth::Unreachable => "unreachable",
                    HostHealth::Dead => "dead",
                }
                .to_owned(),
            },
            WireRequest::Fetch { exec } => match inner.fetch_artifacts(ExecId(exec)) {
                Ok(()) => WireResponse::Ok,
                Err(reason) => WireResponse::Err { reason },
            },
            WireRequest::Fence { exec } => {
                inner.fence(ExecId(exec));
                WireResponse::Ok
            }
            WireRequest::Tick { idle } => {
                inner.tick(idle);
                WireResponse::Ok
            }
        }
    }
}

impl<T: Transport> BytePipe for LoopbackPipe<T> {
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, String> {
        let text = std::str::from_utf8(request).map_err(|_| "non-UTF-8 wire request".to_owned())?;
        let request: WireRequest =
            serde_json::from_str(text).map_err(|e| format!("bad wire request: {e}"))?;
        let response = self.serve(request);
        Ok(serde_json::to_string(&response)
            .expect("wire response serializes")
            .into_bytes())
    }
}
