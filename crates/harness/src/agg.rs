//! Per-cell statistics across seed replicates.

use crate::manifest::Manifest;
use serde::Serialize;

/// Two-sided 95 % Student-t critical values for small samples, indexed by
/// degrees of freedom 1..=30; larger samples use the normal 1.96.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary statistics over one metric's replicate samples.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Aggregate {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when n < 2).
    pub stddev: f64,
    /// Median (linear interpolation between order statistics).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// Half-width of the 95 % confidence interval on the mean
    /// (Student-t for n ≤ 31, normal beyond; 0 when n < 2).
    pub ci95: f64,
}

impl Aggregate {
    /// Computes all statistics from a sample.
    pub fn from_samples(samples: &[f64]) -> Aggregate {
        let n = samples.len();
        if n == 0 {
            return Aggregate {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                p50: 0.0,
                p95: 0.0,
                ci95: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let ss = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
            (ss / (n - 1) as f64).sqrt()
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric samples must not be NaN"));
        let ci95 = if n < 2 {
            0.0
        } else {
            let df = n - 1;
            let t = if df <= T_95.len() { T_95[df - 1] } else { 1.96 };
            t * stddev / (n as f64).sqrt()
        };
        Aggregate {
            n,
            mean,
            stddev,
            p50: interpolated_percentile(&sorted, 0.50),
            p95: interpolated_percentile(&sorted, 0.95),
            ci95,
        }
    }

    /// Aggregates one extracted metric across a slice of reports — the
    /// per-cell helper every replicated table column uses.
    pub fn of<R>(results: &[R], metric: impl Fn(&R) -> f64) -> Aggregate {
        let samples: Vec<f64> = results.iter().map(metric).collect();
        Aggregate::from_samples(&samples)
    }
}

/// Percentile by linear interpolation over a pre-sorted sample.
///
/// Intentionally mirrors `airdnd_sim::stats` rather than depending on it:
/// the harness stays generic over any workspace (its only dependencies are
/// the serialization stand-ins), so the simulation substrate must not leak
/// in here. Keep the two in sync if the interpolation policy ever changes.
fn interpolated_percentile(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// One metric's aggregate within a cell.
#[derive(Clone, Debug, Serialize)]
pub struct MetricSummary {
    /// Metric name, as produced by the extractor.
    pub name: String,
    /// Statistics across the cell's replicates.
    pub agg: Aggregate,
}

/// One grid cell: its axis labels plus every metric's aggregate.
#[derive(Clone, Debug, Serialize)]
pub struct CellSummary {
    /// Cell index in the manifest grid.
    pub cell: usize,
    /// One label per axis, in axis order.
    pub labels: Vec<String>,
    /// Aggregates, in extractor order.
    pub metrics: Vec<MetricSummary>,
}

/// Aggregates sweep results per grid cell.
///
/// `extract` maps one run's result to named metric values; every run of a
/// cell must yield the same metric names in the same order.
///
/// # Panics
///
/// Panics if `results` does not align with the manifest, or a cell's runs
/// disagree on metric names.
pub fn summarize_cells<C, R, F>(
    manifest: &Manifest<C>,
    results: &[R],
    extract: F,
) -> Vec<CellSummary>
where
    F: Fn(&R) -> Vec<(&'static str, f64)>,
{
    assert_eq!(
        results.len(),
        manifest.runs.len(),
        "results must align with the manifest"
    );
    let mut cells = Vec::with_capacity(manifest.cell_count);
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let cell_results = manifest.cell_results(results, cell);
        let per_run: Vec<Vec<(&'static str, f64)>> = cell_results.iter().map(&extract).collect();
        let names: Vec<&'static str> = per_run[0].iter().map(|(name, _)| *name).collect();
        let metrics = names
            .iter()
            .enumerate()
            .map(|(k, name)| {
                let samples: Vec<f64> = per_run
                    .iter()
                    .map(|metrics| {
                        assert_eq!(
                            metrics[k].0, *name,
                            "metric order must match across replicates"
                        );
                        metrics[k].1
                    })
                    .collect();
                MetricSummary {
                    name: (*name).to_owned(),
                    agg: Aggregate::from_samples(&samples),
                }
            })
            .collect();
        cells.push(CellSummary {
            cell,
            labels: plans[0].labels.clone(),
            metrics,
        });
    }
    cells
}
