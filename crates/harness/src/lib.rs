//! # airdnd-harness — parallel, deterministic sweep orchestration
//!
//! Every figure the AirDnD reproduction regenerates is a *sweep*: the same
//! scenario run over a cartesian grid of parameters (fleet density,
//! strategy, churn, selection weights) with replicated seeds per cell.
//! This crate turns that pattern into a first-class subsystem:
//!
//! 1. [`SweepSpec`] / [`spec::Axis`] — a declarative builder expanding a
//!    base configuration over named axes into a flat run [`Manifest`].
//!    Each run gets a seed derived through a splittable hash
//!    ([`manifest::derive_seed`]) of `(base_seed, run_index)` — or of
//!    `(base_seed, replicate)` under [`spec::SeedMode::PerReplicate`],
//!    which reuses replicate *k*'s seed in every cell (common random
//!    numbers for paired comparisons). Either way, adding an axis value
//!    never perturbs the seeds of the runs before it.
//! 2. [`run_sweep`] — a worker pool (std threads + channels, no external
//!    dependencies) farming runs across cores and reassembling results
//!    **in manifest order**. The parallelism is *between* deterministic
//!    runs, never inside one — the Monte-Carlo-across-runs model — so
//!    `threads = N` output is byte-identical to `threads = 1`.
//! 3. [`agg`] — per-cell statistics across seed replicates: mean, sample
//!    stddev, p50/p95, and 95 % confidence intervals (Student-t for small
//!    samples).
//! 4. [`report`] — deterministic JSON and CSV writers, plus the [`Table`]
//!    renderer experiments print. Wall-clock and thread count are
//!    deliberately excluded from report payloads so the artifacts
//!    themselves are reproducible byte-for-byte.
//! 5. [`workload`] — the generic experiment API: a [`Workload`] is any
//!    pure `Config → Report` function with typed axes (numeric grids,
//!    strategy enums, selection-weight variants, market-mechanism
//!    choices); [`AnyWorkload`] erases the types so heterogeneous figures
//!    share one registry, and [`Shard`] slicing plus an ordered merge
//!    ([`AnyWorkload::merge_shards`]) lets one sweep span processes or
//!    hosts and still reassemble byte-identically.
//! 6. [`driver`] / [`scheduler`] / [`transport`] — the distributed sweep
//!    driver. [`drive_with`] is the transport-generic scheduler: per-host
//!    bounded job slots, heartbeat-based lost-host detection, seeded
//!    capped-exponential backoff, fencing and shard reassignment — all on
//!    virtual poll-round time, never wall-clock. [`Transport`] abstracts
//!    the execution substrate: [`LocalTransport`] (subprocesses, the
//!    historical [`drive`] path), [`SimHostTransport`] (an in-process
//!    fault-injectable host pool for deterministic multi-host testing),
//!    and [`SshTransport`] (the same protocol serialized over a
//!    [`BytePipe`], so a real remote backend is a drop-in). Artifacts are
//!    validated against the manifest [fingerprint](Manifest::fingerprint)
//!    (resume skips valid completed shards; absent, torn, or stale ones
//!    are discarded and re-run — one unified [`Validation`] outcome), and
//!    per-shard status plus host assignment/health history land in a
//!    deterministic `drive-state.json`. [`write_atomic`] (tmp + rename)
//!    is what makes artifacts all-or-nothing on disk.
//!
//! ## Example
//!
//! ```
//! use airdnd_harness::{run_sweep, SweepSpec};
//!
//! #[derive(Clone)]
//! struct Cfg { size: usize, boost: bool, seed: u64 }
//!
//! let spec = SweepSpec::new(Cfg { size: 0, boost: false, seed: 0 })
//!     .axis("size", [10usize, 20], |cfg, &size| cfg.size = size)
//!     .axis("boost", [false, true], |cfg, &boost| cfg.boost = boost)
//!     .replicates(3)
//!     .base_seed(42)
//!     .seed_with(|cfg, seed| cfg.seed = seed);
//! let manifest = spec.manifest();
//! assert_eq!(manifest.runs.len(), 2 * 2 * 3);
//!
//! let outcome = run_sweep(&manifest, 4, |plan| {
//!     // Any pure function of the config; runs execute across a pool.
//!     plan.config.size as f64 + if plan.config.boost { 0.5 } else { 0.0 }
//! });
//! // Results arrive in manifest order regardless of thread interleaving.
//! assert_eq!(outcome.results.len(), 12);
//! assert_eq!(outcome.results[0], outcome.results[1].round() - 0.5 + 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod agg;
pub mod driver;
pub mod exec;
pub mod manifest;
pub mod report;
pub mod scheduler;
pub mod spec;
pub mod transport;
pub mod workload;

pub use agg::{summarize_cells, Aggregate, CellSummary, MetricSummary};
pub use driver::{
    drive, write_atomic, DriveError, DriveOptions, DriveReport, DriveState, DriveTuning, HostEntry,
    ShardEntry, ShardReport, ShardStatus,
};
pub use exec::{
    run_shard_with_progress, run_sweep, run_sweep_with_progress, Progress, SweepOutcome,
};
pub use manifest::{derive_seed, fingerprint_hex, shard_bounds, Manifest, RunPlan, Shard};
pub use report::{
    fmt_ci, fmt_f, fmt_opt, render_csv, render_json, write_report, ExperimentResult, SweepReport,
    Table,
};
pub use scheduler::{backoff_rounds, drive_with, SpawnCtx, Validation};
pub use spec::{SeedMode, SweepSpec};
pub use transport::{
    BytePipe, CommandSpec, ExecId, FetchRecord, HostHealth, LocalTransport, LoopbackPipe,
    PollStatus, SimFaults, SimHostTransport, SimJob, SshTransport, Transport, WireRequest,
    WireResponse,
};
pub use workload::{
    parse_shard, render_shard, shard_artifact_name, AnyWorkload, FnWorkload, MergeError,
    ShardArtifact, ShardResult, Workload, WorkloadOutput,
};
