//! A deterministic event timeline keyed by `(timestamp, sequence)`.
//!
//! The timeline is the heart of the event-scheduled scenario core: typed
//! events go in with an absolute due time, and come back out in
//! nondecreasing time order. Events scheduled for the same instant pop in
//! the order they were scheduled — the monotone sequence number is the
//! tiebreak — so the pop order is a *total* order determined entirely by
//! the schedule calls, never by heap internals, thread count or hashing.
//!
//! This mirrors the contract of `airdnd_sim::Engine`'s internal queue
//! (which stays in place for actor-style tests) but without the actor
//! indirection: the caller owns the world and reacts to each popped event
//! directly.

use airdnd_sim::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued event: due time, schedule sequence, payload.
#[derive(Clone, Debug)]
struct Queued<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Queued<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Queued<E> {}

impl<E> PartialOrd for Queued<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Queued<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so the std max-heap pops the earliest (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of scenario events.
///
/// ```
/// use airdnd_engine::Timeline;
/// use airdnd_sim::{SimDuration, SimTime};
///
/// let mut tl = Timeline::new();
/// tl.schedule_at(SimTime::ZERO + SimDuration::from_millis(5), "late");
/// tl.schedule_at(SimTime::ZERO, "early");
/// tl.schedule_at(SimTime::ZERO, "early-too"); // same instant: schedule order
/// let horizon = SimTime::ZERO + SimDuration::from_secs(1);
/// assert_eq!(tl.pop_before(horizon).unwrap().1, "early");
/// assert_eq!(tl.pop_before(horizon).unwrap().1, "early-too");
/// assert_eq!(tl.pop_before(horizon).unwrap().1, "late");
/// assert!(tl.pop_before(horizon).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Timeline<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Queued<E>>,
    popped: u64,
}

impl<E> Timeline<E> {
    /// An empty timeline at `SimTime::ZERO`.
    pub fn new() -> Self {
        Timeline {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            popped: 0,
        }
    }

    /// The due time of the last popped event (`SimTime::ZERO` initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Events scheduled so far (monotone; also the next sequence number).
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Events popped so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at the absolute time `at`. Times before the
    /// current clock are clamped to it — the timeline never runs
    /// backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued { time, seq, event });
    }

    /// Schedules `event` `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Due time of the earliest queued event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.time)
    }

    /// Pops the earliest event if it is due at or before `horizon`,
    /// advancing the clock to its due time. Returns `None` when the queue
    /// is empty or the next event lies beyond the horizon (the clock is
    /// left untouched so a later, larger horizon can resume).
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.queue.peek().is_some_and(|q| q.time <= horizon) {
            let q = self.queue.pop().expect("peeked");
            self.now = q.time;
            self.popped += 1;
            Some((q.time, q.event))
        } else {
            None
        }
    }
}

impl<E> Default for Timeline<E> {
    fn default() -> Self {
        Timeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut tl = Timeline::new();
        tl.schedule_at(ms(30), 3);
        tl.schedule_at(ms(10), 1);
        tl.schedule_at(ms(20), 2);
        let horizon = ms(100);
        let order: Vec<i32> = std::iter::from_fn(|| tl.pop_before(horizon))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_pops_in_schedule_order() {
        let mut tl = Timeline::new();
        for i in 0..100 {
            tl.schedule_at(ms(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| tl.pop_before(ms(5)))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_inclusive_and_resumable() {
        let mut tl = Timeline::new();
        tl.schedule_at(ms(10), "a");
        tl.schedule_at(ms(20), "b");
        assert_eq!(tl.pop_before(ms(10)).unwrap().1, "a");
        assert!(tl.pop_before(ms(10)).is_none());
        assert_eq!(tl.now(), ms(10));
        assert_eq!(tl.pop_before(ms(20)).unwrap().1, "b");
        assert_eq!(tl.now(), ms(20));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut tl = Timeline::new();
        tl.schedule_at(ms(10), "first");
        tl.pop_before(ms(10));
        tl.schedule_at(ms(3), "late-arrival");
        let (at, e) = tl.pop_before(ms(100)).unwrap();
        assert_eq!(e, "late-arrival");
        assert_eq!(
            at,
            ms(10),
            "clamped to the clock, not scheduled in the past"
        );
    }

    #[test]
    fn counters_track_traffic() {
        let mut tl = Timeline::new();
        tl.schedule_after(SimDuration::from_millis(1), ());
        tl.schedule_after(SimDuration::from_millis(2), ());
        assert_eq!(tl.scheduled(), 2);
        assert_eq!(tl.len(), 2);
        tl.pop_before(ms(100));
        assert_eq!(tl.delivered(), 1);
        assert_eq!(tl.len(), 1);
    }
}
