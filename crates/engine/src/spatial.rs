//! A uniform-grid spatial index with incremental position updates.
//!
//! `geo::SpatialIndex` is a rebuild-per-tick hash: cheap to fill, but it
//! has no notion of identity, so a moving fleet must be re-inserted from
//! scratch every query round. [`SpatialGrid`] generalizes the
//! carrier-sense cell bucketing that previously hid inside the radio
//! medium: entries are keyed, positions update in place (an update only
//! touches two buckets when the entry actually crosses a cell border),
//! and a range query visits only the cells overlapping the query circle.
//! That turns radio delivery and mesh upkeep from O(fleet) sweeps into
//! O(nearby) lookups.
//!
//! Determinism is load-bearing: buckets live in a `BTreeMap`, candidates
//! come back sorted by key, and the exact-distance filter uses the same
//! `distance(center) <= radius` float predicate the brute-force scan it
//! replaces used — so every downstream RNG draw happens for the same
//! nodes in the same order.

use airdnd_geo::Vec2;
use std::collections::BTreeMap;

/// An incremental uniform-grid index over keyed positions.
///
/// ```
/// use airdnd_engine::SpatialGrid;
/// use airdnd_geo::Vec2;
///
/// let mut grid = SpatialGrid::new(100.0);
/// grid.insert(7u64, Vec2::new(10.0, 0.0));
/// grid.insert(3u64, Vec2::new(40.0, 0.0));
/// grid.insert(9u64, Vec2::new(500.0, 0.0));
/// assert_eq!(grid.query_within(Vec2::ZERO, 100.0), vec![
///     (3, Vec2::new(40.0, 0.0)),
///     (7, Vec2::new(10.0, 0.0)),
/// ]);
/// grid.insert(9u64, Vec2::new(50.0, 0.0)); // re-insert moves the entry
/// assert_eq!(grid.query_within(Vec2::ZERO, 100.0).len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid<K> {
    cell_size: f64,
    cells: BTreeMap<(i64, i64), Vec<(K, Vec2)>>,
    /// Key → current position; the source of truth for membership.
    entries: BTreeMap<K, Vec2>,
}

impl<K: Copy + Ord> SpatialGrid<K> {
    /// Creates a grid with the given cell size (metres). Pick roughly the
    /// typical query radius; correctness does not depend on the choice,
    /// only performance.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        SpatialGrid {
            cell_size,
            cells: BTreeMap::new(),
            entries: BTreeMap::new(),
        }
    }

    /// The configured cell size, metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    fn cell_of(&self, p: Vec2) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    fn bucket_remove(&mut self, cell: (i64, i64), key: K) {
        if let Some(bucket) = self.cells.get_mut(&cell) {
            if let Some(i) = bucket.iter().position(|&(k, _)| k == key) {
                bucket.swap_remove(i);
            }
            if bucket.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }

    /// Inserts `key` at `pos`, or moves it there if already present. A
    /// move that stays inside one cell updates the bucket entry in place.
    pub fn insert(&mut self, key: K, pos: Vec2) {
        let new_cell = self.cell_of(pos);
        if let Some(old_pos) = self.entries.insert(key, pos) {
            let old_cell = self.cell_of(old_pos);
            if old_cell == new_cell {
                let bucket = self.cells.get_mut(&old_cell).expect("entry has a bucket");
                let slot = bucket
                    .iter_mut()
                    .find(|(k, _)| *k == key)
                    .expect("entry in its bucket");
                slot.1 = pos;
                return;
            }
            self.bucket_remove(old_cell, key);
        }
        self.cells.entry(new_cell).or_default().push((key, pos));
    }

    /// Removes `key`, returning its last position.
    pub fn remove(&mut self, key: K) -> Option<Vec2> {
        let pos = self.entries.remove(&key)?;
        self.bucket_remove(self.cell_of(pos), key);
        Some(pos)
    }

    /// The current position of `key`.
    pub fn position(&self, key: K) -> Option<Vec2> {
        self.entries.get(&key).copied()
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.entries.contains_key(&key)
    }

    /// Number of keyed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the grid holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends every entry in cells overlapping the `radius`-circle around
    /// `center` to `out` — *no* exact distance filter and *no* ordering
    /// guarantee. The building block for callers that apply their own
    /// float predicate (radio keeps its historical `distance <= r` vs
    /// `distance_sq <= r²` expressions bit-for-bit).
    pub fn candidates_into(&self, center: Vec2, radius: f64, out: &mut Vec<(K, Vec2)>) {
        if radius < 0.0 || !radius.is_finite() {
            return;
        }
        let min = self.cell_of(center - Vec2::new(radius, radius));
        let max = self.cell_of(center + Vec2::new(radius, radius));
        // A query circle much larger than the indexed extent would walk
        // empty cells; cap the walk at the occupied bounding box.
        let (lo, hi) = match self.occupied_bounds() {
            Some(b) => b,
            None => return,
        };
        let (cx0, cx1) = (min.0.max(lo.0), max.0.min(hi.0));
        let (cy0, cy1) = (min.1.max(lo.1), max.1.min(hi.1));
        if cx1 < cx0 || cy1 < cy0 {
            return; // query box disjoint from every occupied cell
        }
        let walk = (cx1 as i128 - cx0 as i128 + 1) * (cy1 as i128 - cy0 as i128 + 1);
        if walk >= self.cells.len() as i128 {
            // Denser to walk the occupied cells directly.
            for bucket in self.cells.values() {
                out.extend(bucket.iter().copied());
            }
            return;
        }
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    out.extend(bucket.iter().copied());
                }
            }
        }
    }

    fn occupied_bounds(&self) -> Option<((i64, i64), (i64, i64))> {
        let mut it = self.cells.keys();
        let &first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for &(x, y) in it {
            lo.0 = lo.0.min(x);
            lo.1 = lo.1.min(y);
            hi.0 = hi.0.max(x);
            hi.1 = hi.1.max(y);
        }
        Some((lo, hi))
    }

    /// Every entry with `pos.distance(center) <= radius`, sorted by key.
    pub fn query_within(&self, center: Vec2, radius: f64) -> Vec<(K, Vec2)> {
        let mut out = Vec::new();
        self.candidates_into(center, radius, &mut out);
        out.retain(|&(_, p)| p.distance(center) <= radius);
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_move_remove_roundtrip() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(1u64, Vec2::new(5.0, 5.0));
        assert_eq!(g.position(1), Some(Vec2::new(5.0, 5.0)));
        // In-cell move.
        g.insert(1, Vec2::new(6.0, 6.0));
        assert_eq!(g.position(1), Some(Vec2::new(6.0, 6.0)));
        assert_eq!(g.len(), 1);
        // Cross-cell move.
        g.insert(1, Vec2::new(25.0, 25.0));
        assert_eq!(g.query_within(Vec2::new(25.0, 25.0), 1.0).len(), 1);
        assert!(g.query_within(Vec2::new(5.0, 5.0), 2.0).is_empty());
        assert_eq!(g.remove(1), Some(Vec2::new(25.0, 25.0)));
        assert!(g.is_empty());
        assert_eq!(g.remove(1), None);
    }

    #[test]
    fn query_is_key_sorted_and_radius_inclusive() {
        let mut g = SpatialGrid::new(5.0);
        g.insert(9u32, Vec2::new(3.0, 4.0)); // distance exactly 5
        g.insert(2u32, Vec2::new(0.0, 1.0));
        let hits = g.query_within(Vec2::ZERO, 5.0);
        assert_eq!(
            hits,
            vec![(2, Vec2::new(0.0, 1.0)), (9, Vec2::new(3.0, 4.0))]
        );
        assert_eq!(g.query_within(Vec2::ZERO, 4.999).len(), 1);
    }

    #[test]
    fn huge_radius_does_not_walk_empty_space() {
        let mut g = SpatialGrid::new(1.0);
        g.insert(1u64, Vec2::new(0.0, 0.0));
        g.insert(2u64, Vec2::new(1.0e6, 1.0e6));
        // A naive cell walk would visit 10^12 cells; the occupied-bounds
        // cap makes this instant.
        let hits = g.query_within(Vec2::ZERO, 5.0e6);
        assert_eq!(hits.len(), 2);
        assert!(g.query_within(Vec2::ZERO, -1.0).is_empty());
        assert!(g.query_within(Vec2::ZERO, f64::NAN).is_empty());
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(1u32, Vec2::new(-0.5, -0.5));
        g.insert(2u32, Vec2::new(0.5, 0.5));
        assert_eq!(g.query_within(Vec2::ZERO, 1.0).len(), 2);
    }
}
