//! Structure-of-arrays fleet storage behind a stable address map.
//!
//! The scenario fleet hands out monotonically increasing node addresses
//! and never reuses one, which makes the address the perfect stable key:
//! [`AddrIndex`] is a flat `addr → slot` table (a `Vec` indexed by raw
//! address) giving O(1) lookup where the fleet previously fell back to a
//! linear scan after the first despawn. [`SoaFleet`] keeps the hot
//! kinematics — positions, velocities, kinds — in parallel vectors in
//! slot order, so the per-tick movement pass streams through contiguous
//! memory instead of hopping across fat per-vehicle structs.

use airdnd_geo::Vec2;

/// Sentinel slot meaning "address not present".
const NONE: u32 = u32::MAX;

/// A stable `addr → slot` map for monotone, never-reused addresses.
///
/// Backed by a flat `Vec<u32>` indexed by raw address — lookups are one
/// bounds check and one load. Ordered removals (the fleet keeps its
/// vehicles address-sorted) are repaired by [`AddrIndex::reindex_from`],
/// which walks only the shifted tail.
#[derive(Clone, Debug, Default)]
pub struct AddrIndex {
    slots: Vec<u32>,
}

impl AddrIndex {
    /// An empty map.
    pub fn new() -> Self {
        AddrIndex::default()
    }

    /// Records `addr → slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit in the sentinel-reserved `u32` range.
    pub fn set(&mut self, addr: u64, slot: usize) {
        let slot = u32::try_from(slot).expect("fleet slot fits u32");
        assert!(slot != NONE, "slot range exhausted");
        let i = usize::try_from(addr).expect("addr fits usize");
        if i >= self.slots.len() {
            self.slots.resize(i + 1, NONE);
        }
        self.slots[i] = slot;
    }

    /// The slot for `addr`, if present.
    pub fn get(&self, addr: u64) -> Option<usize> {
        let i = usize::try_from(addr).ok()?;
        match self.slots.get(i) {
            Some(&s) if s != NONE => Some(s as usize),
            _ => None,
        }
    }

    /// Forgets `addr`, returning its former slot.
    pub fn remove(&mut self, addr: u64) -> Option<usize> {
        let i = usize::try_from(addr).ok()?;
        let s = self.slots.get_mut(i)?;
        if *s == NONE {
            return None;
        }
        let old = *s as usize;
        *s = NONE;
        Some(old)
    }

    /// Re-records `addrs[i] → i` for every `i >= from` — the repair pass
    /// after an ordered removal shifts the tail down by one.
    pub fn reindex_from(&mut self, addrs: &[u64], from: usize) {
        for (i, &addr) in addrs.iter().enumerate().skip(from) {
            self.set(addr, i);
        }
    }
}

/// Parallel kinematics vectors in fleet-slot order.
///
/// The `K` parameter carries whatever per-entry kind/flag payload the
/// caller wants co-located with the kinematics (the scenario fleet stores
/// a mobility kind). Slots track the owning fleet's vehicle order:
/// [`SoaFleet::push`] appends, [`SoaFleet::remove_at`] does an ordered
/// remove and repairs the address map for the shifted tail.
#[derive(Clone, Debug, Default)]
pub struct SoaFleet<K> {
    addrs: Vec<u64>,
    positions: Vec<Vec2>,
    velocities: Vec<Vec2>,
    kinds: Vec<K>,
    index: AddrIndex,
}

impl<K> SoaFleet<K> {
    /// Empty storage.
    pub fn new() -> Self {
        SoaFleet {
            addrs: Vec::new(),
            positions: Vec::new(),
            velocities: Vec::new(),
            kinds: Vec::new(),
            index: AddrIndex::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Appends an entry, returning its slot.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already present (addresses are never reused).
    pub fn push(&mut self, addr: u64, pos: Vec2, vel: Vec2, kind: K) -> usize {
        assert!(self.index.get(addr).is_none(), "address {addr} reused");
        let slot = self.addrs.len();
        self.addrs.push(addr);
        self.positions.push(pos);
        self.velocities.push(vel);
        self.kinds.push(kind);
        self.index.set(addr, slot);
        slot
    }

    /// Ordered removal of the entry at `slot`; later slots shift down and
    /// the address map is repaired for the shifted tail. Returns the
    /// removed `(addr, kind)`.
    pub fn remove_at(&mut self, slot: usize) -> (u64, K) {
        let addr = self.addrs.remove(slot);
        self.positions.remove(slot);
        self.velocities.remove(slot);
        let kind = self.kinds.remove(slot);
        self.index.remove(addr);
        self.index.reindex_from(&self.addrs, slot);
        (addr, kind)
    }

    /// O(1) slot lookup by address.
    pub fn slot_of(&self, addr: u64) -> Option<usize> {
        self.index.get(addr)
    }

    /// Address stored at `slot`.
    pub fn addr_at(&self, slot: usize) -> u64 {
        self.addrs[slot]
    }

    /// Overwrites the kinematics at `slot`.
    pub fn set_kinematics(&mut self, slot: usize, pos: Vec2, vel: Vec2) {
        self.positions[slot] = pos;
        self.velocities[slot] = vel;
    }

    /// Position at `slot`.
    pub fn position(&self, slot: usize) -> Vec2 {
        self.positions[slot]
    }

    /// Velocity at `slot`.
    pub fn velocity(&self, slot: usize) -> Vec2 {
        self.velocities[slot]
    }

    /// Kind payload at `slot`.
    pub fn kind(&self, slot: usize) -> &K {
        &self.kinds[slot]
    }

    /// All positions, slot order.
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// All velocities, slot order.
    pub fn velocities(&self) -> &[Vec2] {
        &self.velocities
    }

    /// All addresses, slot order.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_index_roundtrip_and_reindex() {
        let mut idx = AddrIndex::new();
        idx.set(5, 0);
        idx.set(9, 1);
        idx.set(12, 2);
        assert_eq!(idx.get(5), Some(0));
        assert_eq!(idx.get(9), Some(1));
        assert_eq!(idx.get(7), None);
        assert_eq!(idx.get(u64::MAX), None);
        assert_eq!(idx.remove(9), Some(1));
        assert_eq!(idx.get(9), None);
        // After removing slot 1, addr 12 shifts to slot 1.
        idx.reindex_from(&[5, 12], 1);
        assert_eq!(idx.get(12), Some(1));
        assert_eq!(idx.remove(9), None);
    }

    #[test]
    fn soa_push_remove_keeps_slots_consistent() {
        let mut f = SoaFleet::new();
        for a in 1u64..=5 {
            f.push(a, Vec2::new(a as f64, 0.0), Vec2::ZERO, a as u8);
        }
        assert_eq!(f.slot_of(3), Some(2));
        let (addr, kind) = f.remove_at(1); // remove addr 2
        assert_eq!((addr, kind), (2, 2));
        assert_eq!(f.len(), 4);
        // Tail shifted: every surviving address still resolves to the slot
        // holding its data.
        for a in [1u64, 3, 4, 5] {
            let s = f.slot_of(a).unwrap();
            assert_eq!(f.addr_at(s), a);
            assert_eq!(f.position(s), Vec2::new(a as f64, 0.0));
        }
        assert_eq!(f.slot_of(2), None);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn soa_rejects_address_reuse() {
        let mut f = SoaFleet::new();
        f.push(1, Vec2::ZERO, Vec2::ZERO, ());
        f.push(1, Vec2::ZERO, Vec2::ZERO, ());
    }
}
