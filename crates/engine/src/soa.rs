//! Structure-of-arrays fleet storage behind a stable address map.
//!
//! The scenario fleet hands out monotonically increasing node addresses
//! and never reuses one, which makes the address the perfect stable key:
//! [`AddrIndex`] is a paged `addr → slot` table giving O(1) lookup where
//! the fleet previously fell back to a linear scan after the first
//! despawn, while retiring fully-dead pages so a long soak run with churn
//! holds memory proportional to the *live* address range, not to every
//! address ever issued. [`SoaFleet`] keeps the hot kinematics —
//! positions, velocities, kinds — in parallel vectors in slot order, so
//! the per-tick movement pass streams through contiguous memory instead
//! of hopping across fat per-vehicle structs.
//!
//! Removal is tombstoned: [`SoaFleet::remove_at`] marks the slot dead in
//! O(1) (plus an O(log pages) index erase) instead of shifting the whole
//! tail, so a heavy-churn run is no longer quadratic in fleet size. Live
//! slots keep their relative order forever; [`SoaFleet::compact`]
//! reclaims tombstones in one deterministic order-preserving pass, and
//! callers that mirror slot order (the scenario fleet keeps a parallel
//! vehicle vector) trigger it under their own deterministic policy so
//! both sides stay in lockstep.

use airdnd_geo::Vec2;
use std::collections::BTreeMap;

/// Sentinel slot meaning "address not present".
const NONE: u32 = u32::MAX;

/// Addresses per [`AddrIndex`] page (`2^10`).
const PAGE_BITS: u32 = 10;
/// Entries in one page.
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// One fixed-size page of the address map, with a live-entry count so the
/// page can be dropped the moment its last address is forgotten.
#[derive(Clone, Debug)]
struct Page {
    slots: Box<[u32; PAGE_SIZE]>,
    live: u32,
}

impl Page {
    fn empty() -> Self {
        Page {
            slots: Box::new([NONE; PAGE_SIZE]),
            live: 0,
        }
    }
}

/// A stable `addr → slot` map for monotone, never-reused addresses.
///
/// Backed by fixed-size pages keyed by `addr >> PAGE_BITS`: lookups are
/// one ordered-map probe and one load, and a page whose addresses have
/// all been removed is freed, so memory is bounded by the live address
/// range instead of growing monotonically with every address ever issued
/// (the previous flat `Vec<u32>` leaked one word per historical address
/// for the lifetime of the run). Ordered removals are repaired by
/// [`AddrIndex::reindex_from`], which re-records only the given tail.
#[derive(Clone, Debug, Default)]
pub struct AddrIndex {
    pages: BTreeMap<u64, Page>,
}

impl AddrIndex {
    /// An empty map.
    pub fn new() -> Self {
        AddrIndex::default()
    }

    /// Records `addr → slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit in the sentinel-reserved `u32` range.
    pub fn set(&mut self, addr: u64, slot: usize) {
        let slot = u32::try_from(slot).expect("fleet slot fits u32");
        assert!(slot != NONE, "slot range exhausted");
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(Page::empty);
        let cell = &mut page.slots[(addr & (PAGE_SIZE as u64 - 1)) as usize];
        if *cell == NONE {
            page.live += 1;
        }
        *cell = slot;
    }

    /// The slot for `addr`, if present.
    pub fn get(&self, addr: u64) -> Option<usize> {
        let page = self.pages.get(&(addr >> PAGE_BITS))?;
        match page.slots[(addr & (PAGE_SIZE as u64 - 1)) as usize] {
            NONE => None,
            s => Some(s as usize),
        }
    }

    /// Forgets `addr`, returning its former slot. The containing page is
    /// freed when this was its last live address.
    pub fn remove(&mut self, addr: u64) -> Option<usize> {
        let key = addr >> PAGE_BITS;
        let page = self.pages.get_mut(&key)?;
        let cell = &mut page.slots[(addr & (PAGE_SIZE as u64 - 1)) as usize];
        if *cell == NONE {
            return None;
        }
        let old = *cell as usize;
        *cell = NONE;
        page.live -= 1;
        if page.live == 0 {
            self.pages.remove(&key);
        }
        Some(old)
    }

    /// Re-records `addrs[i] → i` for every `i >= from` — the repair pass
    /// after an ordered removal or compaction renumbers the tail.
    pub fn reindex_from(&mut self, addrs: &[u64], from: usize) {
        for (i, &addr) in addrs.iter().enumerate().skip(from) {
            self.set(addr, i);
        }
    }

    /// Number of resident pages — the memory footprint in `PAGE_SIZE`
    /// units. Bounded by the live address range, not by history.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Parallel kinematics vectors in fleet-slot order, with tombstoned
/// removal.
///
/// The `K` parameter carries whatever per-entry kind/flag payload the
/// caller wants co-located with the kinematics (the scenario fleet stores
/// a mobility kind). Slots track the owning fleet's vehicle order:
/// [`SoaFleet::push`] appends, [`SoaFleet::remove_at`] marks the slot
/// dead in place (amortized O(1) — no tail shift), and
/// [`SoaFleet::compact`] drops the tombstones in one order-preserving
/// pass. Between compactions, dead slots keep their last kinematics but
/// are unreachable through the address map; callers iterating raw slots
/// must consult [`SoaFleet::is_live`].
#[derive(Clone, Debug, Default)]
pub struct SoaFleet<K> {
    addrs: Vec<u64>,
    positions: Vec<Vec2>,
    velocities: Vec<Vec2>,
    kinds: Vec<K>,
    live: Vec<bool>,
    dead: usize,
    index: AddrIndex,
}

impl<K> SoaFleet<K> {
    /// Empty storage.
    pub fn new() -> Self {
        SoaFleet {
            addrs: Vec::new(),
            positions: Vec::new(),
            velocities: Vec::new(),
            kinds: Vec::new(),
            live: Vec::new(),
            dead: 0,
            index: AddrIndex::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.addrs.len() - self.dead
    }

    /// `true` when no live entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots including tombstones — the bound for raw slot loops.
    pub fn slot_count(&self) -> usize {
        self.addrs.len()
    }

    /// Number of tombstoned slots awaiting [`SoaFleet::compact`].
    pub fn dead_count(&self) -> usize {
        self.dead
    }

    /// `true` when `slot` holds a live entry.
    pub fn is_live(&self, slot: usize) -> bool {
        self.live[slot]
    }

    /// Appends an entry, returning its slot.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already live (addresses are never reused).
    pub fn push(&mut self, addr: u64, pos: Vec2, vel: Vec2, kind: K) -> usize {
        assert!(self.index.get(addr).is_none(), "address {addr} reused");
        let slot = self.addrs.len();
        self.addrs.push(addr);
        self.positions.push(pos);
        self.velocities.push(vel);
        self.kinds.push(kind);
        self.live.push(true);
        self.index.set(addr, slot);
        slot
    }

    /// Tombstones the entry at `slot`: the address is forgotten and the
    /// slot skipped by live iteration, but no tail shifts — amortized
    /// O(1) where the previous implementation paid four `Vec::remove`
    /// shifts plus a tail reindex (O(fleet) per despawn, quadratic under
    /// heavy churn). Returns the removed `(addr, kind)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is already dead.
    pub fn remove_at(&mut self, slot: usize) -> (u64, K)
    where
        K: Clone,
    {
        assert!(self.live[slot], "slot {slot} already removed");
        self.live[slot] = false;
        self.dead += 1;
        let addr = self.addrs[slot];
        self.index.remove(addr);
        (addr, self.kinds[slot].clone())
    }

    /// Reclaims tombstoned slots in one order-preserving pass and repairs
    /// the address map. Live entries keep their relative order, so any
    /// caller mirroring slot order can compact its own storage with the
    /// same retain and stay in lockstep. Returns `true` when anything
    /// moved.
    pub fn compact(&mut self) -> bool {
        if self.dead == 0 {
            return false;
        }
        let live = std::mem::take(&mut self.live);
        let mut keep = live.iter().copied();
        self.addrs
            .retain(|_| keep.next().expect("lane in lockstep"));
        let mut keep = live.iter().copied();
        self.positions
            .retain(|_| keep.next().expect("lane in lockstep"));
        let mut keep = live.iter().copied();
        self.velocities
            .retain(|_| keep.next().expect("lane in lockstep"));
        let mut keep = live.iter().copied();
        self.kinds
            .retain(|_| keep.next().expect("lane in lockstep"));
        self.live = vec![true; self.addrs.len()];
        self.dead = 0;
        self.index.reindex_from(&self.addrs, 0);
        true
    }

    /// O(1) slot lookup by address (live entries only).
    pub fn slot_of(&self, addr: u64) -> Option<usize> {
        self.index.get(addr)
    }

    /// Address stored at `slot`.
    pub fn addr_at(&self, slot: usize) -> u64 {
        self.addrs[slot]
    }

    /// Overwrites the kinematics at `slot`.
    pub fn set_kinematics(&mut self, slot: usize, pos: Vec2, vel: Vec2) {
        self.positions[slot] = pos;
        self.velocities[slot] = vel;
    }

    /// Position at `slot`.
    pub fn position(&self, slot: usize) -> Vec2 {
        self.positions[slot]
    }

    /// Velocity at `slot`.
    pub fn velocity(&self, slot: usize) -> Vec2 {
        self.velocities[slot]
    }

    /// Kind payload at `slot`.
    pub fn kind(&self, slot: usize) -> &K {
        &self.kinds[slot]
    }

    /// All positions, slot order (dead slots keep their last value; check
    /// [`SoaFleet::is_live`] when tombstones may be present).
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// All velocities, slot order (same tombstone caveat as
    /// [`SoaFleet::positions`]).
    pub fn velocities(&self) -> &[Vec2] {
        &self.velocities
    }

    /// All addresses, slot order (same tombstone caveat as
    /// [`SoaFleet::positions`]).
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Number of resident address-map pages (memory-bound diagnostics).
    pub fn index_pages(&self) -> usize {
        self.index.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_index_roundtrip_and_reindex() {
        let mut idx = AddrIndex::new();
        idx.set(5, 0);
        idx.set(9, 1);
        idx.set(12, 2);
        assert_eq!(idx.get(5), Some(0));
        assert_eq!(idx.get(9), Some(1));
        assert_eq!(idx.get(7), None);
        assert_eq!(idx.get(u64::MAX), None);
        assert_eq!(idx.remove(9), Some(1));
        assert_eq!(idx.get(9), None);
        // After removing slot 1, addr 12 shifts to slot 1.
        idx.reindex_from(&[5, 12], 1);
        assert_eq!(idx.get(12), Some(1));
        assert_eq!(idx.remove(9), None);
    }

    /// The paged map frees a page once its last address is removed, so a
    /// monotone address stream with churn holds O(live range) pages, not
    /// O(addresses ever issued).
    #[test]
    fn addr_index_memory_is_bounded_by_live_range() {
        let mut idx = AddrIndex::new();
        // Issue 64 pages worth of addresses, retiring each address almost
        // immediately: at most two pages are ever resident.
        let window = 8u64;
        for addr in 0..(64 * PAGE_SIZE as u64) {
            idx.set(addr, (addr % 1000) as usize);
            if addr >= window {
                assert_eq!(
                    idx.remove(addr - window),
                    Some(((addr - window) % 1000) as usize)
                );
            }
            assert!(
                idx.page_count() <= 2,
                "resident pages must track the live window, got {} at addr {addr}",
                idx.page_count()
            );
        }
        // Draining the tail frees everything.
        for addr in (64 * PAGE_SIZE as u64 - window)..(64 * PAGE_SIZE as u64) {
            idx.remove(addr);
        }
        assert_eq!(idx.page_count(), 0);
    }

    #[test]
    fn soa_remove_tombstones_then_compact_shifts() {
        let mut f = SoaFleet::new();
        for a in 1u64..=5 {
            f.push(a, Vec2::new(a as f64, 0.0), Vec2::ZERO, a as u8);
        }
        assert_eq!(f.slot_of(3), Some(2));
        let (addr, kind) = f.remove_at(1); // tombstone addr 2
        assert_eq!((addr, kind), (2, 2));
        assert_eq!(f.len(), 4);
        assert_eq!(f.slot_count(), 5);
        assert_eq!(f.dead_count(), 1);
        assert!(!f.is_live(1));
        // No shift yet: survivors keep their original slots, and every
        // surviving address still resolves to the slot holding its data.
        for (a, slot) in [(1u64, 0usize), (3, 2), (4, 3), (5, 4)] {
            assert_eq!(f.slot_of(a), Some(slot));
            assert_eq!(f.addr_at(slot), a);
            assert_eq!(f.position(slot), Vec2::new(a as f64, 0.0));
        }
        assert_eq!(f.slot_of(2), None);
        // Compaction drops the tombstone, preserving live order.
        assert!(f.compact());
        assert!(!f.compact(), "second compact is a no-op");
        assert_eq!(f.slot_count(), 4);
        assert_eq!(f.dead_count(), 0);
        for (i, a) in [1u64, 3, 4, 5].into_iter().enumerate() {
            assert_eq!(f.slot_of(a), Some(i));
            assert_eq!(f.addr_at(i), a);
            assert_eq!(f.position(i), Vec2::new(a as f64, 0.0));
        }
        assert_eq!(f.slot_of(2), None);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn soa_rejects_address_reuse() {
        let mut f = SoaFleet::new();
        f.push(1, Vec2::ZERO, Vec2::ZERO, ());
        f.push(1, Vec2::ZERO, Vec2::ZERO, ());
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn soa_rejects_double_remove() {
        let mut f = SoaFleet::new();
        f.push(1, Vec2::ZERO, Vec2::ZERO, ());
        f.remove_at(0);
        f.remove_at(0);
    }
}
