//! Event-scheduled scenario core for AirDnD.
//!
//! The scenario runner used to advance the world through an actor engine
//! whose only inhabitant was the world itself — every message took a
//! detour through a mailbox, an `Rc<RefCell<..>>` and a dynamic dispatch,
//! and every radio-range query swept the whole fleet. This crate is the
//! substrate for the event-scheduled rewrite:
//!
//! * [`Timeline`] — a deterministic priority queue of typed scenario
//!   events, keyed by `(timestamp, sequence)` so same-instant collisions
//!   resolve in schedule order on every host, thread count and shard
//!   split. Systems react to the popped event; nothing sweeps the fleet.
//! * [`SpatialGrid`] — a uniform-grid index with *incremental* position
//!   updates (insert/update/remove by key), generalizing the carrier-sense
//!   bucketing that previously hid inside `radio`'s medium. Range queries
//!   touch only the cells overlapping the query circle, so radio delivery
//!   and mesh upkeep are O(nearby), not O(fleet).
//! * [`SoaFleet`] — structure-of-arrays kinematics storage (positions,
//!   velocities, kinds in parallel vectors) behind a stable
//!   [`AddrIndex`] `addr → slot` map, replacing per-vehicle linear scans.
//!
//! The crate sits between `airdnd-geo`/`airdnd-sim` and everything that
//! moves: it depends only on those two and carries no scenario policy.
//! Determinism is load-bearing throughout — no hash-map iteration order
//! escapes, no real clock is read, and every query returns results in a
//! key-sorted or schedule order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod soa;
pub mod spatial;
pub mod timeline;

pub use soa::{AddrIndex, SoaFleet};
pub use spatial::SpatialGrid;
pub use timeline::Timeline;
