//! Property tests for the engine primitives.
//!
//! The [`SpatialGrid`] is only an accelerator: every range query must
//! return exactly what a brute-force scan over the same fleet returns,
//! including positions sitting exactly on cell boundaries. The
//! [`Timeline`] must impose a deterministic total order on same-timestamp
//! collisions — schedule order, independent of payload.

use airdnd_engine::{SpatialGrid, Timeline};
use airdnd_geo::Vec2;
use proptest::prelude::*;

const CELL: f64 = 50.0;

/// Arbitrary positions, biased toward cell edges: half the samples land on
/// exact multiples of half a cell, where bucketing bugs live.
fn position() -> impl Strategy<Value = Vec2> {
    let continuous = (-400.0f64..400.0, -400.0f64..400.0).prop_map(|(x, y)| Vec2::new(x, y));
    let lattice = (-16i32..16, -16i32..16)
        .prop_map(|(i, j)| Vec2::new(f64::from(i) * CELL / 2.0, f64::from(j) * CELL / 2.0));
    prop_oneof![continuous, lattice]
}

/// City-scale positions: a district offset far from the origin (including
/// negative quadrants, where `f64` floor-vs-truncate bucketing bugs live)
/// plus a local position inside the district. Half the local samples land
/// on exact half-cell multiples so district corners sit on cell edges.
fn city_position() -> impl Strategy<Value = Vec2> {
    let district = (-40i32..=40, -40i32..=40)
        .prop_map(|(i, j)| Vec2::new(f64::from(i) * 1_250.0, f64::from(j) * 1_250.0));
    let continuous = (-400.0f64..400.0, -400.0f64..400.0).prop_map(|(x, y)| Vec2::new(x, y));
    let lattice = (-16i32..16, -16i32..16)
        .prop_map(|(i, j)| Vec2::new(f64::from(i) * CELL / 2.0, f64::from(j) * CELL / 2.0));
    (district, prop_oneof![continuous, lattice]).prop_map(|(d, local)| d + local)
}

fn brute_force(fleet: &[(u64, Vec2)], center: Vec2, radius: f64) -> Vec<u64> {
    let mut hits: Vec<u64> = fleet
        .iter()
        .filter(|(_, p)| p.distance(center) <= radius)
        .map(|(k, _)| *k)
        .collect();
    hits.sort_unstable();
    hits
}

/// Collapses a generated `(key, pos)` list to one entry per key, keeping
/// the last occurrence — the same semantics as repeated `insert`.
fn dedupe_last(pairs: Vec<(u64, Vec2)>) -> Vec<(u64, Vec2)> {
    let mut out: Vec<(u64, Vec2)> = Vec::new();
    for (k, p) in pairs {
        match out.iter_mut().find(|(ok, _)| *ok == k) {
            Some(slot) => slot.1 = p,
            None => out.push((k, p)),
        }
    }
    out
}

proptest! {
    /// Grid range queries agree with brute force over random fleets, for
    /// radii from sub-cell to grid-spanning and centers on or off lattice.
    #[test]
    fn grid_query_matches_brute_force(
        pairs in prop::collection::vec((0u64..64, position()), 0..40),
        center in position(),
        radius in prop_oneof![Just(0.0f64), 0.0f64..20.0, 20.0f64..800.0],
    ) {
        let fleet = dedupe_last(pairs);
        let mut grid = SpatialGrid::new(CELL);
        for &(k, p) in &fleet {
            grid.insert(k, p);
        }
        let hits: Vec<u64> = grid
            .query_within(center, radius)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        prop_assert_eq!(hits, brute_force(&fleet, center, radius));
    }

    /// Queries stay exact across interleaved moves and removals — the
    /// incremental index never leaks stale positions.
    #[test]
    fn grid_query_survives_moves_and_removals(
        pairs in prop::collection::vec((0u64..32, position()), 1..24),
        moves in prop::collection::vec((0u64..32, position()), 0..48),
        removals in prop::collection::vec(0u64..32, 0..16),
        center in position(),
        radius in 0.0f64..800.0,
    ) {
        let mut reference = dedupe_last(pairs);
        let mut grid = SpatialGrid::new(CELL);
        for &(k, p) in &reference {
            grid.insert(k, p);
        }
        for &(k, p) in &moves {
            grid.insert(k, p);
            match reference.iter_mut().find(|(rk, _)| *rk == k) {
                Some(slot) => slot.1 = p,
                None => reference.push((k, p)),
            }
        }
        for &k in &removals {
            let removed = grid.remove(k);
            let before = reference.len();
            reference.retain(|(rk, _)| *rk != k);
            prop_assert_eq!(removed.is_some(), reference.len() < before);
        }
        prop_assert_eq!(grid.len(), reference.len());
        let hits: Vec<u64> = grid
            .query_within(center, radius)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        prop_assert_eq!(hits, brute_force(&reference, center, radius));
    }

    /// Grid ≡ brute force at city-scale coordinates: fleets scattered
    /// across districts tens of kilometres from the origin, in all four
    /// quadrants. Far-from-origin cells stress `cell_of`'s f64 floor
    /// (negative coordinates must round toward −∞, and a 50 m cell at
    /// x ≈ 50 km leaves well under a metre of mantissa slack).
    #[test]
    fn grid_query_matches_brute_force_at_city_offsets(
        pairs in prop::collection::vec((0u64..64, city_position()), 0..40),
        center in city_position(),
        radius in prop_oneof![Just(0.0f64), 0.0f64..200.0, 200.0f64..120_000.0],
    ) {
        let fleet = dedupe_last(pairs);
        let mut grid = SpatialGrid::new(CELL);
        for &(k, p) in &fleet {
            grid.insert(k, p);
        }
        let hits: Vec<u64> = grid
            .query_within(center, radius)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        prop_assert_eq!(hits, brute_force(&fleet, center, radius));
    }

    /// Popping replays events in `(time, seq)` order: nondecreasing time,
    /// and same-timestamp collisions resolve in schedule order no matter
    /// how the times interleave.
    #[test]
    fn timeline_pop_order_is_a_deterministic_total_order(
        times in prop::collection::vec(0u64..50, 1..64),
    ) {
        let mut tl: Timeline<(usize, u64)> = Timeline::new();
        for (i, &t) in times.iter().enumerate() {
            tl.schedule_at(airdnd_sim::SimTime::from_secs(t), (i, t));
        }
        let horizon = airdnd_sim::SimTime::from_secs(60);
        let mut popped = Vec::new();
        while let Some((at, (i, t))) = tl.pop_before(horizon) {
            prop_assert_eq!(at, airdnd_sim::SimTime::from_secs(t));
            popped.push((at, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Total order: (time, schedule index) strictly increasing.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "same-instant events must pop in schedule order");
            }
        }
        // And the whole replay is reproducible.
        let mut again: Timeline<(usize, u64)> = Timeline::new();
        for (i, &t) in times.iter().enumerate() {
            again.schedule_at(airdnd_sim::SimTime::from_secs(t), (i, t));
        }
        let mut popped_again = Vec::new();
        while let Some((at, (i, _))) = again.pop_before(horizon) {
            popped_again.push((at, i));
        }
        prop_assert_eq!(popped, popped_again);
    }
}

/// Deterministic city-scale soak: a 10k-entry grid spread over a 100 km
/// square (all four quadrants) stays exact under interleaved moves and
/// removals — the incremental index neither leaks stale positions nor
/// loses live ones at fleet sizes two orders of magnitude past the other
/// tests here.
#[test]
fn grid_stays_exact_with_ten_thousand_entries_under_churn() {
    let mut rng = airdnd_sim::SimRng::seed_from(0x0C17);
    let draw = |rng: &mut airdnd_sim::SimRng| {
        Vec2::new(
            rng.next_f64() * 100_000.0 - 50_000.0,
            rng.next_f64() * 100_000.0 - 50_000.0,
        )
    };
    let mut grid = SpatialGrid::new(CELL);
    let mut reference: Vec<(u64, Vec2)> = Vec::new();
    for k in 0..10_000u64 {
        let p = draw(&mut rng);
        grid.insert(k, p);
        reference.push((k, p));
    }
    let mut next_key = 10_000u64;
    for round in 0..8 {
        // Move a slice of survivors, remove a few hundred, admit a few
        // hundred more — the same shape as lifecycle churn at city scale.
        for _ in 0..500 {
            let i = rng.index(reference.len()).expect("non-empty");
            let (k, _) = reference[i];
            let p = draw(&mut rng);
            grid.insert(k, p);
            reference[i].1 = p;
        }
        for _ in 0..300 {
            let i = rng.index(reference.len()).expect("non-empty");
            let (k, _) = reference.swap_remove(i);
            assert!(grid.remove(k).is_some(), "live key must be present");
            assert!(grid.remove(k).is_none(), "double-remove must miss");
        }
        for _ in 0..300 {
            let p = draw(&mut rng);
            grid.insert(next_key, p);
            reference.push((next_key, p));
            next_key += 1;
        }
        assert_eq!(grid.len(), reference.len());
        // Radii from sub-cell to city-spanning, centered on a live
        // vehicle, on a fresh point, and on the origin seam.
        let on_vehicle = reference[rng.index(reference.len()).expect("non-empty")].1;
        for center in [on_vehicle, draw(&mut rng), Vec2::ZERO] {
            for radius in [10.0, 400.0, 30_000.0] {
                let hits: Vec<u64> = grid
                    .query_within(center, radius)
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                assert_eq!(
                    hits,
                    brute_force(&reference, center, radius),
                    "round {round}, center {center:?}, radius {radius}"
                );
            }
        }
    }
}
