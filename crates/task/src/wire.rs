//! Checksummed binary wire format for programs and task specs.
//!
//! This is the byte stream the offload protocol actually ships. The format
//! is versioned, little-endian, and protected by a CRC-32 so a corrupted
//! frame is rejected before verification even starts. The encoding is
//! self-contained — no serde — because the receiving node must be able to
//! bound decode work on untrusted bytes.

use crate::spec::{Priority, ResourceRequirements, TaskId, TaskSpec};
use crate::vm::{Instr, Program};
use airdnd_data::{DataQuery, DataType, QualityRequirement, SensorModality};
use airdnd_geo::{Aabb, Vec2};
use airdnd_sim::SimDuration;
use std::error::Error;
use std::fmt;

const PROGRAM_MAGIC: [u8; 4] = *b"ATVM";
const SPEC_MAGIC: [u8; 4] = *b"ATSK";
const VERSION: u8 = 1;
/// Upper bound on any length field, to stop hostile buffers from causing
/// huge allocations before the checksum is even checked.
const MAX_FIELD_LEN: u32 = 1 << 20;

/// Errors from decoding wire bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended mid-field.
    Truncated,
    /// The magic bytes did not match.
    BadMagic([u8; 4]),
    /// Unknown format version.
    UnsupportedVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown enum tag.
    BadTag(u8),
    /// A length field exceeded sanity bounds.
    FieldTooLarge(u32),
    /// The name was not valid UTF-8.
    BadString,
    /// Checksum mismatch (corruption).
    BadChecksum {
        /// CRC stored in the buffer.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// Trailing bytes after the encoded value.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            WireError::FieldTooLarge(n) => write!(f, "field length {n} exceeds bounds"),
            WireError::BadString => write!(f, "invalid utf-8 in string field"),
            WireError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected). Bitwise — speed is irrelevant next to
/// radio airtime, simplicity is not.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("len 2"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("len 4"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn opcode(instr: Instr) -> u8 {
    use Instr::*;
    match instr {
        Push(_) => 0x01,
        Pop => 0x02,
        Dup => 0x03,
        Swap => 0x04,
        Over => 0x05,
        Add => 0x10,
        Sub => 0x11,
        Mul => 0x12,
        Div => 0x13,
        Rem => 0x14,
        Neg => 0x15,
        Abs => 0x16,
        Min => 0x17,
        Max => 0x18,
        And => 0x20,
        Or => 0x21,
        Xor => 0x22,
        Not => 0x23,
        Shl => 0x24,
        Shr => 0x25,
        Eq => 0x30,
        Ne => 0x31,
        Lt => 0x32,
        Le => 0x33,
        Gt => 0x34,
        Ge => 0x35,
        Jmp(_) => 0x40,
        Jz(_) => 0x41,
        Jnz(_) => 0x42,
        Load => 0x50,
        Store => 0x51,
        Input => 0x60,
        InputLen => 0x61,
        Output => 0x62,
        Halt => 0x70,
    }
}

fn encode_instr(out: &mut Vec<u8>, instr: Instr) {
    out.push(opcode(instr));
    match instr {
        Instr::Push(c) => out.extend_from_slice(&c.to_le_bytes()),
        Instr::Jmp(t) | Instr::Jz(t) | Instr::Jnz(t) => out.extend_from_slice(&t.to_le_bytes()),
        _ => {}
    }
}

fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, WireError> {
    use Instr::*;
    let op = r.u8()?;
    Ok(match op {
        0x01 => Push(r.i64()?),
        0x02 => Pop,
        0x03 => Dup,
        0x04 => Swap,
        0x05 => Over,
        0x10 => Add,
        0x11 => Sub,
        0x12 => Mul,
        0x13 => Div,
        0x14 => Rem,
        0x15 => Neg,
        0x16 => Abs,
        0x17 => Min,
        0x18 => Max,
        0x20 => And,
        0x21 => Or,
        0x22 => Xor,
        0x23 => Not,
        0x24 => Shl,
        0x25 => Shr,
        0x30 => Eq,
        0x31 => Ne,
        0x32 => Lt,
        0x33 => Le,
        0x34 => Gt,
        0x35 => Ge,
        0x40 => Jmp(r.u32()?),
        0x41 => Jz(r.u32()?),
        0x42 => Jnz(r.u32()?),
        0x50 => Load,
        0x51 => Store,
        0x60 => Input,
        0x61 => InputLen,
        0x62 => Output,
        0x70 => Halt,
        other => return Err(WireError::BadOpcode(other)),
    })
}

fn encode_program_body(out: &mut Vec<u8>, program: &Program) {
    out.extend_from_slice(&program.memory_words().to_le_bytes());
    out.extend_from_slice(&(program.code().len() as u32).to_le_bytes());
    for &instr in program.code() {
        encode_instr(out, instr);
    }
}

fn decode_program_body(r: &mut Reader<'_>) -> Result<Program, WireError> {
    let memory_words = r.u32()?;
    let code_len = r.u32()?;
    if code_len > MAX_FIELD_LEN {
        return Err(WireError::FieldTooLarge(code_len));
    }
    let mut code = Vec::with_capacity(code_len as usize);
    for _ in 0..code_len {
        code.push(decode_instr(r)?);
    }
    Ok(Program::new(code, memory_words))
}

/// Encodes a program as a standalone checksummed message.
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.len() * 9 + 16);
    out.extend_from_slice(&PROGRAM_MAGIC);
    out.push(VERSION);
    encode_program_body(&mut out, program);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a standalone program message.
///
/// # Errors
///
/// Any [`WireError`]; the checksum is verified before instruction parsing
/// results are returned.
pub fn decode_program(bytes: &[u8]) -> Result<Program, WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("len 4"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(WireError::BadChecksum { stored, computed });
    }
    let mut r = Reader::new(payload);
    let magic: [u8; 4] = r.bytes(4)?.try_into().expect("len 4");
    if magic != PROGRAM_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let program = decode_program_body(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(program)
}

fn encode_data_type(out: &mut Vec<u8>, dt: DataType) {
    match dt {
        DataType::RawFrame(m) => {
            out.push(0);
            out.push(match m {
                SensorModality::Camera => 0,
                SensorModality::Lidar => 1,
                SensorModality::Radar => 2,
                SensorModality::Gnss => 3,
            });
        }
        DataType::DetectionList => out.extend_from_slice(&[1, 0]),
        DataType::OccupancyGrid => out.extend_from_slice(&[2, 0]),
        DataType::TrackList => out.extend_from_slice(&[3, 0]),
        DataType::FusedPerception => out.extend_from_slice(&[4, 0]),
    }
}

fn decode_data_type(r: &mut Reader<'_>) -> Result<DataType, WireError> {
    let tag = r.u8()?;
    let sub = r.u8()?;
    Ok(match tag {
        0 => DataType::RawFrame(match sub {
            0 => SensorModality::Camera,
            1 => SensorModality::Lidar,
            2 => SensorModality::Radar,
            3 => SensorModality::Gnss,
            other => return Err(WireError::BadTag(other)),
        }),
        1 => DataType::DetectionList,
        2 => DataType::OccupancyGrid,
        3 => DataType::TrackList,
        4 => DataType::FusedPerception,
        other => return Err(WireError::BadTag(other)),
    })
}

fn encode_query(out: &mut Vec<u8>, q: &DataQuery) {
    encode_data_type(out, q.data_type);
    let req = &q.requirement;
    out.extend_from_slice(&req.max_age.as_nanos().to_le_bytes());
    out.extend_from_slice(&req.min_confidence.to_bits().to_le_bytes());
    out.extend_from_slice(&req.min_resolution.to_bits().to_le_bytes());
    match &req.required_region {
        Some(region) => {
            out.push(1);
            for v in [
                region.min().x,
                region.min().y,
                region.max().x,
                region.max().y,
            ] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        None => out.push(0),
    }
    out.extend_from_slice(&req.min_coverage_fraction.to_bits().to_le_bytes());
    out.extend_from_slice(&req.max_noise_sigma.to_bits().to_le_bytes());
}

fn decode_query(r: &mut Reader<'_>) -> Result<DataQuery, WireError> {
    let data_type = decode_data_type(r)?;
    let max_age = SimDuration::from_nanos(r.u64()?);
    let min_confidence = r.f64()?;
    let min_resolution = r.f64()?;
    let required_region = match r.u8()? {
        0 => None,
        1 => {
            let (ax, ay, bx, by) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
            Some(Aabb::new(Vec2::new(ax, ay), Vec2::new(bx, by)))
        }
        other => return Err(WireError::BadTag(other)),
    };
    let min_coverage_fraction = r.f64()?;
    let max_noise_sigma = r.f64()?;
    Ok(DataQuery {
        data_type,
        requirement: QualityRequirement {
            max_age,
            min_confidence,
            min_resolution,
            required_region,
            min_coverage_fraction,
            max_noise_sigma,
        },
    })
}

/// Encodes a full task spec as a checksummed message.
pub fn encode_spec(spec: &TaskSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(spec.wire_size_bytes() as usize + 32);
    out.extend_from_slice(&SPEC_MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&spec.id.raw().to_le_bytes());
    out.extend_from_slice(&(spec.name.len() as u32).to_le_bytes());
    out.extend_from_slice(spec.name.as_bytes());
    encode_program_body(&mut out, &spec.program);
    out.extend_from_slice(&(spec.inputs.len() as u16).to_le_bytes());
    for q in &spec.inputs {
        encode_query(&mut out, q);
    }
    let req = &spec.requirements;
    for v in [
        req.gas,
        req.memory_bytes,
        req.input_bytes,
        req.output_bytes,
        req.deadline.as_nanos(),
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(match spec.priority {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
        Priority::Critical => 3,
    });
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a task-spec message.
///
/// # Errors
///
/// Any [`WireError`].
pub fn decode_spec(bytes: &[u8]) -> Result<TaskSpec, WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("len 4"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(WireError::BadChecksum { stored, computed });
    }
    let mut r = Reader::new(payload);
    let magic: [u8; 4] = r.bytes(4)?.try_into().expect("len 4");
    if magic != SPEC_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let id = TaskId::new(r.u64()?);
    let name_len = r.u32()?;
    if name_len > MAX_FIELD_LEN {
        return Err(WireError::FieldTooLarge(name_len));
    }
    let name = std::str::from_utf8(r.bytes(name_len as usize)?)
        .map_err(|_| WireError::BadString)?
        .to_owned();
    let program = decode_program_body(&mut r)?;
    let query_count = r.u16()?;
    let mut inputs = Vec::with_capacity(query_count as usize);
    for _ in 0..query_count {
        inputs.push(decode_query(&mut r)?);
    }
    let requirements = ResourceRequirements {
        gas: r.u64()?,
        memory_bytes: r.u64()?,
        input_bytes: r.u64()?,
        output_bytes: r.u64()?,
        deadline: SimDuration::from_nanos(r.u64()?),
    };
    let priority = match r.u8()? {
        0 => Priority::Low,
        1 => Priority::Normal,
        2 => Priority::High,
        3 => Priority::Critical,
        other => return Err(WireError::BadTag(other)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(TaskSpec {
        id,
        name,
        program,
        inputs,
        requirements,
        priority,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use proptest::prelude::*;

    fn sample_spec() -> TaskSpec {
        TaskSpec::new(TaskId::new(42), "fuse", library::grid_fuse(8).into_inner())
            .with_input(DataQuery::of_type(DataType::OccupancyGrid))
            .with_priority(Priority::High)
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn program_round_trip() {
        let p = library::matmul(3).into_inner();
        let bytes = encode_program(&p);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn spec_round_trip() {
        let spec = sample_spec();
        let bytes = encode_spec(&spec);
        let back = decode_spec(&bytes).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode_program(&library::sum_inputs().into_inner());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_program(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_spec(&sample_spec());
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_spec(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadChecksum { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let spec_bytes = encode_spec(&sample_spec());
        // A spec message is not a program message.
        assert!(matches!(
            decode_program(&spec_bytes),
            Err(WireError::BadMagic(m)) if m == SPEC_MAGIC
        ));
    }

    #[test]
    fn version_gate() {
        let mut bytes = encode_program(&library::sum_inputs().into_inner());
        bytes[4] = 99; // version byte
                       // Fix up the CRC so only the version check fires.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_program(&bytes),
            Err(WireError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn infinity_and_nan_free_defaults_survive() {
        // Default requirement has max_noise_sigma = +inf; must round-trip.
        let spec = TaskSpec::new(TaskId::new(1), "x", library::sum_inputs().into_inner())
            .with_input(DataQuery::of_type(DataType::DetectionList));
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert!(back.inputs[0].requirement.max_noise_sigma.is_infinite());
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        use Instr::*;
        prop_oneof![
            any::<i64>().prop_map(Push),
            Just(Pop),
            Just(Dup),
            Just(Swap),
            Just(Over),
            Just(Add),
            Just(Sub),
            Just(Mul),
            Just(Div),
            Just(Rem),
            Just(Neg),
            Just(Abs),
            Just(Min),
            Just(Max),
            Just(And),
            Just(Or),
            Just(Xor),
            Just(Not),
            Just(Shl),
            Just(Shr),
            Just(Eq),
            Just(Ne),
            Just(Lt),
            Just(Le),
            Just(Gt),
            Just(Ge),
            (0u32..1000).prop_map(Jmp),
            (0u32..1000).prop_map(Jz),
            (0u32..1000).prop_map(Jnz),
            Just(Load),
            Just(Store),
            Just(Input),
            Just(InputLen),
            Just(Output),
            Just(Halt),
        ]
    }

    proptest! {
        #[test]
        fn any_program_round_trips(code in proptest::collection::vec(arb_instr(), 0..200), mem in 0u32..1024) {
            let p = Program::new(code, mem);
            let bytes = encode_program(&p);
            prop_assert_eq!(decode_program(&bytes).unwrap(), p);
        }

        #[test]
        fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_program(&bytes);
            let _ = decode_spec(&bytes);
        }

        #[test]
        fn single_bit_flips_are_caught(
            code in proptest::collection::vec(arb_instr(), 1..50),
            byte_index in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let p = Program::new(code, 4);
            let mut bytes = encode_program(&p);
            let idx = byte_index.index(bytes.len());
            bytes[idx] ^= 1 << bit;
            // Either an error, or (for flips inside the CRC itself that
            // collide — impossible for single-bit flips with CRC-32) a
            // different program. Never a silent identical success.
            if let Ok(decoded) = decode_program(&bytes) {
                prop_assert_ne!(decoded, p);
            }
        }
    }
}
