//! Task DAGs: multi-stage pipelines over single TaskVM kernels.
//!
//! A perception pipeline is rarely one kernel — detect, then fuse, then
//! summarize. A [`TaskGraph`] wires [`TaskSpec`]s into a DAG; the
//! orchestrator dispatches stages as their dependencies complete
//! ([`TaskGraph::ready_stages`]) and cycle-checks at construction time.

use crate::spec::TaskSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Identifies a stage within one [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StageId(u32);

impl StageId {
    /// Raw index of the stage.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage#{}", self.0)
    }
}

/// Errors from graph construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced stage does not exist.
    UnknownStage(StageId),
    /// The dependency would create a cycle.
    WouldCycle {
        /// Edge source.
        from: StageId,
        /// Edge destination.
        to: StageId,
    },
    /// A stage cannot depend on itself.
    SelfDependency(StageId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownStage(s) => write!(f, "unknown stage {s}"),
            GraphError::WouldCycle { from, to } => {
                write!(f, "dependency {from} → {to} would create a cycle")
            }
            GraphError::SelfDependency(s) => write!(f, "stage {s} cannot depend on itself"),
        }
    }
}

impl Error for GraphError {}

/// A DAG of task stages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskGraph {
    stages: Vec<TaskSpec>,
    /// `deps[i]` = stages that must complete before stage `i`.
    deps: Vec<BTreeSet<StageId>>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph {
            stages: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Adds a stage; returns its id.
    pub fn add_stage(&mut self, spec: TaskSpec) -> StageId {
        let id = StageId(self.stages.len() as u32);
        self.stages.push(spec);
        self.deps.push(BTreeSet::new());
        id
    }

    /// Declares that `stage` depends on `on` (i.e. `on` runs first).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if either id is unknown, the edge is a
    /// self-loop, or the edge would create a cycle.
    pub fn add_dependency(&mut self, stage: StageId, on: StageId) -> Result<(), GraphError> {
        for s in [stage, on] {
            if s.index() >= self.stages.len() {
                return Err(GraphError::UnknownStage(s));
            }
        }
        if stage == on {
            return Err(GraphError::SelfDependency(stage));
        }
        // A cycle would exist iff `stage` is already (transitively) a
        // dependency of `on`.
        if self.depends_transitively(on, stage) {
            return Err(GraphError::WouldCycle {
                from: stage,
                to: on,
            });
        }
        self.deps[stage.index()].insert(on);
        Ok(())
    }

    fn depends_transitively(&self, stage: StageId, on: StageId) -> bool {
        let mut stack = vec![stage];
        let mut seen = BTreeSet::new();
        while let Some(s) = stack.pop() {
            if s == on {
                return true;
            }
            if seen.insert(s) {
                stack.extend(self.deps[s.index()].iter().copied());
            }
        }
        false
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The spec of a stage.
    pub fn stage(&self, id: StageId) -> Option<&TaskSpec> {
        self.stages.get(id.index())
    }

    /// Direct dependencies of a stage.
    pub fn dependencies(&self, id: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.deps[id.index()].iter().copied()
    }

    /// Stages whose dependencies are all in `completed` and which are not
    /// themselves completed — what the orchestrator may dispatch next.
    pub fn ready_stages(&self, completed: &BTreeSet<StageId>) -> Vec<StageId> {
        (0..self.stages.len() as u32)
            .map(StageId)
            .filter(|s| !completed.contains(s))
            .filter(|s| self.deps[s.index()].iter().all(|d| completed.contains(d)))
            .collect()
    }

    /// A full topological order (dependencies first). Always succeeds
    /// because [`TaskGraph::add_dependency`] rejects cycles.
    pub fn topological_order(&self) -> Vec<StageId> {
        let mut completed = BTreeSet::new();
        let mut order = Vec::with_capacity(self.stages.len());
        while completed.len() < self.stages.len() {
            let ready = self.ready_stages(&completed);
            debug_assert!(!ready.is_empty(), "acyclic graph always has a ready stage");
            for s in ready {
                completed.insert(s);
                order.push(s);
            }
        }
        order
    }
}

impl Default for TaskGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TaskId, TaskSpec};
    use crate::vm::{Instr, Program};

    fn spec(i: u64) -> TaskSpec {
        TaskSpec::new(
            TaskId::new(i),
            format!("stage{i}"),
            Program::new(vec![Instr::Halt], 0),
        )
    }

    fn diamond() -> (TaskGraph, [StageId; 4]) {
        // a → b, a → c, b → d, c → d
        let mut g = TaskGraph::new();
        let a = g.add_stage(spec(0));
        let b = g.add_stage(spec(1));
        let c = g.add_stage(spec(2));
        let d = g.add_stage(spec(3));
        g.add_dependency(b, a).unwrap();
        g.add_dependency(c, a).unwrap();
        g.add_dependency(d, b).unwrap();
        g.add_dependency(d, c).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn ready_stages_respect_dependencies() {
        let (g, [a, b, c, d]) = diamond();
        let mut done = BTreeSet::new();
        assert_eq!(g.ready_stages(&done), vec![a]);
        done.insert(a);
        assert_eq!(g.ready_stages(&done), vec![b, c]);
        done.insert(b);
        assert_eq!(g.ready_stages(&done), vec![c], "d still blocked by c");
        done.insert(c);
        assert_eq!(g.ready_stages(&done), vec![d]);
        done.insert(d);
        assert!(g.ready_stages(&done).is_empty());
    }

    #[test]
    fn topological_order_is_valid() {
        let (g, _) = diamond();
        let order = g.topological_order();
        assert_eq!(order.len(), 4);
        let position = |s: StageId| order.iter().position(|&x| x == s).unwrap();
        for s in &order {
            for d in g.dependencies(*s) {
                assert!(position(d) < position(*s), "{d} must precede {s}");
            }
        }
    }

    #[test]
    fn cycles_are_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_stage(spec(0));
        let b = g.add_stage(spec(1));
        let c = g.add_stage(spec(2));
        g.add_dependency(b, a).unwrap();
        g.add_dependency(c, b).unwrap();
        assert_eq!(
            g.add_dependency(a, c),
            Err(GraphError::WouldCycle { from: a, to: c })
        );
        assert_eq!(g.add_dependency(a, a), Err(GraphError::SelfDependency(a)));
    }

    #[test]
    fn unknown_stage_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_stage(spec(0));
        let ghost = StageId(9);
        assert_eq!(
            g.add_dependency(a, ghost),
            Err(GraphError::UnknownStage(ghost))
        );
    }

    #[test]
    fn empty_graph_behaves() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert!(g.topological_order().is_empty());
        assert!(g.ready_stages(&BTreeSet::new()).is_empty());
    }

    #[test]
    fn duplicate_dependency_is_idempotent() {
        let mut g = TaskGraph::new();
        let a = g.add_stage(spec(0));
        let b = g.add_stage(spec(1));
        g.add_dependency(b, a).unwrap();
        g.add_dependency(b, a).unwrap();
        assert_eq!(g.dependencies(b).count(), 1);
    }
}
