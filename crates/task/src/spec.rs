//! Declarative task metadata: what the orchestrator reasons about.
//!
//! A [`TaskSpec`] is the complete Model-2 artefact that travels through the
//! mesh: the portable program, the Model-3 data queries describing its
//! inputs, declared resource requirements and a deadline. The orchestrator
//! never inspects bytecode — feasibility checks (RQ3) work on the declared
//! [`ResourceRequirements`], which the gas meter then *enforces* at
//! execution time.

use crate::vm::Program;
use airdnd_data::DataQuery;
use airdnd_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique task identifier (assigned by the originating node).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u64);

impl TaskId {
    /// Creates an id from a raw value.
    pub const fn new(raw: u64) -> Self {
        TaskId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Scheduling priority, ordered low → critical.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Priority {
    /// Background work.
    Low,
    /// Default.
    #[default]
    Normal,
    /// Time-sensitive perception.
    High,
    /// Safety-critical (e.g. collision avoidance input).
    Critical,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
            Priority::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// Declared resource needs of a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRequirements {
    /// Gas budget the executor must grant (and may meter against).
    pub gas: u64,
    /// Working memory the program needs, bytes.
    pub memory_bytes: u64,
    /// Expected on-wire size of task + input references, bytes.
    pub input_bytes: u64,
    /// Expected on-wire size of the result, bytes.
    pub output_bytes: u64,
    /// Completion deadline, relative to submission.
    pub deadline: SimDuration,
}

impl Default for ResourceRequirements {
    /// A small perception task: 1 M gas, 1 MiB memory, 2 s deadline.
    fn default() -> Self {
        ResourceRequirements {
            gas: 1_000_000,
            memory_bytes: 1 << 20,
            input_bytes: 4_096,
            output_bytes: 4_096,
            deadline: SimDuration::from_secs(2),
        }
    }
}

/// The complete offloadable task description (Model 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Globally unique id.
    pub id: TaskId,
    /// Human-readable kernel name (diagnostics only).
    pub name: String,
    /// The portable program.
    pub program: Program,
    /// Model-3 queries describing the data the executor must hold.
    pub inputs: Vec<DataQuery>,
    /// Declared resource needs.
    pub requirements: ResourceRequirements,
    /// Scheduling priority.
    pub priority: Priority,
}

impl TaskSpec {
    /// Builds a spec around a program with default requirements.
    pub fn new(id: TaskId, name: impl Into<String>, program: Program) -> Self {
        TaskSpec {
            id,
            name: name.into(),
            program,
            inputs: Vec::new(),
            requirements: ResourceRequirements::default(),
            priority: Priority::default(),
        }
    }

    /// Adds a data query (builder style).
    pub fn with_input(mut self, query: DataQuery) -> Self {
        self.inputs.push(query);
        self
    }

    /// Sets the requirements (builder style).
    pub fn with_requirements(mut self, requirements: ResourceRequirements) -> Self {
        self.requirements = requirements;
        self
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Approximate on-wire size of this spec in bytes: program instructions
    /// (9 bytes each serialized), name, queries and fixed metadata. This is
    /// what the offload protocol charges the radio for.
    pub fn wire_size_bytes(&self) -> u64 {
        let program = self.program.len() as u64 * 9 + 8;
        let name = self.name.len() as u64 + 4;
        let queries = self.inputs.len() as u64 * 80;
        let fixed = 8 + 40 + 1;
        program + name + queries + fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Instr;
    use airdnd_data::{DataQuery, DataType};

    fn program() -> Program {
        Program::new(vec![Instr::Push(1), Instr::Output], 0)
    }

    #[test]
    fn priority_ordering_matches_urgency() {
        assert!(Priority::Critical > Priority::High);
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn builder_chain() {
        let spec = TaskSpec::new(TaskId::new(7), "fuse", program())
            .with_input(DataQuery::of_type(DataType::OccupancyGrid))
            .with_priority(Priority::High)
            .with_requirements(ResourceRequirements {
                gas: 42,
                ..Default::default()
            });
        assert_eq!(spec.id.raw(), 7);
        assert_eq!(spec.inputs.len(), 1);
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.requirements.gas, 42);
    }

    #[test]
    fn wire_size_scales_with_content() {
        let small = TaskSpec::new(TaskId::new(1), "s", program());
        let big_program = Program::new(vec![Instr::Push(0); 100], 0);
        let big = TaskSpec::new(TaskId::new(2), "big-kernel-name", big_program)
            .with_input(DataQuery::of_type(DataType::OccupancyGrid));
        assert!(big.wire_size_bytes() > small.wire_size_bytes() + 800);
        // Specs are small relative to raw sensor frames — the core claim.
        assert!(big.wire_size_bytes() < 10_000);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId::new(3).to_string(), "task#3");
    }
}
