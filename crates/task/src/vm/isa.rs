//! The TaskVM instruction set and program container.
//!
//! A deliberately small ISA: stack manipulation, two's-complement `i64`
//! arithmetic, comparisons, absolute jumps, word-addressed memory, and
//! explicit input/output channels. Everything a perception kernel needs,
//! nothing that could touch the host.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum instructions per program.
pub const MAX_CODE_LEN: usize = 65_536;
/// Maximum memory words a program may declare (8 MiB).
pub const MAX_MEMORY_WORDS: u32 = 1 << 20;
/// Maximum operand-stack depth.
pub const MAX_STACK: usize = 1_024;

/// One TaskVM instruction.
///
/// Stack effects are written `[before] → [after]` with the top of stack on
/// the right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `[] → [c]` — push a constant.
    Push(i64),
    /// `[a] → []`.
    Pop,
    /// `[a] → [a, a]`.
    Dup,
    /// `[a, b] → [b, a]`.
    Swap,
    /// `[a, b] → [a, b, a]`.
    Over,

    /// `[a, b] → [a + b]` (wrapping).
    Add,
    /// `[a, b] → [a − b]` (wrapping).
    Sub,
    /// `[a, b] → [a × b]` (wrapping).
    Mul,
    /// `[a, b] → [a ÷ b]`; traps on division by zero.
    Div,
    /// `[a, b] → [a mod b]`; traps on division by zero.
    Rem,
    /// `[a] → [−a]` (wrapping).
    Neg,
    /// `[a] → [|a|]` (wrapping).
    Abs,
    /// `[a, b] → [min(a, b)]`.
    Min,
    /// `[a, b] → [max(a, b)]`.
    Max,

    /// `[a, b] → [a & b]`.
    And,
    /// `[a, b] → [a | b]`.
    Or,
    /// `[a, b] → [a ^ b]`.
    Xor,
    /// `[a] → [!a]` (bitwise).
    Not,
    /// `[a, s] → [a << (s & 63)]`.
    Shl,
    /// `[a, s] → [a >> (s & 63)]` (arithmetic).
    Shr,

    /// `[a, b] → [a == b]` (1/0).
    Eq,
    /// `[a, b] → [a != b]`.
    Ne,
    /// `[a, b] → [a < b]`.
    Lt,
    /// `[a, b] → [a <= b]`.
    Le,
    /// `[a, b] → [a > b]`.
    Gt,
    /// `[a, b] → [a >= b]`.
    Ge,

    /// `[] → []` — jump to instruction index.
    Jmp(u32),
    /// `[c] → []` — jump if `c == 0`.
    Jz(u32),
    /// `[c] → []` — jump if `c != 0`.
    Jnz(u32),

    /// `[addr] → [mem[addr]]`; traps out of bounds.
    Load,
    /// `[value, addr] → []` — `mem[addr] = value`; traps out of bounds.
    Store,

    /// `[i] → [inputs[i]]`; traps out of bounds.
    Input,
    /// `[] → [inputs.len()]`.
    InputLen,
    /// `[v] → []` — append `v` to the output stream.
    Output,

    /// Stop successfully.
    Halt,
}

impl Instr {
    /// `(pops, pushes)` stack effect, used by the verifier.
    pub const fn stack_effect(self) -> (u32, u32) {
        use Instr::*;
        match self {
            Push(_) => (0, 1),
            Pop => (1, 0),
            Dup => (1, 2),
            Swap => (2, 2),
            Over => (2, 3),
            Add | Sub | Mul | Div | Rem | Min | Max | And | Or | Xor | Shl | Shr => (2, 1),
            Neg | Abs | Not => (1, 1),
            Eq | Ne | Lt | Le | Gt | Ge => (2, 1),
            Jmp(_) => (0, 0),
            Jz(_) | Jnz(_) => (1, 0),
            Load => (1, 1),
            Store => (2, 0),
            Input => (1, 1),
            InputLen => (0, 1),
            Output => (1, 0),
            Halt => (0, 0),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Push(c) => write!(f, "push {c}"),
            Instr::Jmp(t) => write!(f, "jmp @{t}"),
            Instr::Jz(t) => write!(f, "jz @{t}"),
            Instr::Jnz(t) => write!(f, "jnz @{t}"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

/// Gas charged per instruction. Memory and I/O cost more than pure stack
/// work; multiplication/division cost more than addition — coarse but
/// monotone with real cost, which is all the scheduling experiments need.
pub const fn gas_cost(instr: Instr) -> u64 {
    use Instr::*;
    match instr {
        Mul | Div | Rem => 4,
        Load | Store => 3,
        Input | InputLen | Output => 2,
        Halt => 0,
        _ => 1,
    }
}

/// An unverified TaskVM program: code plus a declared memory size.
///
/// Run [`crate::vm::verify`](crate::vm::verify()) to obtain a [`crate::vm::VerifiedProgram`]
/// before execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    code: Vec<Instr>,
    memory_words: u32,
}

impl Program {
    /// Creates a program. Limits are checked by the verifier, not here, so
    /// that malformed wire data can still be represented and rejected with
    /// a proper error.
    pub fn new(code: Vec<Instr>, memory_words: u32) -> Self {
        Program { code, memory_words }
    }

    /// The instruction sequence.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Declared memory size in 8-byte words.
    pub fn memory_words(&self) -> u32 {
        self.memory_words
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Worst-case gas if every instruction executed once — a cheap static
    /// lower-bound sanity check for declared budgets (loops exceed it).
    pub fn straight_line_gas(&self) -> u64 {
        self.code.iter().map(|&i| gas_cost(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_effects_are_consistent_with_docs() {
        assert_eq!(Instr::Push(1).stack_effect(), (0, 1));
        assert_eq!(Instr::Store.stack_effect(), (2, 0));
        assert_eq!(Instr::Over.stack_effect(), (2, 3));
        assert_eq!(Instr::Halt.stack_effect(), (0, 0));
    }

    #[test]
    fn gas_ordering() {
        assert!(gas_cost(Instr::Mul) > gas_cost(Instr::Add));
        assert!(gas_cost(Instr::Load) > gas_cost(Instr::Add));
        assert_eq!(gas_cost(Instr::Halt), 0);
    }

    #[test]
    fn straight_line_gas_sums() {
        let p = Program::new(
            vec![Instr::Push(1), Instr::Push(2), Instr::Mul, Instr::Output],
            0,
        );
        assert_eq!(p.straight_line_gas(), 1 + 1 + 4 + 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instr::Push(-3).to_string(), "push -3");
        assert_eq!(Instr::Jz(7).to_string(), "jz @7");
        assert_eq!(Instr::Add.to_string(), "add");
    }
}
