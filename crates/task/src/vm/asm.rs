//! A small assembler for writing TaskVM programs ergonomically.
//!
//! Raw instruction vectors need hand-counted jump targets; the
//! [`Assembler`] provides forward-referencing [`Label`]s that are patched
//! at [`Assembler::finish`], plus composite helpers for the common
//! memory-variable idioms (`load_var`, `store_var`, counted loops).
//!
//! ```
//! use airdnd_task::vm::{Assembler, Instr, execute, ExecLimits};
//!
//! // out = sum of inputs, using a label-based loop.
//! let mut a = Assembler::new();
//! let (loop_top, done) = (a.new_label(), a.new_label());
//! a.bind(loop_top);
//! a.load_var(1);                 // i
//! a.emit(Instr::InputLen);
//! a.emit(Instr::Ge);
//! a.jnz(done);
//! a.load_var(0);                 // acc
//! a.load_var(1);
//! a.emit(Instr::Input);
//! a.emit(Instr::Add);
//! a.store_var(0);
//! a.incr_var(1);
//! a.jmp(loop_top);
//! a.bind(done);
//! a.load_var(0);
//! a.emit(Instr::Output);
//! let program = a.finish(2)?;
//! let verified = airdnd_task::vm::verify(program)?;
//! let out = execute(&verified, &[1, 2, 3], ExecLimits::default())?;
//! assert_eq!(out.outputs, vec![6]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use super::isa::{Instr, Program};
use std::error::Error;
use std::fmt;

/// A forward-referencable jump target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced when finishing an assembly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced by a jump but never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    ReboundLabel(Label),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {:?} referenced but never bound", l),
            AsmError::ReboundLabel(l) => write!(f, "label {:?} bound twice", l),
        }
    }
}

impl Error for AsmError {}

enum PendingInstr {
    Fixed(Instr),
    Jmp(Label),
    Jz(Label),
    Jnz(Label),
}

/// Builder for TaskVM programs; see the module example.
#[derive(Default)]
pub struct Assembler {
    code: Vec<PendingInstr>,
    bindings: Vec<Option<u32>>,
    rebound: Option<Label>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bindings.push(None);
        Label(self.bindings.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        if self.bindings[label.0].is_some() {
            self.rebound.get_or_insert(label);
            return;
        }
        self.bindings[label.0] = Some(self.code.len() as u32);
    }

    /// Appends a non-jump instruction.
    ///
    /// # Panics
    ///
    /// Panics if given a jump instruction — use [`Assembler::jmp`] /
    /// [`Assembler::jz`] / [`Assembler::jnz`] so targets go through labels.
    pub fn emit(&mut self, instr: Instr) {
        assert!(
            !matches!(instr, Instr::Jmp(_) | Instr::Jz(_) | Instr::Jnz(_)),
            "use the label-based jump methods"
        );
        self.code.push(PendingInstr::Fixed(instr));
    }

    /// Appends `Push(value)`.
    pub fn push(&mut self, value: i64) {
        self.emit(Instr::Push(value));
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.code.push(PendingInstr::Jmp(label));
    }

    /// Jump to `label` if the popped value is zero.
    pub fn jz(&mut self, label: Label) {
        self.code.push(PendingInstr::Jz(label));
    }

    /// Jump to `label` if the popped value is non-zero.
    pub fn jnz(&mut self, label: Label) {
        self.code.push(PendingInstr::Jnz(label));
    }

    /// Pushes `mem[addr]` (a "variable" read).
    pub fn load_var(&mut self, addr: i64) {
        self.push(addr);
        self.emit(Instr::Load);
    }

    /// Pops the top of stack into `mem[addr]` (a "variable" write).
    pub fn store_var(&mut self, addr: i64) {
        self.push(addr);
        self.emit(Instr::Store);
    }

    /// `mem[addr] = value` without touching the surrounding stack.
    pub fn set_var(&mut self, addr: i64, value: i64) {
        self.push(value);
        self.store_var(addr);
    }

    /// `mem[addr] += 1`.
    pub fn incr_var(&mut self, addr: i64) {
        self.load_var(addr);
        self.push(1);
        self.emit(Instr::Add);
        self.store_var(addr);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if any referenced label is unbound, or a label
    /// was bound twice.
    pub fn finish(self, memory_words: u32) -> Result<Program, AsmError> {
        if let Some(l) = self.rebound {
            return Err(AsmError::ReboundLabel(l));
        }
        let resolve = |l: Label| self.bindings[l.0].ok_or(AsmError::UnboundLabel(l));
        let mut code = Vec::with_capacity(self.code.len());
        for pending in self.code {
            code.push(match pending {
                PendingInstr::Fixed(i) => i,
                PendingInstr::Jmp(l) => Instr::Jmp(resolve(l)?),
                PendingInstr::Jz(l) => Instr::Jz(resolve(l)?),
                PendingInstr::Jnz(l) => Instr::Jnz(resolve(l)?),
            });
        }
        Ok(Program::new(code, memory_words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::exec::{execute, ExecLimits};
    use crate::vm::verify::verify;

    fn run(program: Program, inputs: &[i64]) -> Vec<i64> {
        let v = verify(program).expect("assembled programs verify");
        execute(&v, inputs, ExecLimits::default())
            .expect("no traps")
            .outputs
    }

    #[test]
    fn forward_reference_is_patched() {
        let mut a = Assembler::new();
        let end = a.new_label();
        a.push(0);
        a.jz(end); // forward jump over the "wrong" output
        a.push(666);
        a.emit(Instr::Output);
        a.bind(end);
        a.push(1);
        a.emit(Instr::Output);
        let out = run(a.finish(0).unwrap(), &[]);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn backward_reference_loops() {
        // Count down from 3, outputting each value.
        let mut a = Assembler::new();
        let (top, done) = (a.new_label(), a.new_label());
        a.set_var(0, 3);
        a.bind(top);
        a.load_var(0);
        a.jz(done);
        a.load_var(0);
        a.emit(Instr::Output);
        a.load_var(0);
        a.push(1);
        a.emit(Instr::Sub);
        a.store_var(0);
        a.jmp(top);
        a.bind(done);
        let out = run(a.finish(1).unwrap(), &[]);
        assert_eq!(out, vec![3, 2, 1]);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.jmp(l);
        assert_eq!(a.finish(0), Err(AsmError::UnboundLabel(l)));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.push(1);
        a.bind(l);
        a.emit(Instr::Output);
        assert_eq!(a.finish(0), Err(AsmError::ReboundLabel(l)));
    }

    #[test]
    #[should_panic(expected = "label-based jump")]
    fn raw_jump_emission_panics() {
        let mut a = Assembler::new();
        a.emit(Instr::Jmp(0));
    }

    #[test]
    fn var_helpers_compose() {
        let mut a = Assembler::new();
        a.set_var(2, 20);
        a.incr_var(2);
        a.incr_var(2);
        a.load_var(2);
        a.emit(Instr::Output);
        let out = run(a.finish(4).unwrap(), &[]);
        assert_eq!(out, vec![22]);
    }
}
