//! The TaskVM interpreter: gas-metered execution of verified programs.
//!
//! Execution is fully deterministic: the same program, inputs and limits
//! produce the same outputs and gas usage on any node — which is what lets
//! AirDnD verify results by redundant execution (RQ3).

use super::isa::{gas_cost, Instr};
use super::verify::VerifiedProgram;
use std::error::Error;
use std::fmt;

/// Runtime resource limits for one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum gas; execution traps with [`Trap::OutOfGas`] beyond it.
    pub max_gas: u64,
    /// Maximum output words a program may emit.
    pub max_outputs: usize,
}

impl Default for ExecLimits {
    /// 10 M gas and 64 Ki output words — generous for perception kernels.
    fn default() -> Self {
        ExecLimits {
            max_gas: 10_000_000,
            max_outputs: 65_536,
        }
    }
}

/// A successful execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Execution {
    /// The program's output stream.
    pub outputs: Vec<i64>,
    /// Gas consumed.
    pub gas_used: u64,
    /// Instructions executed.
    pub steps: u64,
}

/// A runtime failure. Traps abort the execution; no partial outputs are
/// returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The gas limit was exhausted.
    OutOfGas {
        /// The configured limit.
        limit: u64,
    },
    /// Division or remainder by zero.
    DivByZero {
        /// Instruction index.
        pc: usize,
    },
    /// Memory access outside the declared region.
    MemOutOfBounds {
        /// Instruction index.
        pc: usize,
        /// The offending address.
        addr: i64,
    },
    /// Input index outside the provided inputs.
    InputOutOfBounds {
        /// Instruction index.
        pc: usize,
        /// The offending index.
        index: i64,
    },
    /// The program emitted more than `max_outputs` words.
    OutputLimit {
        /// Instruction index.
        pc: usize,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfGas { limit } => write!(f, "out of gas (limit {limit})"),
            Trap::DivByZero { pc } => write!(f, "division by zero at {pc}"),
            Trap::MemOutOfBounds { pc, addr } => {
                write!(f, "memory access {addr} out of bounds at {pc}")
            }
            Trap::InputOutOfBounds { pc, index } => {
                write!(f, "input index {index} out of bounds at {pc}")
            }
            Trap::OutputLimit { pc } => write!(f, "output limit exceeded at {pc}"),
        }
    }
}

impl Error for Trap {}

/// Executes a verified program against `inputs`.
///
/// # Errors
///
/// Returns a [`Trap`] on any runtime failure; see the trap variants.
pub fn execute(
    program: &VerifiedProgram,
    inputs: &[i64],
    limits: ExecLimits,
) -> Result<Execution, Trap> {
    let code = program.program().code();
    let mem_words = program.program().memory_words() as usize;
    let mut memory = vec![0i64; mem_words];
    let mut stack: Vec<i64> = Vec::with_capacity(program.max_stack() as usize);
    let mut outputs = Vec::new();
    let mut pc = 0usize;
    let mut gas: u64 = 0;
    let mut steps: u64 = 0;

    // Stack pops are safe without checks: the verifier proved heights.
    macro_rules! pop {
        () => {
            stack.pop().expect("verified program cannot underflow")
        };
    }

    while pc < code.len() {
        let instr = code[pc];
        gas += gas_cost(instr);
        if gas > limits.max_gas {
            return Err(Trap::OutOfGas {
                limit: limits.max_gas,
            });
        }
        steps += 1;
        let mut next = pc + 1;
        match instr {
            Instr::Push(c) => stack.push(c),
            Instr::Pop => {
                pop!();
            }
            Instr::Dup => {
                let a = *stack.last().expect("verified");
                stack.push(a);
            }
            Instr::Swap => {
                let n = stack.len();
                stack.swap(n - 1, n - 2);
            }
            Instr::Over => {
                let a = stack[stack.len() - 2];
                stack.push(a);
            }
            Instr::Add => {
                let b = pop!();
                let a = pop!();
                stack.push(a.wrapping_add(b));
            }
            Instr::Sub => {
                let b = pop!();
                let a = pop!();
                stack.push(a.wrapping_sub(b));
            }
            Instr::Mul => {
                let b = pop!();
                let a = pop!();
                stack.push(a.wrapping_mul(b));
            }
            Instr::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(Trap::DivByZero { pc });
                }
                stack.push(a.wrapping_div(b));
            }
            Instr::Rem => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(Trap::DivByZero { pc });
                }
                stack.push(a.wrapping_rem(b));
            }
            Instr::Neg => {
                let a = pop!();
                stack.push(a.wrapping_neg());
            }
            Instr::Abs => {
                let a = pop!();
                stack.push(a.wrapping_abs());
            }
            Instr::Min => {
                let b = pop!();
                let a = pop!();
                stack.push(a.min(b));
            }
            Instr::Max => {
                let b = pop!();
                let a = pop!();
                stack.push(a.max(b));
            }
            Instr::And => {
                let b = pop!();
                let a = pop!();
                stack.push(a & b);
            }
            Instr::Or => {
                let b = pop!();
                let a = pop!();
                stack.push(a | b);
            }
            Instr::Xor => {
                let b = pop!();
                let a = pop!();
                stack.push(a ^ b);
            }
            Instr::Not => {
                let a = pop!();
                stack.push(!a);
            }
            Instr::Shl => {
                let s = pop!();
                let a = pop!();
                stack.push(a.wrapping_shl(s as u32 & 63));
            }
            Instr::Shr => {
                let s = pop!();
                let a = pop!();
                stack.push(a.wrapping_shr(s as u32 & 63));
            }
            Instr::Eq => {
                let b = pop!();
                let a = pop!();
                stack.push((a == b) as i64);
            }
            Instr::Ne => {
                let b = pop!();
                let a = pop!();
                stack.push((a != b) as i64);
            }
            Instr::Lt => {
                let b = pop!();
                let a = pop!();
                stack.push((a < b) as i64);
            }
            Instr::Le => {
                let b = pop!();
                let a = pop!();
                stack.push((a <= b) as i64);
            }
            Instr::Gt => {
                let b = pop!();
                let a = pop!();
                stack.push((a > b) as i64);
            }
            Instr::Ge => {
                let b = pop!();
                let a = pop!();
                stack.push((a >= b) as i64);
            }
            Instr::Jmp(t) => next = t as usize,
            Instr::Jz(t) => {
                if pop!() == 0 {
                    next = t as usize;
                }
            }
            Instr::Jnz(t) => {
                if pop!() != 0 {
                    next = t as usize;
                }
            }
            Instr::Load => {
                let addr = pop!();
                let Some(&v) = usize::try_from(addr).ok().and_then(|a| memory.get(a)) else {
                    return Err(Trap::MemOutOfBounds { pc, addr });
                };
                stack.push(v);
            }
            Instr::Store => {
                let addr = pop!();
                let value = pop!();
                let Some(slot) = usize::try_from(addr).ok().and_then(|a| memory.get_mut(a)) else {
                    return Err(Trap::MemOutOfBounds { pc, addr });
                };
                *slot = value;
            }
            Instr::Input => {
                let index = pop!();
                let Some(&v) = usize::try_from(index).ok().and_then(|i| inputs.get(i)) else {
                    return Err(Trap::InputOutOfBounds { pc, index });
                };
                stack.push(v);
            }
            Instr::InputLen => stack.push(inputs.len() as i64),
            Instr::Output => {
                let v = pop!();
                if outputs.len() >= limits.max_outputs {
                    return Err(Trap::OutputLimit { pc });
                }
                outputs.push(v);
            }
            Instr::Halt => break,
        }
        pc = next;
    }
    Ok(Execution {
        outputs,
        gas_used: gas,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::isa::{Instr::*, Program};
    use crate::vm::verify::verify;

    fn run(code: Vec<Instr>, mem: u32, inputs: &[i64]) -> Result<Execution, Trap> {
        let v = verify(Program::new(code, mem)).expect("test programs verify");
        execute(&v, inputs, ExecLimits::default())
    }

    #[test]
    fn arithmetic_basics() {
        let out = run(vec![Push(7), Push(5), Sub, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![2]);
        let out = run(vec![Push(7), Push(5), Mul, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![35]);
        let out = run(vec![Push(-7), Abs, Output, Push(3), Neg, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![7, -3]);
        let out = run(
            vec![Push(9), Push(4), Div, Output, Push(9), Push(4), Rem, Output],
            0,
            &[],
        )
        .unwrap();
        assert_eq!(out.outputs, vec![2, 1]);
    }

    #[test]
    fn comparisons_and_logic() {
        let out = run(
            vec![
                Push(3),
                Push(5),
                Lt,
                Output,
                Push(3),
                Push(5),
                Ge,
                Output,
                Push(0b1100),
                Push(0b1010),
                And,
                Output,
                Push(0b1100),
                Push(0b1010),
                Xor,
                Output,
                Push(1),
                Push(3),
                Shl,
                Output,
            ],
            0,
            &[],
        )
        .unwrap();
        assert_eq!(out.outputs, vec![1, 0, 0b1000, 0b0110, 8]);
    }

    #[test]
    fn stack_shuffles() {
        let out = run(vec![Push(1), Push(2), Swap, Output, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![1, 2]);
        let out = run(vec![Push(1), Push(2), Over, Output, Output, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![1, 2, 1]);
    }

    #[test]
    fn memory_round_trip() {
        let out = run(
            vec![
                Push(42),
                Push(3),
                Store,
                Push(3),
                Load,
                Output,
                Push(0),
                Load,
                Output,
            ],
            8,
            &[],
        )
        .unwrap();
        assert_eq!(out.outputs, vec![42, 0], "memory is zero-initialized");
    }

    #[test]
    fn inputs_are_readable() {
        let out = run(
            vec![
                InputLen,
                Output,
                Push(0),
                Input,
                Push(2),
                Input,
                Add,
                Output,
            ],
            0,
            &[10, 20, 30],
        )
        .unwrap();
        assert_eq!(out.outputs, vec![3, 40]);
    }

    #[test]
    fn loop_sums_inputs() {
        // acc lives in mem[0], i in mem[1]; while i < len: acc += input[i].
        let code = vec![
            Push(1),
            Load,
            InputLen,
            Ge,
            Jnz(20), // 0..=4   exit when i >= len
            Push(0),
            Load,
            Push(1),
            Load,
            Input,
            Add,
            Push(0),
            Store, // 5..=12  acc += input[i]
            Push(1),
            Load,
            Push(1),
            Add,
            Push(1),
            Store,  // 13..=18  i += 1
            Jmp(0), // 19
            Push(0),
            Load,
            Output, // 20..=22  emit acc
        ];
        let out = run(code, 2, &[5, 6, 7, 8]).unwrap();
        assert_eq!(out.outputs, vec![26]);
    }

    #[test]
    fn div_by_zero_traps() {
        assert_eq!(
            run(vec![Push(1), Push(0), Div, Output], 0, &[]),
            Err(Trap::DivByZero { pc: 2 })
        );
        assert_eq!(
            run(vec![Push(1), Push(0), Rem, Output], 0, &[]),
            Err(Trap::DivByZero { pc: 2 })
        );
    }

    #[test]
    fn memory_bounds_trap() {
        let r = run(vec![Push(99), Load, Output], 8, &[]);
        assert_eq!(r, Err(Trap::MemOutOfBounds { pc: 1, addr: 99 }));
        let r = run(vec![Push(1), Push(-1), Store], 8, &[]);
        assert_eq!(r, Err(Trap::MemOutOfBounds { pc: 2, addr: -1 }));
    }

    #[test]
    fn input_bounds_trap() {
        let r = run(vec![Push(5), Input, Output], 0, &[1, 2]);
        assert_eq!(r, Err(Trap::InputOutOfBounds { pc: 1, index: 5 }));
        let r = run(vec![Push(-1), Input, Output], 0, &[1, 2]);
        assert_eq!(r, Err(Trap::InputOutOfBounds { pc: 1, index: -1 }));
    }

    #[test]
    fn gas_limit_stops_infinite_loop() {
        let v = verify(Program::new(vec![Jmp(0)], 0)).unwrap();
        let r = execute(
            &v,
            &[],
            ExecLimits {
                max_gas: 1_000,
                max_outputs: 16,
            },
        );
        assert_eq!(r, Err(Trap::OutOfGas { limit: 1_000 }));
    }

    #[test]
    fn output_limit_enforced() {
        let code = vec![Push(1), Output, Jmp(0)];
        let v = verify(Program::new(code, 0)).unwrap();
        let r = execute(
            &v,
            &[],
            ExecLimits {
                max_gas: 1_000_000,
                max_outputs: 3,
            },
        );
        assert_eq!(r, Err(Trap::OutputLimit { pc: 1 }));
    }

    #[test]
    fn gas_accounting_matches_costs() {
        let out = run(vec![Push(2), Push(3), Mul, Output], 0, &[]).unwrap();
        // push(1) + push(1) + mul(4) + output(2) = 8
        assert_eq!(out.gas_used, 8);
        assert_eq!(out.steps, 4);
    }

    #[test]
    fn falling_off_the_end_halts_cleanly() {
        let out = run(vec![Push(1), Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![1]);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let out = run(vec![Push(i64::MAX), Push(1), Add, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![i64::MIN]);
        let out = run(vec![Push(i64::MIN), Neg, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![i64::MIN]);
        let out = run(vec![Push(i64::MIN), Push(-1), Div, Output], 0, &[]).unwrap();
        assert_eq!(out.outputs, vec![i64::MIN]);
    }

    #[test]
    fn determinism() {
        let code = vec![Push(0), Input, Push(1), Input, Mul, Output];
        let a = run(code.clone(), 0, &[123, 456]).unwrap();
        let b = run(code, 0, &[123, 456]).unwrap();
        assert_eq!(a, b);
    }
}
