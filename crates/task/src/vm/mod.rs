//! TaskVM: the portable execution substrate for offloaded tasks.
//!
//! TaskVM is a stack machine over `i64` words with a bounded word-addressed
//! memory, explicit inputs/outputs and deterministic gas metering. Programs
//! are [verified](verify()) before execution — verification proves stack
//! safety and jump validity once, so the interpreter's per-step work stays
//! small and a malicious task cannot corrupt the host.
//!
//! The module split mirrors the lifecycle:
//! [`isa`] (what programs are) → [`asm`] (how they are written) →
//! [`verify`](verify()) (what a receiving node checks) → [`exec`] (how they run).

pub mod asm;
pub mod exec;
pub mod isa;
pub mod verify;

pub use asm::{AsmError, Assembler, Label};
pub use exec::{execute, ExecLimits, Execution, Trap};
pub use isa::{gas_cost, Instr, Program, MAX_CODE_LEN, MAX_MEMORY_WORDS, MAX_STACK};
pub use verify::{verify, VerifiedProgram, VerifyError};
