//! Static verification: the receiving node's safety check.
//!
//! Verification proves, before running a single instruction:
//!
//! * program and memory sizes are within VM limits,
//! * every jump target is a valid instruction index (or one past the end,
//!   which is a clean halt),
//! * the operand stack can never underflow or exceed [`MAX_STACK`], using
//!   a fixed-point dataflow over stack *heights* — every join point must
//!   agree on the height, exactly like JVM bytecode verification.
//!
//! A [`VerifiedProgram`] is the proof-carrying result: the interpreter only
//! accepts verified programs, so its hot loop can skip stack checks that
//! the type system already guarantees happened.

use super::isa::{Instr, Program, MAX_CODE_LEN, MAX_MEMORY_WORDS, MAX_STACK};
use std::error::Error;
use std::fmt;

/// Why verification rejected a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The program has no instructions.
    EmptyProgram,
    /// More instructions than [`MAX_CODE_LEN`].
    CodeTooLong(usize),
    /// Declared memory exceeds [`MAX_MEMORY_WORDS`].
    MemoryTooLarge(u32),
    /// A jump at `pc` targets past the end of the program.
    InvalidJumpTarget {
        /// Instruction index of the offending jump.
        pc: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// The stack would underflow at `pc`.
    StackUnderflow {
        /// Instruction index where the underflow occurs.
        pc: usize,
    },
    /// The stack would exceed [`MAX_STACK`] at `pc`.
    StackOverflow {
        /// Instruction index where the overflow occurs.
        pc: usize,
    },
    /// Two control-flow paths reach `pc` with different stack heights.
    InconsistentStack {
        /// Instruction index of the join point.
        pc: usize,
        /// Height recorded first.
        expected: u32,
        /// Height on the conflicting path.
        found: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyProgram => write!(f, "program has no instructions"),
            VerifyError::CodeTooLong(n) => {
                write!(f, "program has {n} instructions (max {MAX_CODE_LEN})")
            }
            VerifyError::MemoryTooLarge(w) => {
                write!(
                    f,
                    "program declares {w} memory words (max {MAX_MEMORY_WORDS})"
                )
            }
            VerifyError::InvalidJumpTarget { pc, target } => {
                write!(f, "jump at {pc} targets invalid index {target}")
            }
            VerifyError::StackUnderflow { pc } => write!(f, "stack underflow at {pc}"),
            VerifyError::StackOverflow { pc } => write!(f, "stack overflow at {pc}"),
            VerifyError::InconsistentStack {
                pc,
                expected,
                found,
            } => {
                write!(
                    f,
                    "inconsistent stack height at {pc}: {expected} vs {found}"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// A program that passed verification; the only thing the interpreter runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedProgram {
    program: Program,
    max_stack: u32,
}

impl VerifiedProgram {
    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The proven maximum operand-stack height.
    pub fn max_stack(&self) -> u32 {
        self.max_stack
    }

    /// Consumes the proof, returning the raw program.
    pub fn into_inner(self) -> Program {
        self.program
    }
}

/// Verifies a program; see the module docs for what is proven.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify(program: Program) -> Result<VerifiedProgram, VerifyError> {
    let code = program.code();
    if code.is_empty() {
        return Err(VerifyError::EmptyProgram);
    }
    if code.len() > MAX_CODE_LEN {
        return Err(VerifyError::CodeTooLong(code.len()));
    }
    if program.memory_words() > MAX_MEMORY_WORDS {
        return Err(VerifyError::MemoryTooLarge(program.memory_words()));
    }
    let end = code.len() as u32; // jumping to `end` is a clean halt
    for (pc, &instr) in code.iter().enumerate() {
        if let Instr::Jmp(t) | Instr::Jz(t) | Instr::Jnz(t) = instr {
            if t > end {
                return Err(VerifyError::InvalidJumpTarget { pc, target: t });
            }
        }
    }

    // Dataflow over stack heights. heights[pc] = Some(h) once reached.
    let mut heights: Vec<Option<u32>> = vec![None; code.len() + 1];
    heights[0] = Some(0);
    let mut worklist = vec![0usize];
    let mut max_seen = 0u32;
    let merge = |heights: &mut Vec<Option<u32>>,
                 worklist: &mut Vec<usize>,
                 pc: usize,
                 h: u32|
     -> Result<(), VerifyError> {
        match heights[pc] {
            None => {
                heights[pc] = Some(h);
                if pc < code.len() {
                    worklist.push(pc);
                }
                Ok(())
            }
            Some(existing) if existing == h => Ok(()),
            Some(existing) => Err(VerifyError::InconsistentStack {
                pc,
                expected: existing,
                found: h,
            }),
        }
    };
    while let Some(pc) = worklist.pop() {
        let h = heights[pc].expect("worklist entries are reached");
        let instr = code[pc];
        let (pops, pushes) = instr.stack_effect();
        if h < pops {
            return Err(VerifyError::StackUnderflow { pc });
        }
        let after = h - pops + pushes;
        if after as usize > MAX_STACK {
            return Err(VerifyError::StackOverflow { pc });
        }
        max_seen = max_seen.max(after);
        match instr {
            Instr::Halt => {}
            Instr::Jmp(t) => merge(&mut heights, &mut worklist, t as usize, after)?,
            Instr::Jz(t) | Instr::Jnz(t) => {
                merge(&mut heights, &mut worklist, t as usize, after)?;
                merge(&mut heights, &mut worklist, pc + 1, after)?;
            }
            _ => merge(&mut heights, &mut worklist, pc + 1, after)?,
        }
    }
    Ok(VerifiedProgram {
        program,
        max_stack: max_seen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use Instr::*;

    fn ok(code: Vec<Instr>) -> VerifiedProgram {
        verify(Program::new(code, 16)).expect("should verify")
    }

    #[test]
    fn straight_line_program_verifies() {
        let v = ok(vec![Push(1), Push(2), Add, Output, Halt]);
        assert_eq!(v.max_stack(), 2);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            verify(Program::new(vec![], 0)),
            Err(VerifyError::EmptyProgram)
        );
    }

    #[test]
    fn underflow_detected() {
        assert_eq!(
            verify(Program::new(vec![Pop], 0)),
            Err(VerifyError::StackUnderflow { pc: 0 })
        );
        assert_eq!(
            verify(Program::new(vec![Push(1), Add], 0)),
            Err(VerifyError::StackUnderflow { pc: 1 })
        );
    }

    #[test]
    fn jump_targets_validated() {
        assert_eq!(
            verify(Program::new(vec![Jmp(5), Halt], 0)),
            Err(VerifyError::InvalidJumpTarget { pc: 0, target: 5 })
        );
        // Jumping exactly to code.len() is a clean halt.
        assert!(verify(Program::new(vec![Jmp(2), Halt], 0)).is_ok());
    }

    #[test]
    fn loop_with_consistent_heights_verifies() {
        // i = 5; while (i != 0) i -= 1;
        let code = vec![
            Push(5), // 0: [i]
            Dup,     // 1: [i, i]
            Jz(6),   // 2: [i]
            Push(1), // 3
            Sub,     // 4: [i-1]
            Jmp(1),  // 5
            Pop,     // 6: []
            Halt,    // 7
        ];
        let v = ok(code);
        assert_eq!(v.max_stack(), 2);
    }

    #[test]
    fn inconsistent_join_heights_rejected() {
        // Path A reaches pc=3 with height 1, path B with height 2.
        let code = vec![
            Push(0), // 0: [0]
            Jz(3),   // 1: []  -> target 3 with height 0
            Push(1), // 2: [1] -> falls to 3 with height 1
            Halt,    // 3
        ];
        let err = verify(Program::new(code, 0)).unwrap_err();
        assert!(
            matches!(err, VerifyError::InconsistentStack { pc: 3, .. }),
            "{err}"
        );
    }

    #[test]
    fn overflow_detected() {
        // An unconditional self-growing loop: push inside a loop body.
        let code = vec![
            Push(1), // 0
            Jmp(0),  // 1  -> join at 0 with height 1 vs 0 → inconsistent
        ];
        // This particular shape reports as inconsistent stack, which is the
        // correct diagnosis for unbounded growth through a back-edge.
        assert!(verify(Program::new(code, 0)).is_err());
        // Direct overflow: straight-line pushes beyond MAX_STACK.
        let long = vec![Push(0); MAX_STACK + 1];
        let err = verify(Program::new(long, 0)).unwrap_err();
        assert!(matches!(err, VerifyError::StackOverflow { .. }), "{err}");
    }

    #[test]
    fn memory_limit_enforced() {
        let err = verify(Program::new(vec![Halt], MAX_MEMORY_WORDS + 1)).unwrap_err();
        assert!(matches!(err, VerifyError::MemoryTooLarge(_)));
        assert!(verify(Program::new(vec![Halt], MAX_MEMORY_WORDS)).is_ok());
    }

    #[test]
    fn code_length_limit_enforced() {
        let long = vec![Halt; MAX_CODE_LEN + 1];
        assert_eq!(
            verify(Program::new(long, 0)),
            Err(VerifyError::CodeTooLong(MAX_CODE_LEN + 1))
        );
    }

    #[test]
    fn unreachable_bad_code_is_tolerated() {
        // Dead code after Halt never executes; heights are simply not
        // computed for it. (Mirrors JVM behaviour: unreachable code is not
        // type-checked unless jumped to.)
        let code = vec![Halt, Pop, Pop, Pop];
        assert!(verify(Program::new(code, 0)).is_ok());
    }

    #[test]
    fn conditional_diamond_verifies() {
        let code = vec![
            Push(1),  // 0: [c]
            Jz(4),    // 1: []
            Push(10), // 2: [10]
            Jmp(5),   // 3
            Push(20), // 4: [20]
            Output,   // 5: []   both paths arrive with height 1
            Halt,     // 6
        ];
        assert!(verify(Program::new(code, 0)).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::InconsistentStack {
            pc: 3,
            expected: 1,
            found: 2,
        };
        assert_eq!(e.to_string(), "inconsistent stack height at 3: 1 vs 2");
    }
}
