//! Ready-made TaskVM kernels for the evaluation scenarios.
//!
//! These are the programs that actually travel through the mesh in the
//! examples, tests and experiments. They mirror the "looking around the
//! corner" perception pipeline:
//!
//! * [`grid_fuse`] — merge two occupancy grids (the helper vehicle fuses
//!   its own grid with the requester's, returning a small result instead of
//!   a raw frame),
//! * [`count_above`] — detection thresholding over a grid,
//! * [`sum_inputs`] / [`echo_inputs`] — micro-kernels for tests and the
//!   raw-data-shipping baseline,
//! * [`matmul`] — a compute-heavy kernel whose gas grows as `n³`, the knob
//!   for compute-vs-transfer trade-off experiments,
//! * [`checksum`] — FNV-1a over the inputs, used by integrity spot checks.
//!
//! All constructors return already-[verified](crate::vm::verify()) programs;
//! [`measure_gas`] reports the exact gas a kernel uses on given inputs
//! (execution is deterministic, so one measurement is authoritative).

use crate::vm::{execute, verify, Assembler, ExecLimits, Instr, VerifiedProgram};

/// Builds and verifies, panicking on programmer error (library kernels are
/// trusted to assemble).
fn build(a: Assembler, memory_words: u32) -> VerifiedProgram {
    let program = a
        .finish(memory_words)
        .expect("library kernel labels are bound");
    verify(program).expect("library kernels verify")
}

/// Sums all inputs into a single output word.
pub fn sum_inputs() -> VerifiedProgram {
    let mut a = Assembler::new();
    let (top, done) = (a.new_label(), a.new_label());
    a.bind(top);
    a.load_var(1);
    a.emit(Instr::InputLen);
    a.emit(Instr::Ge);
    a.jnz(done);
    a.load_var(0);
    a.load_var(1);
    a.emit(Instr::Input);
    a.emit(Instr::Add);
    a.store_var(0);
    a.incr_var(1);
    a.jmp(top);
    a.bind(done);
    a.load_var(0);
    a.emit(Instr::Output);
    build(a, 2)
}

/// Copies every input word to the output stream (the "ship the raw data"
/// kernel used by baselines).
pub fn echo_inputs() -> VerifiedProgram {
    let mut a = Assembler::new();
    let (top, done) = (a.new_label(), a.new_label());
    a.bind(top);
    a.load_var(0);
    a.emit(Instr::InputLen);
    a.emit(Instr::Ge);
    a.jnz(done);
    a.load_var(0);
    a.emit(Instr::Input);
    a.emit(Instr::Output);
    a.incr_var(0);
    a.jmp(top);
    a.bind(done);
    build(a, 1)
}

/// Cell-wise max of two occupancy grids of `cells` words each.
///
/// Inputs: grid A (`cells` words) followed by grid B (`cells` words).
/// Outputs: the fused grid (`cells` words).
///
/// # Panics
///
/// Panics if `cells` is zero.
pub fn grid_fuse(cells: u32) -> VerifiedProgram {
    assert!(cells > 0, "grid must have at least one cell");
    let mut a = Assembler::new();
    let (top, done) = (a.new_label(), a.new_label());
    a.bind(top);
    a.load_var(0);
    a.push(cells as i64);
    a.emit(Instr::Ge);
    a.jnz(done);
    a.load_var(0);
    a.emit(Instr::Input); // A[i]
    a.load_var(0);
    a.push(cells as i64);
    a.emit(Instr::Add);
    a.emit(Instr::Input); // B[i]
    a.emit(Instr::Max);
    a.emit(Instr::Output);
    a.incr_var(0);
    a.jmp(top);
    a.bind(done);
    build(a, 1)
}

/// Counts input cells with value ≥ `threshold`; one output word.
pub fn count_above(threshold: i64) -> VerifiedProgram {
    let mut a = Assembler::new();
    let (top, skip, done) = (a.new_label(), a.new_label(), a.new_label());
    a.bind(top);
    a.load_var(0);
    a.emit(Instr::InputLen);
    a.emit(Instr::Ge);
    a.jnz(done);
    a.load_var(0);
    a.emit(Instr::Input);
    a.push(threshold);
    a.emit(Instr::Ge);
    a.jz(skip);
    a.incr_var(1);
    a.bind(skip);
    a.incr_var(0);
    a.jmp(top);
    a.bind(done);
    a.load_var(1);
    a.emit(Instr::Output);
    build(a, 2)
}

/// `n × n` integer matrix multiply: inputs are A then B row-major (`2n²`
/// words); outputs are C row-major (`n²` words). Gas grows as `n³`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn matmul(n: u32) -> VerifiedProgram {
    assert!(n > 0, "matrix dimension must be positive");
    let n = n as i64;
    // Memory variables: 0 = i, 1 = j, 2 = k, 3 = acc.
    let mut a = Assembler::new();
    let (li, lj, lk) = (a.new_label(), a.new_label(), a.new_label());
    let (emit, j_next, i_next, done) = (a.new_label(), a.new_label(), a.new_label(), a.new_label());

    a.bind(li);
    a.load_var(0);
    a.push(n);
    a.emit(Instr::Ge);
    a.jnz(done);
    a.set_var(1, 0);

    a.bind(lj);
    a.load_var(1);
    a.push(n);
    a.emit(Instr::Ge);
    a.jnz(i_next);
    a.set_var(2, 0);
    a.set_var(3, 0);

    a.bind(lk);
    a.load_var(2);
    a.push(n);
    a.emit(Instr::Ge);
    a.jnz(emit);
    // acc += A[i*n + k] * B[n*n + k*n + j]
    a.load_var(3);
    a.load_var(0);
    a.push(n);
    a.emit(Instr::Mul);
    a.load_var(2);
    a.emit(Instr::Add);
    a.emit(Instr::Input); // A[i*n+k]
    a.load_var(2);
    a.push(n);
    a.emit(Instr::Mul);
    a.load_var(1);
    a.emit(Instr::Add);
    a.push(n * n);
    a.emit(Instr::Add);
    a.emit(Instr::Input); // B[k*n+j]
    a.emit(Instr::Mul);
    a.emit(Instr::Add);
    a.store_var(3);
    a.incr_var(2);
    a.jmp(lk);

    a.bind(emit);
    a.load_var(3);
    a.emit(Instr::Output);
    a.jmp(j_next);

    a.bind(j_next);
    a.incr_var(1);
    a.jmp(lj);

    a.bind(i_next);
    a.incr_var(0);
    a.jmp(li);

    a.bind(done);
    build(a, 4)
}

/// A calibrated-cost perception kernel: `rounds` FNV passes over the
/// inputs (the "inference" work), then echoes the inputs (the derived
/// artefact). Gas grows as `rounds × inputs`, which lets experiments dial
/// realistic compute loads onto executors without changing the result.
pub fn burn_and_echo(rounds: u32) -> VerifiedProgram {
    const FNV_PRIME: i64 = 0x100000001b3;
    // mem[0] = round counter, mem[1] = index, mem[2] = hash accumulator.
    let mut a = Assembler::new();
    let (outer, outer_done) = (a.new_label(), a.new_label());
    let (inner, inner_done) = (a.new_label(), a.new_label());
    a.bind(outer);
    a.load_var(0);
    a.push(rounds as i64);
    a.emit(Instr::Ge);
    a.jnz(outer_done);
    a.set_var(1, 0);
    a.bind(inner);
    a.load_var(1);
    a.emit(Instr::InputLen);
    a.emit(Instr::Ge);
    a.jnz(inner_done);
    a.load_var(2);
    a.load_var(1);
    a.emit(Instr::Input);
    a.emit(Instr::Xor);
    a.push(FNV_PRIME);
    a.emit(Instr::Mul);
    a.store_var(2);
    a.incr_var(1);
    a.jmp(inner);
    a.bind(inner_done);
    a.incr_var(0);
    a.jmp(outer);
    a.bind(outer_done);
    // Echo the inputs as the result.
    let (echo, echo_done) = (a.new_label(), a.new_label());
    a.set_var(1, 0);
    a.bind(echo);
    a.load_var(1);
    a.emit(Instr::InputLen);
    a.emit(Instr::Ge);
    a.jnz(echo_done);
    a.load_var(1);
    a.emit(Instr::Input);
    a.emit(Instr::Output);
    a.incr_var(1);
    a.jmp(echo);
    a.bind(echo_done);
    build(a, 3)
}

/// FNV-1a hash over the input words; one output word. Used for integrity
/// spot checks (a challenger can re-run it over claimed data).
pub fn checksum() -> VerifiedProgram {
    const FNV_OFFSET: i64 = 0xcbf29ce484222325u64 as i64;
    const FNV_PRIME: i64 = 0x100000001b3;
    let mut a = Assembler::new();
    let (top, done) = (a.new_label(), a.new_label());
    a.set_var(1, FNV_OFFSET);
    a.bind(top);
    a.load_var(0);
    a.emit(Instr::InputLen);
    a.emit(Instr::Ge);
    a.jnz(done);
    a.load_var(1);
    a.load_var(0);
    a.emit(Instr::Input);
    a.emit(Instr::Xor);
    a.push(FNV_PRIME);
    a.emit(Instr::Mul);
    a.store_var(1);
    a.incr_var(0);
    a.jmp(top);
    a.bind(done);
    a.load_var(1);
    a.emit(Instr::Output);
    build(a, 2)
}

/// Exact gas the kernel consumes on `inputs` (deterministic, so this is
/// authoritative for budgeting).
///
/// # Panics
///
/// Panics if the kernel traps on these inputs.
pub fn measure_gas(program: &VerifiedProgram, inputs: &[i64]) -> u64 {
    execute(
        program,
        inputs,
        ExecLimits {
            max_gas: u64::MAX / 2,
            max_outputs: usize::MAX >> 1,
        },
    )
    .expect("measurement inputs must not trap")
    .gas_used
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::ExecLimits;

    fn run(p: &VerifiedProgram, inputs: &[i64]) -> Vec<i64> {
        execute(p, inputs, ExecLimits::default())
            .expect("no traps")
            .outputs
    }

    #[test]
    fn sum_inputs_works() {
        let p = sum_inputs();
        assert_eq!(run(&p, &[1, 2, 3, 4]), vec![10]);
        assert_eq!(run(&p, &[]), vec![0]);
        assert_eq!(run(&p, &[-5, 5]), vec![0]);
    }

    #[test]
    fn echo_round_trips() {
        let p = echo_inputs();
        assert_eq!(run(&p, &[9, 8, 7]), vec![9, 8, 7]);
        assert_eq!(run(&p, &[]), Vec::<i64>::new());
    }

    #[test]
    fn grid_fuse_takes_cellwise_max() {
        let p = grid_fuse(4);
        assert_eq!(run(&p, &[1, 0, 5, 0, 0, 2, 3, 9]), vec![1, 2, 5, 9]);
        // Symmetric.
        assert_eq!(run(&p, &[0, 2, 3, 9, 1, 0, 5, 0]), vec![1, 2, 5, 9]);
    }

    #[test]
    fn count_above_threshold() {
        let p = count_above(50);
        assert_eq!(run(&p, &[10, 50, 90, 49, 51]), vec![3]);
        assert_eq!(run(&p, &[]), vec![0]);
    }

    #[test]
    fn matmul_identity() {
        let p = matmul(2);
        // A = I, B = [[1,2],[3,4]] → C = B
        let inputs = [1, 0, 0, 1, 1, 2, 3, 4];
        assert_eq!(run(&p, &inputs), vec![1, 2, 3, 4]);
    }

    #[test]
    fn matmul_known_product() {
        let p = matmul(2);
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] → [[19,22],[43,50]]
        let inputs = [1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(run(&p, &inputs), vec![19, 22, 43, 50]);
    }

    #[test]
    fn matmul_3x3() {
        let p = matmul(3);
        let a = [1, 0, 2, 0, 1, 0, 0, 0, 1]; // upper-triangular-ish
        let b = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        let inputs: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        // C = A*B computed by hand.
        assert_eq!(run(&p, &inputs), vec![15, 18, 21, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn matmul_gas_grows_cubically() {
        let g4 = measure_gas(&matmul(4), &vec![1; 32]);
        let g8 = measure_gas(&matmul(8), &vec![1; 128]);
        let ratio = g8 as f64 / g4 as f64;
        assert!((6.0..12.0).contains(&ratio), "≈8× expected, got {ratio}");
    }

    #[test]
    fn checksum_discriminates_and_is_stable() {
        let p = checksum();
        let a = run(&p, &[1, 2, 3]);
        let b = run(&p, &[1, 2, 3]);
        let c = run(&p, &[1, 2, 4]);
        let d = run(&p, &[2, 1, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d, "order must matter");
    }

    #[test]
    fn burn_and_echo_burns_then_echoes() {
        let p = burn_and_echo(10);
        assert_eq!(
            run(&p, &[7, 8, 9]),
            vec![7, 8, 9],
            "result is the echoed input"
        );
        let cheap = measure_gas(&burn_and_echo(10), &[1; 32]);
        let pricey = measure_gas(&burn_and_echo(100), &[1; 32]);
        let ratio = pricey as f64 / cheap as f64;
        assert!(ratio > 5.0, "gas must scale with rounds, got {ratio}");
        // Zero rounds degenerates to echo.
        assert_eq!(run(&burn_and_echo(0), &[5]), vec![5]);
    }

    #[test]
    fn fuse_gas_linear_in_cells() {
        let g100 = measure_gas(&grid_fuse(100), &vec![0; 200]);
        let g200 = measure_gas(&grid_fuse(200), &vec![0; 400]);
        let ratio = g200 as f64 / g100 as f64;
        assert!((1.8..2.2).contains(&ratio), "≈2× expected, got {ratio}");
    }
}
