//! # airdnd-task — Model 2: the Task Description
//!
//! The paper's Model 2 demands a task representation that is "formal and
//! abstract in a way that it could work on the receiving node". Opaque
//! closures cannot be shipped between heterogeneous nodes, so this crate
//! makes offloading *real*: tasks are programs for **TaskVM**, a small
//! verified, gas-metered stack machine. A receiving node can
//!
//! 1. statically [`verify`](vm::verify()) the program (type/stack safety,
//!    bounded memory, valid jumps) — the feasibility half of RQ3,
//! 2. bound its cost via the declared [`ResourceRequirements`] and the gas
//!    meter, and
//! 3. [`execute`](vm::execute) it against locally held data without
//!    trusting the sender.
//!
//! The crate also provides:
//!
//! * [`spec`] — declarative task metadata: resource requirements, deadline,
//!   priority and the Model-3 [`DataQuery`](airdnd_data::DataQuery) inputs,
//! * [`vm`] — ISA, assembler, verifier and interpreter,
//! * [`library`] — ready-made perception kernels (occupancy-grid fusion,
//!   detection thresholding, matrix multiply, checksums) used by examples
//!   and benchmarks,
//! * [`graph`] — task DAGs for multi-stage pipelines,
//! * [`wire`] — a checksummed binary wire format for programs and specs.
//!
//! ## Example
//!
//! ```
//! use airdnd_task::vm::{execute, ExecLimits};
//! use airdnd_task::library;
//!
//! // Fuse two 4-cell occupancy grids on the "receiving node".
//! let program = library::grid_fuse(4);
//! let inputs = [1, 0, 5, 0, /* grid B */ 0, 2, 3, 9];
//! let out = execute(&program, &inputs, ExecLimits::default())?;
//! assert_eq!(out.outputs, vec![1, 2, 5, 9]);
//! # Ok::<(), airdnd_task::vm::Trap>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod library;
pub mod spec;
pub mod vm;
pub mod wire;

pub use graph::{StageId, TaskGraph};
pub use spec::{Priority, ResourceRequirements, TaskId, TaskSpec};
pub use vm::{Instr, Program, VerifiedProgram};
