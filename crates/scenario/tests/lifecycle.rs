//! End-to-end tests of the dynamic fleet lifecycle and multi-ego demand:
//! the driver must apply scheduled spawns/despawns at tick boundaries
//! without ever panicking (even when the departing vehicle holds in-flight
//! tasks), churn must be trace-visible, a zero-churn schedule must
//! reproduce the static-fleet run byte for byte, and extra query origins
//! must issue their own task streams over their own derived grids.

use airdnd_scenario::{
    run_scenario, run_scenario_in, run_scenario_in_observed, EgoRoute, EventKind, FleetAction,
    FleetEvent, FleetSchedule, ScenarioConfig, Strategy, TelemetryOptions, WorldInstance,
};
use airdnd_sim::SimDuration;

fn quick_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        vehicles: 8,
        duration: SimDuration::from_secs(20),
        strategy: Strategy::Airdnd,
        ..Default::default()
    }
}

/// A schedule that keeps arriving and departing through the run, with a
/// mix of graceful and abrupt departures.
fn busy_schedule() -> FleetSchedule {
    let mut events = Vec::new();
    for k in 0..6u32 {
        events.push(FleetEvent {
            at_s: 2.0 + 3.0 * f64::from(k),
            action: FleetAction::Spawn { arm: k as usize },
        });
        events.push(FleetEvent {
            at_s: 3.5 + 3.0 * f64::from(k),
            action: FleetAction::Despawn {
                graceful: k % 2 == 0,
            },
        });
    }
    FleetSchedule::new(events)
}

/// Churn genuinely changes mesh membership mid-run — every scheduled
/// event applies, the fleet keeps serving perception tasks, and the run
/// never panics even though departing vehicles hold in-flight work.
#[test]
fn churn_applies_every_event_and_keeps_serving() {
    let cfg = quick_cfg(11);
    let mut world = WorldInstance::canonical(&cfg);
    world.schedule = busy_schedule();
    let report = run_scenario_in(world, cfg);
    assert_eq!(report.lifecycle_spawns, 6);
    assert_eq!(report.lifecycle_despawns, 6);
    // Spawns and despawns balance, so the population ends where it began.
    assert_eq!(report.vehicles, 8);
    assert!(report.tasks_submitted > 10, "{}", report.tasks_submitted);
    assert!(
        report.completion_rate > 0.3,
        "churned fleet must still serve: {}",
        report.completion_rate
    );
    // The mesh observed the turnover: more joins than a static 8-vehicle
    // run needs, and real leaves.
    assert!(report.leaves > 0, "departures must be observed as leaves");
}

/// Despawning a task-holding vehicle is trace-visible and safe: the event
/// log records every lifecycle flavour as a typed event, matchable without
/// string grepping.
#[test]
fn churn_is_trace_visible() {
    let cfg = quick_cfg(13);
    let mut world = WorldInstance::canonical(&cfg);
    world.schedule = busy_schedule();
    let (report, telemetry) = run_scenario_in_observed(world, cfg, TelemetryOptions::events(4_000));
    assert!(report.lifecycle_despawns > 0);
    let log = &telemetry.events;
    assert!(
        log.query()
            .matching(|r| matches!(r.event.kind, EventKind::LifecycleSpawn { .. }))
            .exists(),
        "spawns must be trace-visible"
    );
    assert!(
        log.query()
            .matching(|r| matches!(
                r.event.kind,
                EventKind::LifecycleDespawn { graceful: true, .. }
            ))
            .exists()
            && log
                .query()
                .matching(|r| matches!(
                    r.event.kind,
                    EventKind::LifecycleDespawn {
                        graceful: false,
                        ..
                    }
                ))
                .exists(),
        "both departure flavours must be trace-visible"
    );
    // The typed log agrees with the report's aggregate counters.
    assert_eq!(
        log.query()
            .matching(|r| matches!(r.event.kind, EventKind::LifecycleDespawn { .. }))
            .count(),
        report.lifecycle_despawns as usize
    );
}

/// Causal ordering the mesh protocol guarantees: no task can be offered
/// to an executor before any node has joined the mesh. The matcher pins
/// it over the global record sequence instead of eyeballing a trace dump.
#[test]
fn first_join_precedes_first_offload() {
    let cfg = quick_cfg(13);
    let (report, telemetry) =
        airdnd_scenario::run_scenario_observed(cfg, TelemetryOptions::events(65_536));
    assert!(report.tasks_completed > 0);
    let log = &telemetry.events;
    let joins = log
        .query()
        .matching(|r| matches!(r.event.kind, EventKind::MeshJoin { .. }));
    let offloads = log
        .query()
        .matching(|r| matches!(r.event.kind, EventKind::TaskOffload { .. }));
    assert!(joins.exists(), "a mesh must form");
    assert!(offloads.exists(), "tasks must be offered");
    assert!(
        joins.precedes(&offloads),
        "the mesh must form before the first task is offered"
    );
}

/// An abrupt departure never announces itself: the mesh only finds out
/// when the departed node's lease expires, so a mesh leave must be
/// recorded at or after the despawn — never before the first one.
#[test]
fn abrupt_despawn_surfaces_as_lease_expiry_leave() {
    let cfg = quick_cfg(13);
    let mut world = WorldInstance::canonical(&cfg);
    world.schedule = busy_schedule();
    let (report, telemetry) =
        run_scenario_in_observed(world, cfg, TelemetryOptions::events(65_536));
    assert!(report.leaves > 0, "departures must be observed as leaves");
    let log = &telemetry.events;
    let abrupt = log.query().matching(|r| {
        matches!(
            r.event.kind,
            EventKind::LifecycleDespawn {
                graceful: false,
                ..
            }
        )
    });
    assert!(abrupt.exists(), "the schedule mixes in abrupt departures");
    let at = abrupt.first().expect("exists").event.time;
    let leaves_after = log
        .query()
        .since(at)
        .matching(|r| matches!(r.event.kind, EventKind::MeshLeave { .. }));
    assert!(
        leaves_after.exists(),
        "an abrupt departure must surface as a lease-expiry mesh leave"
    );
    assert!(
        abrupt.precedes(&leaves_after),
        "the despawn is the cause; the observed leave follows it"
    );
}

/// The regression pin: an explicitly attached zero-churn schedule (and no
/// extra egos) reproduces the plain static-fleet run byte for byte.
#[test]
fn zero_churn_single_ego_reproduces_the_static_run() {
    let cfg = quick_cfg(17);
    let plain = run_scenario(cfg);
    let mut world = WorldInstance::canonical(&cfg);
    world.schedule = FleetSchedule::new(Vec::new());
    world.extra_egos = Vec::new();
    let scheduled = run_scenario_in(world, cfg);
    assert_eq!(
        serde_json::to_string(&plain).expect("serializes"),
        serde_json::to_string(&scheduled).expect("serializes"),
        "an empty schedule must be the static fleet, byte for byte"
    );
    assert_eq!(plain.lifecycle_spawns, 0);
    assert_eq!(plain.egos, 1);
}

/// Mid-run arrivals draw the same byzantine lottery the initial fleet
/// did: despawn the only initial helper, let every later helper be an
/// arrival, and corrupt results must still show up.
#[test]
fn spawned_helpers_are_byzantine_like_the_initial_fleet() {
    let cfg = ScenarioConfig {
        seed: 31,
        vehicles: 2, // ego + one initial helper
        byzantine_fraction: 1.0,
        duration: SimDuration::from_secs(25),
        strategy: Strategy::Airdnd,
        ..Default::default()
    };
    let mut world = WorldInstance::canonical(&cfg);
    let mut events = vec![FleetEvent {
        at_s: 1.0,
        action: FleetAction::Despawn { graceful: true },
    }];
    for k in 0..4u32 {
        events.push(FleetEvent {
            at_s: 1.5 + 0.5 * f64::from(k),
            action: FleetAction::Spawn { arm: k as usize },
        });
    }
    world.schedule = FleetSchedule::new(events);
    let report = run_scenario_in(world, cfg);
    assert_eq!(report.lifecycle_despawns, 1);
    assert_eq!(report.lifecycle_spawns, 4);
    assert!(
        report.tasks_completed > 0,
        "the arrivals must form a working mesh"
    );
    assert!(
        report.invalid_results_accepted > 0,
        "every helper is an arrival and every arrival is byzantine — \
         corrupt results must surface"
    );
}

/// Churn runs stay deterministic per seed and distinct across seeds.
#[test]
fn churned_runs_are_seed_deterministic() {
    let run = |seed: u64| {
        let cfg = quick_cfg(seed);
        let mut world = WorldInstance::canonical(&cfg);
        world.schedule = busy_schedule();
        serde_json::to_string(&run_scenario_in(world, cfg)).expect("serializes")
    };
    assert_eq!(run(19), run(19));
    assert_ne!(run(19), run(20));
}

/// Two concurrent query origins: the extra ego derives its own corridor
/// from its own approach, issues its own task stream, and the combined
/// run still completes views.
#[test]
fn multi_ego_issues_concurrent_task_streams() {
    let cfg = quick_cfg(23);
    let single = run_scenario(cfg);
    let mut world = WorldInstance::canonical(&cfg);
    world.extra_egos = vec![EgoRoute {
        arm: 1,
        goal_arm: 3,
    }];
    let multi = run_scenario_in(world, cfg);
    assert_eq!(multi.egos, 2);
    assert!(
        multi.tasks_submitted > single.tasks_submitted,
        "a second origin must add demand: {} vs {}",
        multi.tasks_submitted,
        single.tasks_submitted
    );
    assert!(
        multi.tasks_completed > 0,
        "multi-ego runs must still complete views"
    );
}

/// Multi-ego and churn compose: egos are protected from despawn, so every
/// origin keeps querying to the end of the run.
#[test]
fn multi_ego_survives_churn() {
    let cfg = quick_cfg(29);
    let mut world = WorldInstance::canonical(&cfg);
    world.extra_egos = vec![
        EgoRoute {
            arm: 1,
            goal_arm: 3,
        },
        EgoRoute {
            arm: 2,
            goal_arm: 0,
        },
    ];
    world.schedule = busy_schedule();
    let report = run_scenario_in(world, cfg);
    assert_eq!(report.egos, 3);
    assert_eq!(report.lifecycle_despawns, 6);
    assert!(report.tasks_submitted > 20, "{}", report.tasks_submitted);
}
