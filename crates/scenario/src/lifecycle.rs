//! The dynamic fleet lifecycle: scheduled mid-run membership change.
//!
//! AirDnD's geographical mesh is *dynamic*: vehicles drive into radio
//! range, serve tasks for a while, and drive out again. A
//! [`FleetSchedule`] makes that churn real instead of simulated-by-sweep:
//! it is a deterministic, pre-computed list of [`FleetEvent`]s — spawn a
//! new vehicle at a portal, or despawn an existing one (gracefully, with a
//! mesh `Leave`, or abruptly, dropping every in-flight frame and task
//! result) — that the scenario driver applies at tick boundaries.
//!
//! The schedule is pure data (it rides inside
//! [`WorldInstance`](crate::WorldInstance) and serializes into sweep
//! configs), so generated workloads with churn shard and merge through the
//! harness unchanged. An empty schedule is the static-fleet special case:
//! the driver touches nothing, byte for byte.

use serde::{Deserialize, Serialize};

/// What a [`FleetEvent`] does to the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FleetAction {
    /// A new mobile vehicle enters the map from the given portal arm
    /// (wrapped modulo the map's arm count at apply time).
    Spawn {
        /// Portal arm the vehicle enters from.
        arm: usize,
    },
    /// The oldest eligible mobile vehicle (never the ego, never a parked
    /// anchor, never an extra query origin) leaves the map.
    Despawn {
        /// `true` sends a mesh `Leave` to every member first; `false` is
        /// an abrupt drop — in-flight frames and task results are lost
        /// and peers only notice via lease expiry.
        graceful: bool,
    },
}

/// One scheduled fleet-membership change.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// When the event fires, seconds of simulated time. The driver applies
    /// it at the first tick boundary at or after this instant.
    pub at_s: f64,
    /// What happens.
    pub action: FleetAction,
}

/// A time-sorted list of [`FleetEvent`]s. The default (empty) schedule
/// reproduces the static fleet exactly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetSchedule {
    /// The events, sorted by [`FleetEvent::at_s`].
    pub events: Vec<FleetEvent>,
}

impl FleetSchedule {
    /// Builds a schedule, sorting the events by time (stable, so
    /// same-instant events keep their construction order).
    pub fn new(mut events: Vec<FleetEvent>) -> Self {
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        FleetSchedule { events }
    }

    /// `true` when the schedule holds no events (the static-fleet case).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Count of spawn events.
    pub fn spawn_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Spawn { .. }))
            .count()
    }

    /// Count of despawn events.
    pub fn despawn_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Despawn { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_by_time() {
        let schedule = FleetSchedule::new(vec![
            FleetEvent {
                at_s: 9.0,
                action: FleetAction::Despawn { graceful: true },
            },
            FleetEvent {
                at_s: 3.0,
                action: FleetAction::Spawn { arm: 1 },
            },
            FleetEvent {
                at_s: 6.0,
                action: FleetAction::Spawn { arm: 0 },
            },
        ]);
        let times: Vec<f64> = schedule.events.iter().map(|e| e.at_s).collect();
        assert_eq!(times, [3.0, 6.0, 9.0]);
        assert_eq!(schedule.spawn_count(), 2);
        assert_eq!(schedule.despawn_count(), 1);
        assert_eq!(schedule.len(), 3);
        assert!(!schedule.is_empty());
    }

    #[test]
    fn default_is_the_static_fleet() {
        let schedule = FleetSchedule::default();
        assert!(schedule.is_empty());
        assert_eq!(schedule.spawn_count(), 0);
        assert_eq!(schedule.despawn_count(), 0);
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let schedule = FleetSchedule::new(vec![
            FleetEvent {
                at_s: 2.5,
                action: FleetAction::Spawn { arm: 2 },
            },
            FleetEvent {
                at_s: 7.25,
                action: FleetAction::Despawn { graceful: false },
            },
        ]);
        let json = serde_json::to_string(&schedule).expect("serializes");
        let back: FleetSchedule = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, schedule);
    }
}
