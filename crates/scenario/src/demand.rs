//! Spatially and temporally varying perception-demand patterns.
//!
//! The canonical scenario issues a perception task on a fixed period
//! ([`DemandProfile::Steady`]). Generated scenarios stress the
//! orchestration layer with non-uniform demand: rush-hour ramps (the
//! period tightens inside a peak window), bursty query trains, and a
//! spatial hotspot (the ego queries densely only near a location of
//! interest). All profiles are pure functions of `(tick, config,
//! position)` — no RNG — so they preserve the determinism contract.

use airdnd_geo::Vec2;
use serde::{Deserialize, Serialize};

/// When the ego issues perception tasks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DemandProfile {
    /// One task every `task_every_ticks` ticks — the canonical pattern.
    Steady,
    /// Rush hour: inside the peak window (fractions of the simulated
    /// duration) the period divides by `peak_divisor`.
    RushHour {
        /// Peak start as a fraction of the run, in `[0, 1]`.
        peak_start: f64,
        /// Peak end as a fraction of the run, in `[0, 1]`.
        peak_end: f64,
        /// Period divisor inside the peak (≥ 1).
        peak_divisor: u32,
    },
    /// Query trains: every tick for `burst_ticks`, then silence for
    /// `idle_ticks`.
    Bursty {
        /// Ticks of back-to-back queries per cycle.
        burst_ticks: u32,
        /// Quiet ticks per cycle.
        idle_ticks: u32,
    },
    /// Spatial hotspot: the base period applies within `radius` metres of
    /// `(x, y)`; elsewhere it stretches by `cold_multiplier`.
    Hotspot {
        /// Hotspot centre x, metres.
        x: f64,
        /// Hotspot centre y, metres.
        y: f64,
        /// Hotspot radius, metres.
        radius: f64,
        /// Period multiplier outside the hotspot (≥ 1).
        cold_multiplier: u32,
    },
}

impl DemandProfile {
    /// Table label for sweep axes.
    pub fn label(&self) -> &'static str {
        match self {
            DemandProfile::Steady => "steady",
            DemandProfile::RushHour { .. } => "rush-hour",
            DemandProfile::Bursty { .. } => "bursty",
            DemandProfile::Hotspot { .. } => "hotspot",
        }
    }

    /// Whether a task is due at `tick`. `every` is the configured base
    /// period in ticks, `progress` the fraction of the run elapsed, and
    /// `ego_pos` the ego's position. The first 10 ticks are always a
    /// warm-up (mesh formation), matching the historical behaviour.
    pub fn due(&self, tick: u64, every: u32, progress: f64, ego_pos: Vec2) -> bool {
        if tick <= 10 {
            return false;
        }
        let every = u64::from(every.max(1));
        match *self {
            DemandProfile::Steady => tick.is_multiple_of(every),
            DemandProfile::RushHour {
                peak_start,
                peak_end,
                peak_divisor,
            } => {
                let period = if progress >= peak_start && progress < peak_end {
                    (every / u64::from(peak_divisor.max(1))).max(1)
                } else {
                    every
                };
                tick.is_multiple_of(period)
            }
            DemandProfile::Bursty {
                burst_ticks,
                idle_ticks,
            } => {
                let cycle = u64::from(burst_ticks.max(1)) + u64::from(idle_ticks);
                tick % cycle < u64::from(burst_ticks.max(1))
            }
            DemandProfile::Hotspot {
                x,
                y,
                radius,
                cold_multiplier,
            } => {
                let period = if ego_pos.distance(Vec2::new(x, y)) <= radius {
                    every
                } else {
                    every * u64::from(cold_multiplier.max(1))
                };
                tick.is_multiple_of(period)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_matches_the_historical_pattern() {
        let d = DemandProfile::Steady;
        for tick in 0..200u64 {
            let legacy = tick % 5 == 0 && tick > 10;
            assert_eq!(d.due(tick, 5, 0.0, Vec2::ZERO), legacy, "tick {tick}");
        }
    }

    #[test]
    fn rush_hour_tightens_inside_the_peak() {
        let d = DemandProfile::RushHour {
            peak_start: 0.4,
            peak_end: 0.6,
            peak_divisor: 5,
        };
        // Off-peak: base period 10.
        assert!(!d.due(15, 10, 0.1, Vec2::ZERO));
        assert!(d.due(20, 10, 0.1, Vec2::ZERO));
        // Peak: every 2 ticks.
        assert!(d.due(50, 10, 0.5, Vec2::ZERO));
        assert!(d.due(52, 10, 0.5, Vec2::ZERO));
        assert!(!d.due(51, 10, 0.5, Vec2::ZERO));
    }

    #[test]
    fn bursts_alternate_with_silence() {
        let d = DemandProfile::Bursty {
            burst_ticks: 3,
            idle_ticks: 7,
        };
        // Cycle of 10: ticks 20..23 fire, 23..30 silent.
        assert!(d.due(20, 5, 0.0, Vec2::ZERO));
        assert!(d.due(22, 5, 0.0, Vec2::ZERO));
        assert!(!d.due(23, 5, 0.0, Vec2::ZERO));
        assert!(!d.due(29, 5, 0.0, Vec2::ZERO));
        assert!(d.due(30, 5, 0.0, Vec2::ZERO));
    }

    #[test]
    fn hotspot_stretches_the_cold_period() {
        let d = DemandProfile::Hotspot {
            x: 0.0,
            y: 0.0,
            radius: 50.0,
            cold_multiplier: 4,
        };
        let near = Vec2::new(10.0, 0.0);
        let far = Vec2::new(500.0, 0.0);
        assert!(d.due(15, 5, 0.0, near));
        assert!(!d.due(15, 5, 0.0, far));
        assert!(d.due(20, 5, 0.0, far));
    }

    #[test]
    fn warmup_always_quiet() {
        for profile in [
            DemandProfile::Steady,
            DemandProfile::Bursty {
                burst_ticks: 5,
                idle_ticks: 0,
            },
        ] {
            for tick in 0..=10 {
                assert!(!profile.due(tick, 1, 0.0, Vec2::ZERO));
            }
        }
    }
}
