//! The physical stage: intersection, corner buildings, hidden region.

use airdnd_geo::{Aabb, RoadNetwork, Vec2, World};
use serde::{Deserialize, Serialize};

/// The static world of the looking-around-the-corner scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioWorld {
    /// The road graph (four-way intersection at the origin).
    pub net: RoadNetwork,
    /// Obstacles (four corner buildings).
    pub world: World,
    /// The region an ego approaching from the south cannot see: a corridor
    /// along the east arm, behind the south-east corner building.
    pub hidden_region: Aabb,
    /// Grid cell size over the hidden region, metres.
    pub cell_size: f64,
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
}

impl ScenarioWorld {
    /// Builds the canonical stage.
    ///
    /// `arm_length` sizes the intersection; buildings of `building_size`
    /// sit `building_setback` metres from the road centrelines.
    pub fn build(
        arm_length: f64,
        speed_limit: f64,
        building_setback: f64,
        building_size: f64,
    ) -> Self {
        let net = RoadNetwork::four_way_intersection(arm_length, speed_limit);
        let world = World::corner_buildings(building_setback, building_size);
        let hidden_region = Aabb::new(
            Vec2::new(building_setback + 10.0, -8.0),
            Vec2::new((building_setback + 10.0 + 100.0).min(arm_length), 8.0),
        );
        let cell_size = 5.0;
        let cols = (hidden_region.width() / cell_size).ceil() as usize;
        let rows = (hidden_region.height() / cell_size).ceil() as usize;
        ScenarioWorld {
            net,
            world,
            hidden_region,
            cell_size,
            cols,
            rows,
        }
    }

    /// Number of grid cells over the hidden region.
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Centre of grid cell `(col, row)`.
    pub fn cell_center(&self, col: usize, row: usize) -> Vec2 {
        Vec2::new(
            self.hidden_region.min().x + (col as f64 + 0.5) * self.cell_size,
            self.hidden_region.min().y + (row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Grid cell containing `pos`, if inside the grid's extent (the grid
    /// may overhang the region box by up to one cell per axis).
    pub fn cell_of(&self, pos: Vec2) -> Option<usize> {
        let dx = pos.x - self.hidden_region.min().x;
        let dy = pos.y - self.hidden_region.min().y;
        if dx < 0.0 || dy < 0.0 {
            return None;
        }
        let col = (dx / self.cell_size) as usize;
        let row = (dy / self.cell_size) as usize;
        if col >= self.cols || row >= self.rows {
            return None;
        }
        Some(row * self.cols + col)
    }

    /// Rasterizes one vehicle's view of the hidden region.
    ///
    /// Cell values: `-1` = unobserved, `0` = observed and free, `1` =
    /// observed and occupied (a ground-truth agent stands in it). A cell
    /// is observed when its centre is within `sensor_range` of `pos` and
    /// line of sight is clear.
    pub fn rasterize(&self, pos: Vec2, sensor_range: f64, agents: &[Vec2]) -> Vec<i64> {
        let mut grid = vec![-1i64; self.cell_count()];
        let agent_cells: Vec<usize> = agents.iter().filter_map(|&a| self.cell_of(a)).collect();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let center = self.cell_center(col, row);
                if center.distance(pos) > sensor_range {
                    continue;
                }
                if !self.world.line_of_sight(pos, center) {
                    continue;
                }
                let idx = row * self.cols + col;
                grid[idx] = if agent_cells.contains(&idx) { 1 } else { 0 };
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> ScenarioWorld {
        ScenarioWorld::build(250.0, 13.9, 12.0, 40.0)
    }

    #[test]
    fn grid_geometry_is_consistent() {
        let w = stage();
        assert_eq!(w.cell_count(), w.cols * w.rows);
        assert!(w.cell_count() > 20, "hidden region should have a real grid");
        // Every cell centre maps back to its own index.
        for row in 0..w.rows {
            for col in 0..w.cols {
                let c = w.cell_center(col, row);
                assert_eq!(w.cell_of(c), Some(row * w.cols + col));
            }
        }
        assert_eq!(w.cell_of(Vec2::new(-500.0, 0.0)), None);
    }

    #[test]
    fn southern_ego_cannot_see_the_hidden_region() {
        let w = stage();
        let ego = Vec2::new(0.0, -60.0);
        let grid = w.rasterize(ego, 150.0, &[]);
        let observed = grid.iter().filter(|&&c| c >= 0).count();
        let frac = observed as f64 / grid.len() as f64;
        assert!(
            frac < 0.5,
            "the corner must hide most of the region, saw {frac}"
        );
    }

    #[test]
    fn eastern_helper_sees_it() {
        let w = stage();
        let helper = Vec2::new(80.0, 0.0);
        let grid = w.rasterize(helper, 150.0, &[]);
        let observed = grid.iter().filter(|&&c| c >= 0).count();
        let frac = observed as f64 / grid.len() as f64;
        assert!(
            frac > 0.6,
            "an on-arm helper sees most of the corridor, saw {frac}"
        );
    }

    #[test]
    fn agents_mark_cells_occupied() {
        let w = stage();
        let agent = Vec2::new(60.0, 0.0);
        let helper = Vec2::new(80.0, 0.0);
        let grid = w.rasterize(helper, 150.0, &[agent]);
        let idx = w.cell_of(agent).unwrap();
        assert_eq!(grid[idx], 1);
        assert!(grid.iter().filter(|&&c| c == 1).count() >= 1);
    }

    #[test]
    fn out_of_range_sensor_sees_nothing() {
        let w = stage();
        let far = Vec2::new(0.0, -240.0);
        let grid = w.rasterize(far, 50.0, &[]);
        assert!(grid.iter().all(|&c| c == -1));
    }
}
