//! The physical stage: a road network, occluders, and the *derived* hidden
//! region.
//!
//! The hidden-region grid is no longer hard-coded to the canonical corner:
//! [`ScenarioWorld::derive`] walks the ego's approach path, finds the first
//! junction where a crossing road is occluded by a building, and projects
//! the occluder onto the crossing axis to obtain the hidden corridor. The
//! canonical four-way stage built by [`ScenarioWorld::build`] goes through
//! the same derivation and reproduces the historical corridor byte for
//! byte (regression-tested below), while procedurally generated worlds
//! (`airdnd-worldgen`) get their occlusion grids for free.

use airdnd_geo::{Aabb, NodeId, ObstacleIndex, RoadNetwork, Vec2, World};
use serde::{Deserialize, Serialize};

/// Knobs of the occlusion derivation. The defaults reproduce the canonical
/// "looking around the corner" corridor exactly.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OcclusionParams {
    /// The corridor starts this many metres past the occluder's near edge
    /// (projected onto the crossing axis).
    pub margin: f64,
    /// Corridor length along the crossing axis, metres (clamped to the
    /// straight-road reach).
    pub extent: f64,
    /// Corridor half-width across the crossing axis, metres (the road
    /// half-width).
    pub half_width: f64,
    /// Line-of-sight probe distance along the crossing axis, metres.
    pub probe: f64,
    /// Grid cell size over the hidden region, metres.
    pub cell_size: f64,
}

impl Default for OcclusionParams {
    fn default() -> Self {
        OcclusionParams {
            margin: 10.0,
            extent: 100.0,
            half_width: 8.0,
            probe: 30.0,
            cell_size: 5.0,
        }
    }
}

/// The static world of the looking-around-the-corner scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioWorld {
    /// The road graph (four-way intersection at the origin).
    pub net: RoadNetwork,
    /// Obstacles (four corner buildings).
    pub world: World,
    /// The region an ego approaching from the south cannot see: a corridor
    /// along the east arm, behind the south-east corner building.
    pub hidden_region: Aabb,
    /// Grid cell size over the hidden region, metres.
    pub cell_size: f64,
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
}

impl ScenarioWorld {
    /// Builds the canonical stage.
    ///
    /// `arm_length` sizes the intersection; buildings of `building_size`
    /// sit `building_setback` metres from the road centrelines.
    /// The corridor is *derived* from the geometry ([`ScenarioWorld::derive`]);
    /// for parameter combinations where the buildings no longer occlude the
    /// crossing arm (e.g. an extreme setback), the historical hard-coded
    /// corridor is used instead, so every previously valid configuration
    /// keeps running.
    pub fn build(
        arm_length: f64,
        speed_limit: f64,
        building_setback: f64,
        building_size: f64,
    ) -> Self {
        let net = RoadNetwork::four_way_intersection(arm_length, speed_limit);
        let world = World::corner_buildings(building_setback, building_size);
        let ego_entry = net.approach_node(0);
        let goal = net.exit_node(2);
        ScenarioWorld::derive(net, world, ego_entry, goal, &OcclusionParams::default())
            .unwrap_or_else(|| {
                // Rebuild the (cheap) stage rather than cloning it up front:
                // the common path hands ownership straight to `derive`.
                let hidden_region = Aabb::new(
                    Vec2::new(building_setback + 10.0, -8.0),
                    Vec2::new((building_setback + 10.0 + 100.0).min(arm_length), 8.0),
                );
                let cell_size = 5.0;
                ScenarioWorld {
                    net: RoadNetwork::four_way_intersection(arm_length, speed_limit),
                    world: World::corner_buildings(building_setback, building_size),
                    cols: (hidden_region.width() / cell_size).ceil() as usize,
                    rows: (hidden_region.height() / cell_size).ceil() as usize,
                    hidden_region,
                    cell_size,
                }
            })
    }

    /// Derives the hidden-region grid from world geometry: walks the ego's
    /// shortest path from `ego_entry` to `goal`, and at each junction
    /// (out-degree ≥ 3) probes every crossing road for a building that
    /// blocks the ego's line of sight from the previous path node. The
    /// first occluded crossing wins; the corridor runs along that axis from
    /// `margin` metres past the occluder's near edge for `extent` metres
    /// (clamped to the straight-road reach), `half_width` to each side.
    ///
    /// Returns `None` when no path exists or no crossing is occluded —
    /// a world with free sight everywhere has nothing to look around.
    pub fn derive(
        net: RoadNetwork,
        world: World,
        ego_entry: NodeId,
        goal: NodeId,
        params: &OcclusionParams,
    ) -> Option<Self> {
        let path = net.node_path(ego_entry, goal)?;
        for pair in path.windows(2) {
            let (prev, junction) = (pair[0], pair[1]);
            if net.out_degree(junction) < 3 {
                continue;
            }
            let vantage = net.position(prev);
            let jpos = net.position(junction);
            let Some(ego_dir) = (jpos - vantage).normalized() else {
                continue;
            };
            let exits: Vec<(NodeId, f64)> = net
                .lanes_from(junction)
                .map(|(to, length, _)| (to, length))
                .collect();
            for (to, length) in exits {
                let cross_dir = match (net.position(to) - jpos).normalized() {
                    Some(d) => d,
                    None => continue,
                };
                // Skip the ego's own road and its continuation; only
                // genuinely crossing directions can hide a corridor.
                if cross_dir.dot(ego_dir).abs() > 0.7 {
                    continue;
                }
                let probe = jpos + cross_dir * params.probe.min(length);
                let Some(occluder) = world
                    .obstacles()
                    .iter()
                    .find(|o| o.blocks(vantage, probe))
                    .map(airdnd_geo::Obstacle::bounds)
                else {
                    continue;
                };
                let corners = [
                    occluder.min(),
                    Vec2::new(occluder.min().x, occluder.max().y),
                    Vec2::new(occluder.max().x, occluder.min().y),
                    occluder.max(),
                ];
                let near = corners
                    .iter()
                    .map(|&c| (c - jpos).dot(cross_dir))
                    .fold(f64::INFINITY, f64::min);
                let start = near + params.margin;
                let end = (start + params.extent).min(straight_reach(&net, junction, cross_dir));
                if end <= start {
                    continue;
                }
                let p1 = jpos + cross_dir * start;
                let p2 = jpos + cross_dir * end;
                let across = cross_dir.perp() * params.half_width;
                let hidden_region = aabb_of(&[p1 - across, p1 + across, p2 - across, p2 + across]);
                let cell_size = params.cell_size;
                let cols = (hidden_region.width() / cell_size).ceil() as usize;
                let rows = (hidden_region.height() / cell_size).ceil() as usize;
                if cols == 0 || rows == 0 {
                    continue;
                }
                return Some(ScenarioWorld {
                    net,
                    world,
                    hidden_region,
                    cell_size,
                    cols,
                    rows,
                });
            }
        }
        None
    }

    /// Number of grid cells over the hidden region.
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Centre of grid cell `(col, row)`.
    pub fn cell_center(&self, col: usize, row: usize) -> Vec2 {
        Vec2::new(
            self.hidden_region.min().x + (col as f64 + 0.5) * self.cell_size,
            self.hidden_region.min().y + (row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Grid cell containing `pos`, if inside the grid's extent (the grid
    /// may overhang the region box by up to one cell per axis).
    pub fn cell_of(&self, pos: Vec2) -> Option<usize> {
        let dx = pos.x - self.hidden_region.min().x;
        let dy = pos.y - self.hidden_region.min().y;
        if dx < 0.0 || dy < 0.0 {
            return None;
        }
        let col = (dx / self.cell_size) as usize;
        let row = (dy / self.cell_size) as usize;
        if col >= self.cols || row >= self.rows {
            return None;
        }
        Some(row * self.cols + col)
    }

    /// A line-of-sight index over this stage's world, for callers that
    /// rasterize in a loop (the runner's sensor refresh touches every
    /// vehicle × every stage, so the per-cell LOS tests inside must be
    /// O(nearby obstacles), not O(all obstacles)).
    pub fn los_index(&self) -> ObstacleIndex {
        ObstacleIndex::new(&self.world)
    }

    /// Rasterizes one vehicle's view of the hidden region.
    ///
    /// Cell values: `-1` = unobserved, `0` = observed and free, `1` =
    /// observed and occupied (a ground-truth agent stands in it). A cell
    /// is observed when its centre is within `sensor_range` of `pos` and
    /// line of sight is clear.
    pub fn rasterize(&self, pos: Vec2, sensor_range: f64, agents: &[Vec2]) -> Vec<i64> {
        self.rasterize_with(&self.los_index(), pos, sensor_range, agents)
    }

    /// [`Self::rasterize`] with a prebuilt line-of-sight index (see
    /// [`Self::los_index`]); answers are identical — the index is exact.
    pub fn rasterize_with(
        &self,
        los: &ObstacleIndex,
        pos: Vec2,
        sensor_range: f64,
        agents: &[Vec2],
    ) -> Vec<i64> {
        let mut grid = vec![-1i64; self.cell_count()];
        // City-scale early-out: every cell centre lies inside the grid's
        // extent box, so the clamped-point distance from `pos` to that
        // box lower-bounds every centre distance. When even the box is
        // out of sensor range, no per-cell test can pass — the all
        // `-1` grid is byte-identical to running them. On a map with
        // many ego corridors this makes far vehicles O(cells) writes
        // instead of O(cells) distance + line-of-sight tests.
        let min = self.hidden_region.min();
        let max = Vec2::new(
            min.x + self.cols as f64 * self.cell_size,
            min.y + self.rows as f64 * self.cell_size,
        );
        let nearest = Vec2::new(pos.x.clamp(min.x, max.x), pos.y.clamp(min.y, max.y));
        if nearest.distance(pos) > sensor_range {
            return grid;
        }
        let agent_cells: Vec<usize> = agents.iter().filter_map(|&a| self.cell_of(a)).collect();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let center = self.cell_center(col, row);
                if center.distance(pos) > sensor_range {
                    continue;
                }
                if !los.line_of_sight(pos, center) {
                    continue;
                }
                let idx = row * self.cols + col;
                grid[idx] = if agent_cells.contains(&idx) { 1 } else { 0 };
            }
        }
        grid
    }
}

/// How far the road continues straight from `junction` along `dir`:
/// follows, at every node, the outgoing lane most aligned with `dir`
/// (requiring near-collinearity) and returns the projected distance
/// reached. The corridor is clamped to this, so it never extends past the
/// pavement.
fn straight_reach(net: &RoadNetwork, junction: NodeId, dir: Vec2) -> f64 {
    let origin = net.position(junction);
    let mut current = junction;
    let mut visited = vec![junction];
    loop {
        let mut best: Option<(NodeId, f64)> = None;
        for (to, _, _) in net.lanes_from(current) {
            if visited.contains(&to) {
                continue;
            }
            let Some(d) = (net.position(to) - net.position(current)).normalized() else {
                continue;
            };
            let align = d.dot(dir);
            if align > 0.999 && best.is_none_or(|(_, b)| align > b) {
                best = Some((to, align));
            }
        }
        match best {
            Some((to, _)) => {
                visited.push(to);
                current = to;
            }
            None => return (net.position(current) - origin).dot(dir),
        }
    }
}

/// The axis-aligned bounding box of a point set.
fn aabb_of(points: &[Vec2]) -> Aabb {
    let mut min = points[0];
    let mut max = points[0];
    for &p in &points[1..] {
        min = min.min(p);
        max = max.max(p);
    }
    Aabb::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> ScenarioWorld {
        ScenarioWorld::build(250.0, 13.9, 12.0, 40.0)
    }

    /// The derivation must reproduce the historical hard-coded corner
    /// corridor *byte for byte* — the canonical stage is now just a special
    /// case of the generic geometry pass, and every committed golden
    /// artifact depends on that equivalence.
    #[test]
    fn derived_canonical_stage_matches_the_hardcoded_corridor() {
        let (arm_length, speed_limit, setback, size) = (250.0, 13.9, 12.0, 40.0);
        let derived = ScenarioWorld::build(arm_length, speed_limit, setback, size);
        // The pre-derivation literal, reproduced verbatim.
        let legacy = ScenarioWorld {
            net: RoadNetwork::four_way_intersection(arm_length, speed_limit),
            world: World::corner_buildings(setback, size),
            hidden_region: Aabb::new(
                Vec2::new(setback + 10.0, -8.0),
                Vec2::new((setback + 10.0 + 100.0).min(arm_length), 8.0),
            ),
            cell_size: 5.0,
            cols: 20,
            rows: 4,
        };
        assert_eq!(
            serde_json::to_string_pretty(&derived).expect("serializes"),
            serde_json::to_string_pretty(&legacy).expect("serializes"),
            "deriving the canonical stage must be byte-identical to the \
             hard-coded corridor"
        );
    }

    /// Extreme geometry where the buildings no longer occlude the probe
    /// still builds (falling back to the historical corridor) instead of
    /// panicking — `build` accepted these configs before derivation
    /// existed.
    #[test]
    fn build_falls_back_when_derivation_finds_no_occlusion() {
        let w = ScenarioWorld::build(250.0, 13.9, 60.0, 40.0);
        assert_eq!(w.hidden_region.min(), Vec2::new(70.0, -8.0));
        assert_eq!(w.hidden_region.max(), Vec2::new(170.0, 8.0));
        assert!(w.cell_count() > 0);
    }

    /// Worlds without occlusion derive no hidden region.
    #[test]
    fn unoccluded_world_derives_nothing() {
        let net = RoadNetwork::four_way_intersection(250.0, 13.9);
        let (a, b) = (net.approach_node(0), net.exit_node(2));
        assert!(
            ScenarioWorld::derive(net, World::new(), a, b, &OcclusionParams::default()).is_none(),
            "free sight everywhere means nothing to look around"
        );
    }

    #[test]
    fn grid_geometry_is_consistent() {
        let w = stage();
        assert_eq!(w.cell_count(), w.cols * w.rows);
        assert!(w.cell_count() > 20, "hidden region should have a real grid");
        // Every cell centre maps back to its own index.
        for row in 0..w.rows {
            for col in 0..w.cols {
                let c = w.cell_center(col, row);
                assert_eq!(w.cell_of(c), Some(row * w.cols + col));
            }
        }
        assert_eq!(w.cell_of(Vec2::new(-500.0, 0.0)), None);
    }

    #[test]
    fn southern_ego_cannot_see_the_hidden_region() {
        let w = stage();
        let ego = Vec2::new(0.0, -60.0);
        let grid = w.rasterize(ego, 150.0, &[]);
        let observed = grid.iter().filter(|&&c| c >= 0).count();
        let frac = observed as f64 / grid.len() as f64;
        assert!(
            frac < 0.5,
            "the corner must hide most of the region, saw {frac}"
        );
    }

    #[test]
    fn eastern_helper_sees_it() {
        let w = stage();
        let helper = Vec2::new(80.0, 0.0);
        let grid = w.rasterize(helper, 150.0, &[]);
        let observed = grid.iter().filter(|&&c| c >= 0).count();
        let frac = observed as f64 / grid.len() as f64;
        assert!(
            frac > 0.6,
            "an on-arm helper sees most of the corridor, saw {frac}"
        );
    }

    #[test]
    fn agents_mark_cells_occupied() {
        let w = stage();
        let agent = Vec2::new(60.0, 0.0);
        let helper = Vec2::new(80.0, 0.0);
        let grid = w.rasterize(helper, 150.0, &[agent]);
        let idx = w.cell_of(agent).unwrap();
        assert_eq!(grid[idx], 1);
        assert!(grid.iter().filter(|&&c| c == 1).count() >= 1);
    }

    #[test]
    fn out_of_range_sensor_sees_nothing() {
        let w = stage();
        let far = Vec2::new(0.0, -240.0);
        let grid = w.rasterize(far, 50.0, &[]);
        assert!(grid.iter().all(|&c| c == -1));
    }
}
