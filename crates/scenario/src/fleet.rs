//! The vehicle fleet: mobility + a full orchestrator node per vehicle.

use crate::world::ScenarioWorld;
use airdnd_core::{OrchestratorConfig, OrchestratorNode};
use airdnd_geo::{IdmParams, Mobility, Vec2};
use airdnd_mesh::MeshConfig;
use airdnd_radio::NodeAddr;
use airdnd_sim::SimRng;
use rand::Rng;

/// One simulated vehicle.
pub struct Vehicle {
    /// The AirDnD node riding in this vehicle.
    pub node: OrchestratorNode,
    /// Kinematics.
    pub mobility: Mobility,
    /// Sensor range, metres.
    pub sensor_range: f64,
    rng: SimRng,
    current_exit: usize,
    /// When set, every respawn re-enters from this arm (the ego keeps
    /// approaching the occluded corner from the south).
    fixed_arm: Option<usize>,
}

impl Vehicle {
    fn fresh_route(world: &ScenarioWorld, rng: &mut SimRng, from_arm: usize) -> (Mobility, usize) {
        let arms = world.net.arm_count();
        let mut to_arm = rng.gen_range(0..arms);
        if to_arm == from_arm {
            to_arm = (to_arm + 1) % arms;
        }
        let route = world
            .net
            .route(
                world.net.approach_node(from_arm),
                world.net.exit_node(to_arm),
            )
            .expect("intersection arms are connected");
        let speed = rng.gen_range(5.0..12.0);
        (Mobility::route(route, speed, IdmParams::default()), to_arm)
    }

    /// Creates a vehicle entering from `arm`.
    #[allow(clippy::too_many_arguments)] // one knob per ScenarioConfig field
    pub fn spawn(
        world: &ScenarioWorld,
        addr: NodeAddr,
        arm: usize,
        gas_rate: u64,
        sensor_range: f64,
        orch: OrchestratorConfig,
        mesh: MeshConfig,
        mut rng: SimRng,
    ) -> Self {
        let (mut mobility, exit) = Self::fresh_route(world, &mut rng, arm);
        // Scatter along the approach so the fleet is not bunched at spawn.
        let warmup = rng.gen_range(0.0..20.0);
        mobility.step(warmup);
        let node_rng = rng.fork(addr.raw());
        let node = OrchestratorNode::new(addr, orch, mesh, gas_rate, 1 << 30, node_rng);
        Vehicle {
            node,
            mobility,
            sensor_range,
            rng,
            current_exit: exit,
            fixed_arm: None,
        }
    }

    /// Pins every respawn to re-enter from `arm` (used for the ego).
    pub fn pin_entry_arm(&mut self, arm: usize) {
        self.fixed_arm = Some(arm);
    }

    /// Advances the vehicle by `dt` seconds, re-entering from its exit arm
    /// (or its pinned arm) when the route completes, so fleet density
    /// stays constant.
    pub fn step(&mut self, world: &ScenarioWorld, dt: f64) {
        self.mobility.step(dt);
        let finished = matches!(&self.mobility, Mobility::Route(f) if f.is_finished());
        if finished {
            let from = self.fixed_arm.unwrap_or(self.current_exit);
            let (mobility, exit) = Self::fresh_route(world, &mut self.rng, from);
            self.mobility = mobility;
            self.current_exit = exit;
        }
    }

    /// Current position.
    pub fn pos(&self) -> Vec2 {
        self.mobility.pos()
    }

    /// Current velocity vector.
    pub fn velocity(&self) -> Vec2 {
        self.mobility.state().velocity()
    }
}

/// The whole fleet; index 0 is the ego vehicle (southern approach).
pub struct Fleet {
    /// Vehicles, ego first.
    pub vehicles: Vec<Vehicle>,
}

impl Fleet {
    /// Spawns `count` vehicles with heterogeneous ECUs drawn from
    /// `gas_rate_range`; a `byzantine_fraction` of helpers corrupt
    /// results.
    #[allow(clippy::too_many_arguments)] // one knob per ScenarioConfig field
    pub fn spawn(
        world: &ScenarioWorld,
        count: usize,
        gas_rate_range: (u64, u64),
        sensor_range: f64,
        byzantine_fraction: f64,
        orch: OrchestratorConfig,
        mesh: MeshConfig,
        rng: &mut SimRng,
    ) -> Self {
        assert!(count >= 1, "need at least the ego vehicle");
        let mut vehicles = Vec::with_capacity(count);
        for i in 0..count {
            let arm = if i == 0 { 0 } else { i % world.net.arm_count() };
            let gas_rate = if gas_rate_range.1 > gas_rate_range.0 {
                rng.gen_range(gas_rate_range.0..=gas_rate_range.1)
            } else {
                gas_rate_range.0
            };
            let addr = NodeAddr::new(i as u64 + 1);
            let mut vehicle = Vehicle::spawn(
                world,
                addr,
                arm,
                gas_rate,
                sensor_range,
                orch,
                mesh,
                rng.fork(1000 + i as u64),
            );
            if i == 0 {
                vehicle.pin_entry_arm(0);
            } else if rng.next_f64() < byzantine_fraction {
                vehicle.node.executor_mut().set_byzantine(true);
            }
            vehicles.push(vehicle);
        }
        Fleet { vehicles }
    }

    /// Number of vehicles.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// `true` if the fleet is empty (cannot happen via [`Fleet::spawn`]).
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// Index of the vehicle with address `addr`, if any.
    pub fn index_of(&self, addr: NodeAddr) -> Option<usize> {
        // Addresses are assigned densely as index + 1.
        let idx = addr.raw().checked_sub(1)? as usize;
        (idx < self.vehicles.len()).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ScenarioWorld;

    fn stage() -> ScenarioWorld {
        ScenarioWorld::build(250.0, 13.9, 12.0, 40.0)
    }

    #[test]
    fn fleet_spawns_with_unique_addresses() {
        let world = stage();
        let mut rng = SimRng::seed_from(1);
        let fleet = Fleet::spawn(
            &world,
            10,
            (500_000, 2_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &mut rng,
        );
        assert_eq!(fleet.len(), 10);
        let mut addrs: Vec<u64> = fleet.vehicles.iter().map(|v| v.node.addr().raw()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 10);
        for (i, v) in fleet.vehicles.iter().enumerate() {
            assert_eq!(fleet.index_of(v.node.addr()), Some(i));
        }
    }

    #[test]
    fn vehicles_move_and_respawn() {
        let world = stage();
        let mut rng = SimRng::seed_from(2);
        let mut fleet = Fleet::spawn(
            &world,
            3,
            (1_000_000, 1_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &mut rng,
        );
        let start: Vec<Vec2> = fleet.vehicles.iter().map(Vehicle::pos).collect();
        // Two simulated minutes: every vehicle must complete ≥1 route and
        // respawn without panicking.
        for _ in 0..1200 {
            for v in &mut fleet.vehicles {
                v.step(&world, 0.1);
            }
        }
        for (i, v) in fleet.vehicles.iter().enumerate() {
            assert!(v.pos().is_finite());
            assert_ne!(v.pos(), start[i], "vehicle {i} never moved");
        }
    }

    #[test]
    fn byzantine_fraction_marks_helpers_not_ego() {
        let world = stage();
        let mut rng = SimRng::seed_from(3);
        let fleet = Fleet::spawn(
            &world,
            20,
            (1_000_000, 1_000_000),
            120.0,
            1.0, // every helper byzantine
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &mut rng,
        );
        assert!(
            !fleet.vehicles[0].node.executor().is_byzantine(),
            "ego stays honest"
        );
        let byz = fleet.vehicles[1..]
            .iter()
            .filter(|v| v.node.executor().is_byzantine())
            .count();
        assert_eq!(byz, 19);
    }

    #[test]
    fn deterministic_spawn_for_same_seed() {
        let world = stage();
        let spawn = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let fleet = Fleet::spawn(
                &world,
                5,
                (500_000, 2_000_000),
                120.0,
                0.0,
                OrchestratorConfig::default(),
                MeshConfig::default(),
                &mut rng,
            );
            fleet
                .vehicles
                .iter()
                .map(|v| (v.pos(), v.node.executor().gas_rate()))
                .collect::<Vec<_>>()
        };
        assert_eq!(spawn(7), spawn(7));
        assert_ne!(spawn(7), spawn(8));
    }
}
