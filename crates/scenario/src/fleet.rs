//! The vehicle fleet: mobility + a full orchestrator node per vehicle.

use crate::world::ScenarioWorld;
use airdnd_core::{OrchestratorConfig, OrchestratorNode};
use airdnd_engine::SoaFleet;
use airdnd_geo::{IdmParams, Mobility, Vec2};
use airdnd_mesh::MeshConfig;
use airdnd_radio::NodeAddr;
use airdnd_sim::SimRng;
use rand::Rng;

/// Coarse mobility class carried in the SoA kind lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VehicleKind {
    /// Circulating vehicle (steps every tick, can despawn).
    Mobile,
    /// Parked/RSU anchor (never moves, never despawns).
    Parked,
}

/// One simulated vehicle.
pub struct Vehicle {
    /// The AirDnD node riding in this vehicle.
    pub node: OrchestratorNode,
    /// Kinematics.
    pub mobility: Mobility,
    /// Sensor range, metres.
    pub sensor_range: f64,
    rng: SimRng,
    current_exit: usize,
    /// When set, every respawn re-enters from this arm (the ego keeps
    /// approaching the occluded corner from the south).
    fixed_arm: Option<usize>,
}

/// Placement the generated worlds layer on top of the mobile fleet:
/// which portal the ego enters from, parked/RSU helper positions, and how
/// widely spawn times scatter along the approach.
#[derive(Clone, Debug)]
pub struct FleetLayout {
    /// Arm/portal index the ego enters (and re-enters) from.
    pub ego_arm: usize,
    /// Fixed helper positions (parked cars / roadside units). Appended
    /// after the mobile fleet, so an empty list leaves spawning untouched.
    pub parked: Vec<Vec2>,
    /// Spawn-scatter window, seconds of warmup drawn per vehicle.
    pub arrival_window_s: f64,
}

impl Default for FleetLayout {
    fn default() -> Self {
        FleetLayout {
            ego_arm: 0,
            parked: Vec::new(),
            arrival_window_s: 20.0,
        }
    }
}

impl Vehicle {
    fn fresh_route(world: &ScenarioWorld, rng: &mut SimRng, from_arm: usize) -> (Mobility, usize) {
        let arms = world.net.arm_count();
        let mut to_arm = rng.gen_range(0..arms);
        if to_arm == from_arm {
            to_arm = (to_arm + 1) % arms;
        }
        let route = world
            .net
            .route(
                world.net.approach_node(from_arm),
                world.net.exit_node(to_arm),
            )
            .expect("intersection arms are connected");
        let speed = rng.gen_range(5.0..12.0);
        (Mobility::route(route, speed, IdmParams::default()), to_arm)
    }

    /// Creates a vehicle entering from `arm`.
    #[allow(clippy::too_many_arguments)] // one knob per ScenarioConfig field
    pub fn spawn(
        world: &ScenarioWorld,
        addr: NodeAddr,
        arm: usize,
        gas_rate: u64,
        sensor_range: f64,
        orch: OrchestratorConfig,
        mesh: MeshConfig,
        arrival_window_s: f64,
        mut rng: SimRng,
    ) -> Self {
        let (mut mobility, exit) = Self::fresh_route(world, &mut rng, arm);
        // Scatter along the approach so the fleet is not bunched at spawn.
        let warmup = rng.gen_range(0.0..arrival_window_s.max(1e-9));
        mobility.step(warmup);
        let node_rng = rng.fork(addr.raw());
        let node = OrchestratorNode::new(addr, orch, mesh, gas_rate, 1 << 30, node_rng);
        Vehicle {
            node,
            mobility,
            sensor_range,
            rng,
            current_exit: exit,
            fixed_arm: None,
        }
    }

    /// Creates a parked vehicle / roadside unit: a full orchestrator node
    /// that never moves. Parked helpers give generated scenarios stable
    /// mesh anchors near the occluded corridor.
    pub fn parked(
        pos: Vec2,
        addr: NodeAddr,
        gas_rate: u64,
        sensor_range: f64,
        orch: OrchestratorConfig,
        mesh: MeshConfig,
        rng: SimRng,
    ) -> Self {
        let node_rng = rng.fork(addr.raw());
        let node = OrchestratorNode::new(addr, orch, mesh, gas_rate, 1 << 30, node_rng);
        Vehicle {
            node,
            mobility: Mobility::fixed(pos),
            sensor_range,
            rng,
            current_exit: 0,
            fixed_arm: None,
        }
    }

    /// Pins every respawn to re-enter from `arm` (used for the ego).
    pub fn pin_entry_arm(&mut self, arm: usize) {
        self.fixed_arm = Some(arm);
    }

    /// Re-draws this vehicle's route to start from `arm` *now* and pins
    /// respawns there — how extra query origins are moved onto their own
    /// approach after the plain spawn.
    pub fn reroute_from(&mut self, world: &ScenarioWorld, arm: usize) {
        let (mobility, exit) = Self::fresh_route(world, &mut self.rng, arm);
        self.mobility = mobility;
        self.current_exit = exit;
        self.pin_entry_arm(arm);
    }

    /// `true` for parked/RSU anchors (they never move and never despawn).
    pub fn is_parked(&self) -> bool {
        matches!(self.mobility, Mobility::Fixed(_))
    }

    /// Advances the vehicle by `dt` seconds, re-entering from its exit arm
    /// (or its pinned arm) when the route completes, so fleet density
    /// stays constant.
    pub fn step(&mut self, world: &ScenarioWorld, dt: f64) {
        self.mobility.step(dt);
        let finished = matches!(&self.mobility, Mobility::Route(f) if f.is_finished());
        if finished {
            let from = self.fixed_arm.unwrap_or(self.current_exit);
            let (mobility, exit) = Self::fresh_route(world, &mut self.rng, from);
            self.mobility = mobility;
            self.current_exit = exit;
        }
    }

    /// Current position.
    pub fn pos(&self) -> Vec2 {
        self.mobility.pos()
    }

    /// Current velocity vector.
    pub fn velocity(&self) -> Vec2 {
        self.mobility.state().velocity()
    }
}

/// The whole fleet; slot 0 is the ego vehicle (southern approach).
///
/// Membership is dynamic: [`Fleet::push_mobile`] admits a new vehicle
/// mid-run and [`Fleet::remove`] retires one, so the lifecycle layer can
/// change the mesh population while the simulation runs. Addresses are
/// assigned once and never reused.
///
/// Removal tombstones the slot (amortized O(1)) instead of shifting the
/// vehicle vector — at city scale a heavy-churn run was quadratic in
/// fleet size. Live vehicles keep their relative (address) order
/// forever; a deterministic count-triggered compaction reclaims
/// tombstones in lockstep with the SoA kinematics lanes. Raw slot
/// indices from [`Fleet::index_of`] stay valid until the next removal.
pub struct Fleet {
    /// Vehicle slots, ego first; `None` marks a tombstoned despawn.
    slots: Vec<Option<Vehicle>>,
    /// Live vehicle count.
    live: usize,
    /// Next address to hand out to a mid-run spawn.
    next_addr: u64,
    /// SoA mirror of the hot per-vehicle state: positions, velocities and
    /// kinds in parallel vectors behind a stable `addr → slot` map, kept
    /// in lockstep with `slots` (same order, same tombstones). `index_of`
    /// resolves through it in O(1) regardless of despawn history.
    kin: SoaFleet<VehicleKind>,
    /// Mobile, non-protected addresses ordered for despawn victim
    /// selection: the smallest address is the oldest eligible vehicle,
    /// which is exactly what the historical head-of-fleet linear scan
    /// picked (vehicles are always address-sorted). Egos are removed via
    /// [`Fleet::protect`]; parked anchors never enter.
    eligible: std::collections::BTreeSet<u64>,
}

impl Fleet {
    /// Spawns `count` mobile vehicles with heterogeneous ECUs drawn from
    /// `gas_rate_range`, plus the layout's parked helpers; a
    /// `byzantine_fraction` of mobile helpers corrupt results. The ego
    /// (index 0) enters from `layout.ego_arm`; parked units are appended
    /// after the mobile fleet so the default layout reproduces the
    /// historical spawn byte for byte.
    #[allow(clippy::too_many_arguments)] // one knob per ScenarioConfig field
    pub fn spawn(
        world: &ScenarioWorld,
        count: usize,
        gas_rate_range: (u64, u64),
        sensor_range: f64,
        byzantine_fraction: f64,
        orch: OrchestratorConfig,
        mesh: MeshConfig,
        layout: &FleetLayout,
        rng: &mut SimRng,
    ) -> Self {
        assert!(count >= 1, "need at least the ego vehicle");
        let draw_gas = |rng: &mut SimRng| {
            if gas_rate_range.1 > gas_rate_range.0 {
                rng.gen_range(gas_rate_range.0..=gas_rate_range.1)
            } else {
                gas_rate_range.0
            }
        };
        let mut vehicles = Vec::with_capacity(count + layout.parked.len());
        for i in 0..count {
            let arm = if i == 0 {
                layout.ego_arm
            } else {
                i % world.net.arm_count()
            };
            let gas_rate = draw_gas(rng);
            let addr = NodeAddr::new(i as u64 + 1);
            let mut vehicle = Vehicle::spawn(
                world,
                addr,
                arm,
                gas_rate,
                sensor_range,
                orch,
                mesh,
                layout.arrival_window_s,
                rng.fork(1000 + i as u64),
            );
            if i == 0 {
                vehicle.pin_entry_arm(layout.ego_arm);
            } else if rng.next_f64() < byzantine_fraction {
                vehicle.node.executor_mut().set_byzantine(true);
            }
            vehicles.push(vehicle);
        }
        for (k, &pos) in layout.parked.iter().enumerate() {
            let gas_rate = draw_gas(rng);
            let addr = NodeAddr::new((count + k) as u64 + 1);
            vehicles.push(Vehicle::parked(
                pos,
                addr,
                gas_rate,
                sensor_range,
                orch,
                mesh,
                rng.fork(2000 + k as u64),
            ));
        }
        let next_addr = (count + layout.parked.len()) as u64 + 1;
        let mut kin = SoaFleet::new();
        let mut eligible = std::collections::BTreeSet::new();
        for v in &vehicles {
            let kind = if v.is_parked() {
                VehicleKind::Parked
            } else {
                VehicleKind::Mobile
            };
            kin.push(v.node.addr().raw(), v.pos(), v.velocity(), kind);
            if kind == VehicleKind::Mobile {
                eligible.insert(v.node.addr().raw());
            }
        }
        Fleet {
            live: vehicles.len(),
            slots: vehicles.into_iter().map(Some).collect(),
            next_addr,
            kin,
            eligible,
        }
    }

    /// Admits a new mobile vehicle entering from `arm` mid-run, assigning
    /// it the next unused address. Returns the new vehicle's address.
    #[allow(clippy::too_many_arguments)] // one knob per ScenarioConfig field
    pub fn push_mobile(
        &mut self,
        world: &ScenarioWorld,
        arm: usize,
        gas_rate: u64,
        sensor_range: f64,
        orch: OrchestratorConfig,
        mesh: MeshConfig,
        rng: SimRng,
    ) -> NodeAddr {
        let addr = NodeAddr::new(self.next_addr);
        self.next_addr += 1;
        // Zero arrival window: a mid-run spawn enters at the portal now.
        let vehicle = Vehicle::spawn(
            world,
            addr,
            arm,
            gas_rate,
            sensor_range,
            orch,
            mesh,
            0.0,
            rng,
        );
        self.kin.push(
            addr.raw(),
            vehicle.pos(),
            vehicle.velocity(),
            VehicleKind::Mobile,
        );
        self.slots.push(Some(vehicle));
        self.live += 1;
        self.eligible.insert(addr.raw());
        addr
    }

    /// Retires the vehicle with address `addr`, returning it (its node
    /// state, executor totals and in-flight work leave the simulation with
    /// it). The slot is tombstoned — amortized O(1) instead of shifting
    /// the whole tail — and reclaimed by the next deterministic
    /// compaction; addresses are never reassigned.
    pub fn remove(&mut self, addr: NodeAddr) -> Option<Vehicle> {
        let idx = self.index_of(addr)?;
        self.kin.remove_at(idx);
        let vehicle = self.slots[idx].take();
        debug_assert!(vehicle.is_some(), "kin index and slots in lockstep");
        self.live -= 1;
        self.eligible.remove(&addr.raw());
        self.maybe_compact();
        vehicle
    }

    /// Deterministic compaction policy: reclaim tombstones once they are
    /// at least half the slots (and enough of them to amortize the pass).
    /// Both the vehicle slots and the SoA lanes retain live entries in
    /// order, so slot numbering stays identical on both sides.
    fn maybe_compact(&mut self) {
        let dead = self.kin.dead_count();
        if dead >= 32 && dead * 2 >= self.kin.slot_count() {
            self.kin.compact();
            self.slots.retain(Option::is_some);
        }
    }

    /// Oldest despawn-eligible vehicle: the smallest mobile address that
    /// is not protected (not an ego). O(log n) where the historical
    /// implementation linearly scanned the fleet against the ego list per
    /// despawn event; the pick is byte-identical because vehicles are
    /// stored in address order, so "first non-parked non-ego in fleet
    /// order" and "smallest eligible address" are the same vehicle.
    pub fn despawn_candidate(&self) -> Option<NodeAddr> {
        self.eligible.iter().next().map(|&a| NodeAddr::new(a))
    }

    /// Permanently excludes `addr` from despawn victim selection (used
    /// for the ego query origins, which must survive the whole run).
    pub fn protect(&mut self, addr: NodeAddr) {
        self.eligible.remove(&addr.raw());
    }

    /// Number of live vehicles.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if the fleet is empty (cannot happen via [`Fleet::spawn`]).
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots including tombstones — the bound for raw slot loops
    /// ([`Fleet::get`] returns `None` on dead slots).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The vehicle at `slot`, if live.
    pub fn get(&self, slot: usize) -> Option<&Vehicle> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Mutable access to the vehicle at `slot`, if live.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut Vehicle> {
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    /// The ego vehicle (slot 0, never despawned).
    pub fn ego(&self) -> &Vehicle {
        self.slots[0].as_ref().expect("ego never despawns")
    }

    /// Mutable access to the ego vehicle.
    pub fn ego_mut(&mut self) -> &mut Vehicle {
        self.slots[0].as_mut().expect("ego never despawns")
    }

    /// Live vehicles in slot (= address) order.
    pub fn iter(&self) -> impl Iterator<Item = &Vehicle> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Mutable iteration over live vehicles in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Vehicle> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Index of the vehicle with address `addr`, if any — one load through
    /// the stable `addr → slot` map, O(1) on every path (the previous
    /// implementation fell back to a linear scan after the first despawn,
    /// which every radio delivery then paid for the rest of the run).
    pub fn index_of(&self, addr: NodeAddr) -> Option<usize> {
        self.kin.slot_of(addr.raw())
    }

    /// The SoA kinematics lanes (positions/velocities/kinds in vehicle
    /// order), refreshed by [`Fleet::step_all`].
    pub fn kinematics(&self) -> &SoaFleet<VehicleKind> {
        &self.kin
    }

    /// Advances every live vehicle by `dt` seconds and refreshes the SoA
    /// kinematics lanes — the per-tick movement pass.
    pub fn step_all(&mut self, world: &ScenarioWorld, dt: f64) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                v.step(world, dt);
                self.kin.set_kinematics(i, v.pos(), v.velocity());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ScenarioWorld;

    fn stage() -> ScenarioWorld {
        ScenarioWorld::build(250.0, 13.9, 12.0, 40.0)
    }

    #[test]
    fn fleet_spawns_with_unique_addresses() {
        let world = stage();
        let mut rng = SimRng::seed_from(1);
        let fleet = Fleet::spawn(
            &world,
            10,
            (500_000, 2_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &FleetLayout::default(),
            &mut rng,
        );
        assert_eq!(fleet.len(), 10);
        let mut addrs: Vec<u64> = fleet.iter().map(|v| v.node.addr().raw()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 10);
        for (i, v) in fleet.iter().enumerate() {
            assert_eq!(fleet.index_of(v.node.addr()), Some(i));
        }
    }

    #[test]
    fn vehicles_move_and_respawn() {
        let world = stage();
        let mut rng = SimRng::seed_from(2);
        let mut fleet = Fleet::spawn(
            &world,
            3,
            (1_000_000, 1_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &FleetLayout::default(),
            &mut rng,
        );
        let start: Vec<Vec2> = fleet.iter().map(Vehicle::pos).collect();
        // Two simulated minutes: every vehicle must complete ≥1 route and
        // respawn without panicking.
        for _ in 0..1200 {
            for v in fleet.iter_mut() {
                v.step(&world, 0.1);
            }
        }
        for (i, v) in fleet.iter().enumerate() {
            assert!(v.pos().is_finite());
            assert_ne!(v.pos(), start[i], "vehicle {i} never moved");
        }
    }

    #[test]
    fn byzantine_fraction_marks_helpers_not_ego() {
        let world = stage();
        let mut rng = SimRng::seed_from(3);
        let fleet = Fleet::spawn(
            &world,
            20,
            (1_000_000, 1_000_000),
            120.0,
            1.0, // every helper byzantine
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &FleetLayout::default(),
            &mut rng,
        );
        assert!(
            !fleet.ego().node.executor().is_byzantine(),
            "ego stays honest"
        );
        let byz = fleet
            .iter()
            .skip(1)
            .filter(|v| v.node.executor().is_byzantine())
            .count();
        assert_eq!(byz, 19);
    }

    #[test]
    fn parked_helpers_append_after_the_mobile_fleet() {
        let world = stage();
        let mut rng = SimRng::seed_from(5);
        let layout = FleetLayout {
            parked: vec![Vec2::new(60.0, 10.0), Vec2::new(90.0, -10.0)],
            ..FleetLayout::default()
        };
        let mut fleet = Fleet::spawn(
            &world,
            4,
            (1_000_000, 1_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &layout,
            &mut rng,
        );
        assert_eq!(fleet.len(), 6);
        // Addresses stay dense, so index_of still works for parked units.
        for (i, v) in fleet.iter().enumerate() {
            assert_eq!(fleet.index_of(v.node.addr()), Some(i));
        }
        // Parked units never move, even across many steps.
        for _ in 0..100 {
            for v in fleet.iter_mut() {
                v.step(&world, 0.1);
            }
        }
        assert_eq!(fleet.get(4).unwrap().pos(), Vec2::new(60.0, 10.0));
        assert_eq!(fleet.get(5).unwrap().pos(), Vec2::new(90.0, -10.0));
        assert_eq!(fleet.get(5).unwrap().velocity(), Vec2::ZERO);
        // Parked anchors are never despawn victims: the candidate is the
        // oldest mobile helper (the ego until it is protected).
        assert_eq!(fleet.despawn_candidate().map(NodeAddr::raw), Some(1));
        fleet.protect(NodeAddr::new(1));
        assert_eq!(fleet.despawn_candidate().map(NodeAddr::raw), Some(2));
    }

    /// An empty layout must not perturb the historical spawn: the mobile
    /// fleet draws the same randomness whether or not the layout exists.
    #[test]
    fn default_layout_reproduces_the_plain_spawn() {
        let world = stage();
        let spawn = |layout: &FleetLayout| {
            let mut rng = SimRng::seed_from(11);
            Fleet::spawn(
                &world,
                6,
                (500_000, 2_000_000),
                120.0,
                0.0,
                OrchestratorConfig::default(),
                MeshConfig::default(),
                layout,
                &mut rng,
            )
            .iter()
            .map(|v| (v.pos(), v.node.executor().gas_rate()))
            .collect::<Vec<_>>()
        };
        let with_parked = FleetLayout {
            parked: vec![Vec2::new(50.0, 0.0)],
            ..FleetLayout::default()
        };
        let plain = spawn(&FleetLayout::default());
        let parked = spawn(&with_parked);
        assert_eq!(plain[..], parked[..plain.len()], "mobile prefix identical");
        assert_eq!(parked.len(), plain.len() + 1);
    }

    /// Mid-run spawns get fresh dense addresses; removal punches a hole
    /// that `index_of` handles and never reuses.
    #[test]
    fn push_and_remove_keep_addresses_unique() {
        let world = stage();
        let mut rng = SimRng::seed_from(21);
        let mut fleet = Fleet::spawn(
            &world,
            4,
            (1_000_000, 1_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &FleetLayout::default(),
            &mut rng,
        );
        let a = fleet.push_mobile(
            &world,
            1,
            1_000_000,
            120.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            rng.fork(1),
        );
        assert_eq!(a.raw(), 5);
        assert_eq!(fleet.len(), 5);
        // Remove a mid-fleet vehicle: the slot tombstones but every
        // survivor stays findable at the slot that holds it.
        let victim = fleet.get(2).unwrap().node.addr();
        assert!(fleet.remove(victim).is_some());
        assert_eq!(fleet.index_of(victim), None);
        assert_eq!(fleet.remove(victim).map(|_| ()), None);
        for i in 0..fleet.slot_count() {
            if let Some(v) = fleet.get(i) {
                assert_eq!(fleet.index_of(v.node.addr()), Some(i));
            }
        }
        // The freed address is never handed out again.
        let b = fleet.push_mobile(
            &world,
            0,
            1_000_000,
            120.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            rng.fork(2),
        );
        assert_eq!(b.raw(), 6);
        assert!(!fleet.get(fleet.slot_count() - 1).unwrap().is_parked());
    }

    /// Satellite regression for the old linear-scan fallback: the stable
    /// address map must answer every lookup correctly through heavy
    /// interleaved spawn/despawn churn, and the SoA lanes must track the
    /// surviving vehicles slot for slot.
    #[test]
    fn index_of_survives_spawn_despawn_churn() {
        let world = stage();
        let mut rng = SimRng::seed_from(31);
        let mut fleet = Fleet::spawn(
            &world,
            6,
            (1_000_000, 1_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &FleetLayout::default(),
            &mut rng,
        );
        let mut retired = Vec::new();
        for round in 0..40u64 {
            // Alternate bursts of arrivals and departures, always removing
            // from the middle so the tail shifts.
            if round % 3 != 2 {
                fleet.push_mobile(
                    &world,
                    (round % 4) as usize,
                    1_000_000,
                    120.0,
                    OrchestratorConfig::default(),
                    MeshConfig::default(),
                    rng.fork(round),
                );
            }
            if round % 2 == 1 && fleet.len() > 3 {
                let victim = fleet
                    .iter()
                    .nth(fleet.len() / 2)
                    .map(|v| v.node.addr())
                    .unwrap();
                assert!(fleet.remove(victim).is_some());
                retired.push(victim);
            }
            // Every survivor resolves to the slot that actually holds it…
            for i in 0..fleet.slot_count() {
                let Some(v) = fleet.get(i) else { continue };
                let addr = v.node.addr();
                assert_eq!(fleet.index_of(addr), Some(i), "round {round}");
                assert_eq!(fleet.kinematics().addr_at(i), addr.raw());
                assert_eq!(fleet.kinematics().position(i), v.pos());
                assert!(fleet.kinematics().is_live(i));
            }
            assert_eq!(fleet.iter().count(), fleet.len());
            assert_eq!(fleet.kinematics().len(), fleet.len());
            // …and every retired address resolves to nothing, forever.
            for &gone in &retired {
                assert_eq!(fleet.index_of(gone), None);
            }
        }
        assert!(!retired.is_empty());
    }

    #[test]
    fn reroute_moves_a_vehicle_to_its_arm() {
        let world = stage();
        let mut rng = SimRng::seed_from(23);
        let mut fleet = Fleet::spawn(
            &world,
            3,
            (1_000_000, 1_000_000),
            120.0,
            0.0,
            OrchestratorConfig::default(),
            MeshConfig::default(),
            &FleetLayout::default(),
            &mut rng,
        );
        fleet.get_mut(1).unwrap().reroute_from(&world, 2);
        let entry = world.net.position(world.net.approach_node(2));
        assert!(
            fleet.get(1).unwrap().pos().distance(entry) < 1.0,
            "rerouted vehicle must restart at its portal"
        );
    }

    #[test]
    fn deterministic_spawn_for_same_seed() {
        let world = stage();
        let spawn = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let fleet = Fleet::spawn(
                &world,
                5,
                (500_000, 2_000_000),
                120.0,
                0.0,
                OrchestratorConfig::default(),
                MeshConfig::default(),
                &FleetLayout::default(),
                &mut rng,
            );
            fleet
                .iter()
                .map(|v| (v.pos(), v.node.executor().gas_rate()))
                .collect::<Vec<_>>()
        };
        assert_eq!(spawn(7), spawn(7));
        assert_ne!(spawn(7), spawn(8));
    }
}
